"""Ablations for the optimizer's design choices (DESIGN.md §6).

Each experiment toggles exactly one phase and measures the effect on a
query chosen to exercise it:

* join permutation — a three-way equi-join whose selective input appears
  last in the source order;
* index access paths — an equality selection over a large extent;
* the algebraic phase (selection pushdown) — QUERY E, whose course-title
  selection otherwise runs inside an outer-join predicate;
* hash joins vs. nested loops — covered per size in bench_scaling, pinned
  here at one size for the benchmark table.
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.data.datagen import company_database, university_database
from repro.engine import run_with_stats
from repro.engine.planner import PlannerOptions

from conftest import timed

THREE_WAY = (
    "select distinct struct(S: s.name, C: c.title) "
    "from s in Student, t in Transcript, c in Courses "
    'where s.id = t.id and t.cno = c.cno and c.title = "DB"'
)

QUERY_E = (
    "select distinct s from s in Student "
    'where for all c in ( select c from c in Courses where c.title = "DB" ): '
    "exists t in Transcript: (t.id = s.id and t.cno = c.cno)"
)

INDEXED = (
    "select distinct e.name from e in Employees where e.dno = 3 and e.age > 30"
)


def test_ablation_report(report_writer, benchmark):
    lines = []

    # --- join permutation -------------------------------------------------
    db = university_database(num_students=150, num_courses=20, seed=1998)
    with_reorder = Optimizer(db).compile_oql(THREE_WAY)
    without = Optimizer(db, OptimizerOptions(reorder_joins=False)).compile_oql(
        THREE_WAY
    )
    reference = with_reorder.execute(db)
    assert without.execute(db) == reference
    stats_with = run_with_stats(with_reorder.optimized, db)
    stats_without = run_with_stats(without.optimized, db)
    lines.append("join permutation (3-way equi-join, selective input last):")
    lines.append(
        f"  reorder on : {stats_with.elapsed_ms:8.2f} ms, "
        f"{stats_with.total_rows:7d} rows"
    )
    lines.append(
        f"  reorder off: {stats_without.elapsed_ms:8.2f} ms, "
        f"{stats_without.total_rows:7d} rows"
    )
    assert stats_with.total_rows <= stats_without.total_rows

    # --- index access paths -------------------------------------------------
    db = company_database(num_employees=3000, num_departments=12, seed=1998)
    db.create_index("Employees", "dno")
    compiled = Optimizer(db).compile_oql(INDEXED)
    _, ms_indexed = timed(
        lambda: run_with_stats(compiled.optimized, db).result
    )
    stats_idx = run_with_stats(compiled.optimized, db)
    stats_seq = run_with_stats(
        compiled.optimized, db, PlannerOptions(index_scans=False)
    )
    assert stats_idx.result == stats_seq.result
    lines.append("")
    lines.append("index access path (equality selection over 3000 employees):")
    lines.append(
        f"  index scan : {stats_idx.elapsed_ms:8.2f} ms, "
        f"{stats_idx.total_rows:7d} rows"
    )
    lines.append(
        f"  seq scan   : {stats_seq.elapsed_ms:8.2f} ms, "
        f"{stats_seq.total_rows:7d} rows"
    )
    assert stats_idx.total_rows < stats_seq.total_rows

    # --- algebraic phase (selection pushdown) -------------------------------
    db = university_database(num_students=120, num_courses=25, seed=1998)
    with_alg = Optimizer(db).compile_oql(QUERY_E)
    without_alg = Optimizer(
        db, OptimizerOptions(algebraic=False, reorder_joins=False)
    ).compile_oql(QUERY_E)
    assert with_alg.execute(db) == without_alg.execute(db)
    stats_alg = run_with_stats(with_alg.optimized, db)
    stats_noalg = run_with_stats(without_alg.optimized, db)
    lines.append("")
    lines.append("algebraic rewrites (QUERY E, selection pushdown into scans):")
    lines.append(
        f"  rewrites on : {stats_alg.elapsed_ms:8.2f} ms, "
        f"{stats_alg.total_rows:7d} rows"
    )
    lines.append(
        f"  rewrites off: {stats_noalg.elapsed_ms:8.2f} ms, "
        f"{stats_noalg.total_rows:7d} rows"
    )
    # Row totals are not comparable across plans with different operator
    # counts (the pushed selection is itself a counted stage); the win here
    # is evaluating the title predicate once per course row instead of once
    # per join pair, which shows up in wall time.

    report_writer("ablations", "\n".join(lines))
    benchmark(with_alg.execute, db)


@pytest.mark.benchmark(group="ablation-joinorder")
def test_three_way_with_reordering(benchmark):
    db = university_database(num_students=150, num_courses=20, seed=1998)
    compiled = Optimizer(db).compile_oql(THREE_WAY)
    benchmark(compiled.execute, db)


@pytest.mark.benchmark(group="ablation-joinorder")
def test_three_way_without_reordering(benchmark):
    db = university_database(num_students=150, num_courses=20, seed=1998)
    compiled = Optimizer(db, OptimizerOptions(reorder_joins=False)).compile_oql(
        THREE_WAY
    )
    benchmark(compiled.execute, db)


@pytest.mark.benchmark(group="ablation-index")
def test_selection_with_index(benchmark):
    db = company_database(num_employees=3000, num_departments=12, seed=1998)
    db.create_index("Employees", "dno")
    compiled = Optimizer(db).compile_oql(INDEXED)
    physical = compiled.physical(db)
    benchmark(physical.value)


@pytest.mark.benchmark(group="ablation-index")
def test_selection_without_index(benchmark):
    db = company_database(num_employees=3000, num_departments=12, seed=1998)
    compiled = Optimizer(db).compile_oql(INDEXED)
    physical = compiled.physical(db)
    benchmark(physical.value)
