"""Governor overhead benchmark: ``BENCH_governor.json``.

Runs every corpus query through the full pipeline twice — ungoverned (the
default, where every operator's tick hook is ``None`` and the hot loops
stay branch-only) and governed with generous limits (``timeout``,
``max_rows``, ``max_bytes`` all set high enough that nothing ever trips,
so the run pays the full accounting cost: batched work-unit counting plus
sampled byte estimates in the buffering loops) — and reports per-family
and overall overhead.

The acceptance bar is that enabling the governor costs < 3% wall-clock on
the corpus overall.  Each timing sample is a whole family's corpus run
back-to-back (individual queries are tens of microseconds — below timer
noise), best-of-N alternating repeats; ``--quick`` uses the small
databases and fewer repeats and relaxes the bar to 6% for noisy CI boxes.

Usage::

    PYTHONPATH=src python benchmarks/bench_governor.py          # full report
    PYTHONPATH=src python benchmarks/bench_governor.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "tests"))
sys.path.insert(0, str(_REPO / "src"))

from corpus import CORPUS  # noqa: E402

from repro.core.optimizer import OptimizerOptions  # noqa: E402
from repro.core.pipeline import QueryPipeline  # noqa: E402
from repro.data.datagen import (  # noqa: E402
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)
from repro.testing.oracle import results_equal  # noqa: E402

_FULL_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(150, 12, seed=1998),
    "university": lambda: university_database(90, 20, seed=1998),
    "travel": lambda: travel_database(10, 8, seed=1998),
    "ab": lambda: ab_database(60, 80, seed=1998),
    "auction": lambda: auction_database(80, 40, seed=1998),
}
_QUICK_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(60, 8, seed=1998),
    "university": lambda: university_database(40, 12, seed=1998),
    "travel": lambda: travel_database(6, 5, seed=1998),
    "ab": lambda: ab_database(30, 40, seed=1998),
    "auction": lambda: auction_database(40, 25, seed=1998),
}

#: Generous limits: high enough that no corpus query can trip them, so the
#: benchmark measures pure accounting cost, not early exits.
_GOVERNED = OptimizerOptions(
    timeout=3600.0, max_rows=1_000_000_000, max_bytes=1_000_000_000_000
)


def build_report(quick: bool) -> dict[str, Any]:
    """Per-family batch timings: each sample runs the whole family corpus.

    Individual corpus queries run in tens of microseconds, where timer
    granularity and scheduler noise swamp a few-percent effect; batching a
    family into one ~10-30 ms sample and taking best-of-N makes a 3% bar
    actually measurable.
    """
    makers = _QUICK_DATABASES if quick else _FULL_DATABASES
    repeats = 15 if quick else 30
    families = []
    total_plain = 0.0
    total_governed = 0.0
    for family, maker in makers.items():
        db = maker()
        queries = [q.oql for q in CORPUS if q.family == family]
        plain = QueryPipeline(db)
        governed = QueryPipeline(db, _GOVERNED)
        for oql in queries:
            plain.compile_oql(oql)
            governed.compile_oql(oql)
            if not results_equal(plain.run_oql(oql), governed.run_oql(oql)):
                raise AssertionError(
                    f"{family}: governed and ungoverned runs disagree on "
                    f"{oql!r}"
                )

        def run_batch(pipeline: QueryPipeline) -> float:
            start = time.perf_counter()
            for oql in queries:
                pipeline.run_oql(oql)
            return (time.perf_counter() - start) * 1000.0

        run_batch(plain), run_batch(governed)  # warm caches
        plain_ms = governed_ms = float("inf")
        # Alternate within each repeat so cache/frequency drift is shared.
        for _ in range(repeats):
            plain_ms = min(plain_ms, run_batch(plain))
            governed_ms = min(governed_ms, run_batch(governed))
        total_plain += plain_ms
        total_governed += governed_ms
        families.append(
            {
                "family": family,
                "queries": len(queries),
                "ungoverned_ms": round(plain_ms, 3),
                "governed_ms": round(governed_ms, 3),
                "overhead": round((governed_ms / plain_ms - 1.0) * 100.0, 2),
            }
        )

    overall = total_governed / total_plain
    return {
        "benchmark": "governor accounting overhead (generous limits, never trips)",
        "mode": "quick" if quick else "full",
        "timing": (
            f"per-family corpus batches, best of {repeats} alternating "
            "repeats, wall-clock ms"
        ),
        "families": families,
        "overall_overhead_percent": round((overall - 1.0) * 100.0, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small databases, fewer repeats, 6%% bar (CI smoke)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=_REPO / "BENCH_governor.json",
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(f["family"]) for f in report["families"])
    print(f"{'family':{width}} {'ungoverned':>11} {'governed':>10} {'overhead':>9}")
    for f in report["families"]:
        print(
            f"{f['family']:{width}} {f['ungoverned_ms']:>10.2f}ms "
            f"{f['governed_ms']:>9.2f}ms {f['overhead']:>+8.1f}%"
        )
    overhead = report["overall_overhead_percent"]
    print(
        f"\noverall governor overhead across "
        f"{sum(f['queries'] for f in report['families'])} corpus queries: "
        f"{overhead:+.2f}% -> {args.output}"
    )

    bar = 6.0 if args.quick else 3.0
    if overhead >= bar:
        print(f"FAIL: governor overhead {overhead:.2f}% at or above the {bar}% bar")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
