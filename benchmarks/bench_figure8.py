"""Figure 8 — the Section 5 simplification (group-by self-join elimination).

Plan A (the raw unnested form: selection ⟕ selection, then nest) is
benchmarked against Plan B (the simplified single-pass grouping).  The paper
draws the two plans and calls B "more efficient"; the expected shape is that
B beats A by a growing factor, because A materializes an O(n·k) outer-join
(k = average group size) while B is a single O(n) pass.
"""

from __future__ import annotations

import pytest

from repro.algebra.pretty import plan_signature, pretty_plan
from repro.core.simplification import simplify
from repro.core.unnesting import unnest_query
from repro.data.datagen import company_database
from repro.engine.planner import PlannerOptions, plan_physical
from repro.oql.translator import parse_and_translate

from conftest import timed

SOURCE = (
    "select distinct e.dno, avg(e.salary) as S from Employees e "
    "where e.age > 30 group by e.dno"
)


def _plans(db):
    term = parse_and_translate(SOURCE, db.schema)
    plan_a = unnest_query(term)
    plan_b = simplify(plan_a)
    return plan_a, plan_b


def test_figure8_report(report_writer, benchmark):
    db = company_database(num_employees=120, num_departments=10, seed=1998)
    plan_a, plan_b = _plans(db)
    assert plan_signature(plan_a) == "reduce(nest(outer-join(select(scan), scan)))"
    assert plan_signature(plan_b) == "reduce(nest(map(select(scan))))"

    lines = ["=== Figure 8.A: unnested group-by (self outer-join) ===",
             pretty_plan(plan_a), "",
             "=== Figure 8.B: after the Section 5 simplification ===",
             pretty_plan(plan_b), ""]

    lines.append(f"{'employees':>10} {'planA_ms':>9} {'planB_ms':>9} "
                 f"{'speedup':>8} {'rowsA':>8} {'rowsB':>8}")
    for n in (50, 100, 200, 400):
        scaled = company_database(num_employees=n, num_departments=10, seed=1998)
        pa, pb = _plans(scaled)
        phys_a = plan_physical(pa, scaled)
        result_a, ms_a = timed(phys_a.value)
        phys_b = plan_physical(pb, scaled)
        result_b, ms_b = timed(phys_b.value)
        assert result_a == result_b
        lines.append(
            f"{n:>10} {ms_a:>9.2f} {ms_b:>9.2f} {ms_a / ms_b:>7.1f}x "
            f"{phys_a.total_rows():>8} {phys_b.total_rows():>8}"
        )
    report_writer("fig8_simplification", "\n".join(lines))
    benchmark(lambda: simplify(_plans(db)[0]))


@pytest.mark.benchmark(group="figure8")
def test_plan_a_execution(benchmark):
    db = company_database(num_employees=200, num_departments=10, seed=1998)
    plan_a, _ = _plans(db)
    physical = plan_physical(plan_a, db)
    benchmark(physical.value)


@pytest.mark.benchmark(group="figure8")
def test_plan_b_execution(benchmark):
    db = company_database(num_employees=200, num_departments=10, seed=1998)
    _, plan_b = _plans(db)
    physical = plan_physical(plan_b, db)
    benchmark(physical.value)


@pytest.mark.benchmark(group="figure8-nl")
def test_plan_a_without_hash_joins(benchmark):
    """Plan A under nested loops only — what 1998-era engines without hash
    outer-joins would pay."""
    db = company_database(num_employees=200, num_departments=10, seed=1998)
    plan_a, _ = _plans(db)
    physical = plan_physical(plan_a, db, PlannerOptions(hash_joins=False))
    benchmark(physical.value)
