"""Serving-layer load benchmark: ``BENCH_serving.json``.

Spins up the real server (:class:`repro.server.ServerThread` — the asyncio
front-end on its own event loop) and drives it with N concurrent blocking
clients over a corpus-derived workload, for N ∈ {1, 4, 16}, against both
the in-memory engine and the file-backed SQLite shredding backend.  Every
response is cross-checked value-for-value against in-process execution of
the same query — a serving layer that changes answers under load has no
business reporting a throughput number.

Reported per scenario: sustained qps, mean and p50/p95/p99 latency, the
plan-cache hit rate, and the error count (which must be zero).  Latency is
measured per request at the client, so it includes protocol encode/decode
and the socket round-trip — the number a real client would see.

``--quick`` (CI smoke) shrinks the data and request counts and asserts a
conservative throughput floor on the best memory-backend scenario, plus
the always-on invariants: zero transport/query errors and zero result
mismatches in every scenario.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full report
    PYTHONPATH=src python benchmarks/bench_serving.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "tests"))
sys.path.insert(0, str(_REPO / "src"))

from corpus import CORPUS  # noqa: E402

from repro.core.optimizer import Optimizer, OptimizerOptions  # noqa: E402
from repro.data.datagen import company_database  # noqa: E402
from repro.server import ServeClient, ServerConfig, ServerThread  # noqa: E402

CLIENT_COUNTS = (1, 4, 16)

#: CI floor: best memory-backend scenario must sustain at least this many
#: queries per second end-to-end (socket + JSON + execution).  Deliberately
#: conservative — shared CI runners are noisy; the full run on quiet
#: hardware lands far above it.
QUICK_QPS_FLOOR = 25.0


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def run_scenario(
    host: str,
    port: int,
    queries: list[tuple[str, str]],
    references: dict[str, Any],
    clients: int,
    requests_per_client: int,
    backend: str,
) -> dict[str, Any]:
    """N concurrent clients, each issuing its share of the workload."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []
    mismatches: list[str] = []
    barrier = threading.Barrier(clients + 1)

    def one_client(index: int) -> None:
        with ServeClient(host, port, timeout=120) as client:
            if backend != "memory":
                reply = client.set_options(backend=backend)
                if not reply.ok:
                    errors.append(f"client {index} set: {reply.get('error')}")
                    barrier.wait()
                    return
            barrier.wait()  # line up the start so qps means something
            for step in range(requests_per_client):
                name, oql = queries[(index + step) % len(queries)]
                start = time.perf_counter()
                reply = client.query(oql)
                latencies[index].append(
                    (time.perf_counter() - start) * 1000.0
                )
                if not reply.ok:
                    errors.append(
                        f"client {index} {name}: {reply.get('error')}"
                    )
                elif reply.value() != references[name]:
                    mismatches.append(f"client {index} {name}")

    threads = [
        threading.Thread(target=one_client, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - wall_start

    with ServeClient(host, port) as probe:
        stats = probe.stats()["stats"]
    flat = sorted(value for per in latencies for value in per)
    total = len(flat)
    return {
        "backend": backend,
        "clients": clients,
        "requests": total,
        "wall_s": round(wall_s, 3),
        "qps": round(total / wall_s, 1) if wall_s > 0 else 0.0,
        "mean_ms": round(statistics.fmean(flat), 3) if flat else 0.0,
        "p50_ms": round(_percentile(flat, 0.50), 3),
        "p95_ms": round(_percentile(flat, 0.95), 3),
        "p99_ms": round(_percentile(flat, 0.99), 3),
        "errors": len(errors),
        "mismatches": len(mismatches),
        "error_samples": errors[:3],
        "mismatch_samples": mismatches[:3],
        "plan_cache_hit_rate": round(
            stats["plan_cache"]["hits"]
            / max(1, stats["plan_cache"]["hits"] + stats["plan_cache"]["misses"]),
            3,
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small data + request counts; assert the CI floors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=_REPO / "BENCH_serving.json",
        help="report destination (default: repo root BENCH_serving.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        db = company_database(num_employees=40, num_departments=8, seed=1998)
        requests_per_client = 24
    else:
        db = company_database(num_employees=200, num_departments=12, seed=1998)
        requests_per_client = 80

    queries = [(q.name, q.oql) for q in CORPUS if q.family == "company"]
    references = {
        name: Optimizer(db).run_oql(oql) for name, oql in queries
    }

    scenarios: list[dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        for backend in ("memory", "sqlite"):
            options = OptimizerOptions()
            if backend == "sqlite":
                options = OptimizerOptions(db_path=str(Path(tmp) / "shred.db"))
            for clients in CLIENT_COUNTS:
                # A fresh server per scenario: clean metrics, cold cache —
                # scenarios stay comparable instead of inheriting warmth.
                config = ServerConfig(database=db, options=options, workers=8)
                with ServerThread(config) as (host, port):
                    scenario = run_scenario(
                        host,
                        port,
                        queries,
                        references,
                        clients,
                        requests_per_client,
                        backend,
                    )
                scenarios.append(scenario)
                print(
                    f"{backend:>6} backend, {clients:>2} clients: "
                    f"{scenario['qps']:>7.1f} qps, "
                    f"p50 {scenario['p50_ms']:.1f} ms, "
                    f"p95 {scenario['p95_ms']:.1f} ms, "
                    f"p99 {scenario['p99_ms']:.1f} ms, "
                    f"errors {scenario['errors']}"
                )

    report = {
        "benchmark": "serving layer: concurrent clients vs one server",
        "mode": "quick" if args.quick else "full",
        "workload": (
            f"{len(queries)} company-family corpus queries round-robin, "
            f"{requests_per_client} requests per client, cross-checked "
            "against in-process execution"
        ),
        "timing": "per-request client-side latency, wall-clock ms",
        "scenarios": scenarios,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[written to {args.output}]")

    failures = []
    for scenario in scenarios:
        label = f"{scenario['backend']}/{scenario['clients']}"
        if scenario["errors"]:
            failures.append(
                f"{label}: {scenario['errors']} errors "
                f"(e.g. {scenario['error_samples']})"
            )
        if scenario["mismatches"]:
            failures.append(
                f"{label}: {scenario['mismatches']} result mismatches"
            )
    if args.quick:
        best_memory_qps = max(
            s["qps"] for s in scenarios if s["backend"] == "memory"
        )
        if best_memory_qps < QUICK_QPS_FLOOR:
            failures.append(
                f"throughput floor: best memory-backend scenario "
                f"{best_memory_qps} qps < {QUICK_QPS_FLOOR}"
            )
    if failures:
        print("FAILURES:", *failures, sep="\n  ")
        return 1
    print("all serving invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
