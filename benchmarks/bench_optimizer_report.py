"""Section 6 — the optimizer size report.

The paper reports its OPTL optimizer's size phase by phase:

    825 lines of OPTL total, of which
     30  normalization of comprehensions
     34  normalization of predicates (DeMorgan)
     88  query unnesting
     42  materialization of path expressions into joins
     48  various algebraic optimizations (incl. join permutation)
    126  translation into physical plans

This module regenerates the analogous inventory for this reproduction:
source lines and rewrite-rule counts per phase, written to
``results/optimizer_report.txt`` and compared side by side with the paper's
numbers in EXPERIMENTS.md.  The benchmark times the full compile pipeline
(parse → translate → normalize → unnest → simplify → rewrite → physical).
"""

from __future__ import annotations

from pathlib import Path

import repro.core.normalization
import repro.core.optimizer
import repro.core.rewrite
import repro.core.simplification
import repro.core.unnesting
import repro.engine.cost
import repro.engine.planner
import repro.engine.physical
from repro.core.optimizer import ALGEBRAIC_RULES, Optimizer
from repro.data.datagen import university_database

PAPER_LINES = {
    "normalization of comprehensions": 30,
    "normalization of predicates": 34,
    "query unnesting": 88,
    "path materialization": 42,
    "algebraic optimizations": 48,
    "physical plan translation": 126,
    "total (OPTL)": 825,
}


def _count_lines(module) -> int:
    path = Path(module.__file__)
    return sum(
        1
        for line in path.read_text().splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


def test_optimizer_report(report_writer, benchmark):
    ours = {
        "normalization (N1-N9 + predicates + canonical form)": _count_lines(
            repro.core.normalization
        ),
        "query unnesting (C1-C9)": _count_lines(repro.core.unnesting),
        "simplification (Section 5)": _count_lines(repro.core.simplification),
        "rewrite engine (OPTGEN analogue)": _count_lines(repro.core.rewrite),
        "optimizer driver + algebraic rules + join order": _count_lines(
            repro.core.optimizer
        ),
        "physical planning": _count_lines(repro.engine.planner),
        "physical operators": _count_lines(repro.engine.physical),
        "cost model": _count_lines(repro.engine.cost),
    }
    lines = ["Paper (OPTL lines, Section 6):"]
    for name, count in PAPER_LINES.items():
        lines.append(f"  {count:5d}  {name}")
    lines.append("")
    lines.append("This reproduction (non-blank non-comment Python lines):")
    for name, count in ours.items():
        lines.append(f"  {count:5d}  {name}")
    lines.append(f"  {sum(ours.values()):5d}  total")
    from repro.core.normalization import NORMALIZATION_RULES

    lines.append("")
    lines.append(
        "declarative rewrite rules per phase (the OPTL-style rule counts): "
        f"normalization={len(NORMALIZATION_RULES)}, "
        f"algebraic={len(ALGEBRAIC_RULES)}, "
        "unnesting=9 (C1-C9), simplification=1 (Section 5)"
    )
    lines.append(
        "note: path materialization is intentionally absent — the object "
        "store embeds objects by value, so paths are direct navigations "
        "(see DESIGN.md)."
    )
    report_writer("optimizer_report", "\n".join(lines))

    # sanity: every phase the paper lists has a non-trivial counterpart
    assert all(count > 20 for count in ours.values())

    db = university_database(num_students=20, num_courses=8, seed=1998)
    optimizer = Optimizer(db)
    source = (
        "select distinct s from s in Student "
        'where for all c in ( select c from c in Courses where c.title = "DB" ): '
        "exists t in Transcript: (t.id = s.id and t.cno = c.cno)"
    )
    benchmark(optimizer.compile_oql, source)


def test_rule_firing_inventory(report_writer, benchmark):
    """Which rules fire on the flagship queries (the optimizer's working
    set, analogous to the paper's per-phase breakdown)."""
    from corpus_queries import FLAGSHIP

    counts: dict[str, int] = {}
    db_cache = {}
    for name, family, source in FLAGSHIP:
        db = db_cache.setdefault(family, _database(family))
        compiled = Optimizer(db).compile_oql(source)
        for rule in compiled.trace.rules_fired():
            counts[f"unnesting/{rule}"] = counts.get(f"unnesting/{rule}", 0) + 1
        for firing in compiled.rule_firings:
            key = f"{firing.phase}/{firing.rule}"
            counts[key] = counts.get(key, 0) + 1
    lines = ["rule firings across the flagship queries:"]
    for key in sorted(counts):
        lines.append(f"  {counts[key]:4d}  {key}")
    report_writer("rule_firings", "\n".join(lines))
    assert counts.get("unnesting/C2", 0) >= len(FLAGSHIP) - 1

    db = _database("company")
    benchmark(
        Optimizer(db).compile_oql,
        "select distinct e.name from e in Employees where e.age > 30",
    )


def _database(family: str):
    from repro.data.datagen import (
        ab_database,
        company_database,
        travel_database,
        university_database,
    )

    makers = {
        "company": lambda: company_database(40, 8, seed=1998),
        "university": lambda: university_database(30, 10, seed=1998),
        "travel": lambda: travel_database(seed=1998),
        "ab": lambda: ab_database(20, 30, seed=1998),
    }
    return makers[family]()
