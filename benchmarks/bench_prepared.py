"""Prepared-statement serving: compile-per-call vs. cached-plan execution.

Simulates the serving-layer workload the plan cache exists for: a stream of
queries that differ only in their literal constants.  Every corpus query is
literal-lifted into a ``:pN``-parameterized template
(:func:`repro.oql.parameterize_literals`); the *ad-hoc* strategy recompiles
the query text on every call (cache disabled by keying each call uniquely —
here simply a fresh pipeline per call), while the *prepared* strategy
compiles once and re-executes the cached plan with bound parameters.

Writes ``results/prepared_statements.txt``: per query, the one-shot compile
time, both per-call latencies, and the speedup.  The assertions pin the
feature's two claims: identical results under rebinding, and a material
aggregate win for cached-plan execution.
"""

from __future__ import annotations

import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from corpus import CORPUS  # noqa: E402

from repro.core.pipeline import QueryPipeline  # noqa: E402
from repro.data.datagen import (  # noqa: E402
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)
from repro.oql import parameterize_literals  # noqa: E402

from conftest import timed  # noqa: E402

_DATABASES = {
    "company": lambda: company_database(60, 8, seed=1998),
    "university": lambda: university_database(40, 12, seed=1998),
    "travel": lambda: travel_database(6, 5, seed=1998),
    "ab": lambda: ab_database(30, 40, seed=1998),
    "auction": lambda: auction_database(40, 25, seed=1998),
}


def test_prepared_statements(report_writer, benchmark):
    databases = {name: maker() for name, maker in _DATABASES.items()}
    rows = [
        f"{'query':32} {'params':>6} {'compile_ms':>10} {'adhoc_ms':>9} "
        f"{'cached_ms':>9} {'speedup':>8}"
    ]
    speedups = []
    for query in CORPUS:
        db = databases[query.family]
        source, params = parameterize_literals(query.oql)
        pipeline = QueryPipeline(db)

        # One-shot preparation cost (parse → … → plan, no cache involved).
        compiled, compile_ms = timed(pipeline.compile_oql, source, repeat=1)

        def adhoc() -> object:
            # A client that sends raw text to a cache-less server: full
            # recompilation on every call.
            return QueryPipeline(db).compile_oql(source).execute(db, **params)

        def prepared() -> object:
            # A client that prepared once: the pipeline serves the cached
            # plan and only execution runs.
            return pipeline.compile_oql(source).execute(db, **params)

        adhoc_result, adhoc_ms = timed(adhoc)
        prepared_result, prepared_ms = timed(prepared)
        assert prepared_result == adhoc_result, query.name
        assert prepared_result == QueryPipeline(db).run_oql(query.oql), query.name

        speedup = adhoc_ms / max(prepared_ms, 1e-6)
        speedups.append(speedup)
        rows.append(
            f"{query.name:32} {len(params):>6} {compile_ms:>10.2f} "
            f"{adhoc_ms:>9.2f} {prepared_ms:>9.2f} {speedup:>7.1f}x"
        )

        # After the timing loop the template was served from cache many
        # times but compiled exactly once.
        assert pipeline.stage_counts["parse"] == 1, query.name
        assert pipeline.plan_cache.hits >= 1, query.name

    rows.append("")
    rows.append(
        f"geometric-mean speedup, {len(speedups)} queries: "
        f"{statistics.geometric_mean(speedups):.1f}x"
    )
    report_writer("prepared_statements", "\n".join(rows))

    # Cached-plan execution must be materially faster than per-call
    # compilation across the corpus.
    assert statistics.geometric_mean(speedups) > 1.5

    flagship = next(q for q in CORPUS if q.name == "query_e")
    db = databases[flagship.family]
    source, params = parameterize_literals(flagship.oql)
    pipeline = QueryPipeline(db)
    template = pipeline.compile_oql(source)
    benchmark(lambda: template.execute(db, **params))
