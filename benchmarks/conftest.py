"""Shared benchmark fixtures and the experiment-report helper.

Every benchmark module regenerates one paper artifact (a figure's plan
shape, the Section 6 optimizer report, or the timing experiment Section 8
calls for).  Reports are written to ``benchmarks/results/`` so the numbers
cited in EXPERIMENTS.md can be re-derived with one command:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"

sys.path.insert(0, str(Path(__file__).resolve().parent))


@pytest.fixture(scope="session")
def report_writer():
    """Write (and echo) a named experiment report."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        out_path = RESULTS_DIR / f"{name}.txt"
        out_path.write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}\n[written to {out_path}]")

    return write


def timed(fn, *args, repeat: int = 3):
    """Best-of-*repeat* wall time of ``fn(*args)`` in milliseconds."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return result, best * 1000.0
