"""Batch-execution benchmark report: ``BENCH_batch.json``.

Runs every corpus query twice through the full pipeline — once on the
batch-at-a-time path (the default: operators exchange columnar chunks and
expressions run as tier-3 batch kernels) and once with
``batched_exec=False`` (tuple-at-a-time iterators invoking a compiled
closure per row) — on identical physical plans, and writes a
machine-readable report to ``BENCH_batch.json`` at the repository root:
per-query wall-clock for both modes, rows returned, the speedup, and the
geometric-mean speedup across the corpus.

Both sides run with expression compilation on, so the ratio isolates what
batching alone buys over the tier-1/2 closure engine (the closure engine's
own win over AST interpretation is ``BENCH_compiled.json``'s subject).

Timing is best-of-N (the minimum over N alternating repeats), which is the
standard way to strip scheduler noise from sub-second microbenchmarks.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py          # full report
    PYTHONPATH=src python benchmarks/bench_batch.py --quick  # CI smoke

The full run asserts a >= 1.3x geometric-mean speedup (the acceptance bar
for the batch layer).  ``--quick`` uses smaller databases and fewer
repeats — too noisy to pin a ratio, so it instead asserts the
machine-independent invariants: batch and row modes agree on every query,
the flagship plans report chunked output (``batches_produced`` > 0 on at
least one operator — no silent fallback to the row path), and the
geometric mean clears a loose floor of 1.0x.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Callable

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "tests"))
sys.path.insert(0, str(_REPO / "src"))

from corpus import CORPUS  # noqa: E402

from repro.core.optimizer import OptimizerOptions  # noqa: E402
from repro.core.pipeline import QueryPipeline  # noqa: E402
from repro.data.datagen import (  # noqa: E402
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)
from repro.data.values import CollectionValue  # noqa: E402
from repro.testing.oracle import results_equal  # noqa: E402

#: Database builders per corpus family, full-size and quick-size.  Full
#: sizes are picked so per-row execution dominates per-query fixed costs
#: (parse-cache lookup, physical planning) — batching amortizes per-chunk
#: work, so its advantage only shows once queries run past a few hundred
#: microseconds.
_FULL_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(700, 20, seed=1998),
    "university": lambda: university_database(300, 40, seed=1998),
    "travel": lambda: travel_database(60, 16, seed=1998),
    "ab": lambda: ab_database(300, 300, seed=1998),
    "auction": lambda: auction_database(500, 150, seed=1998),
}
_QUICK_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(60, 8, seed=1998),
    "university": lambda: university_database(40, 12, seed=1998),
    "travel": lambda: travel_database(6, 5, seed=1998),
    "ab": lambda: ab_database(30, 40, seed=1998),
    "auction": lambda: auction_database(40, 25, seed=1998),
}

#: Queries whose batched plans must actually produce chunks — a
#: deterministic regression check that the batch path covers the paper's
#: examples end to end (a kernel emitter regression silently dropping to
#: the row adapter everywhere would still pass the agreement check).
_FLAGSHIP = ("query_a", "query_b", "query_d", "query_e")


def _best_of(fn: Callable[[], Any], repeats: int) -> tuple[Any, float]:
    """(result, best wall-clock ms) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return result, best


def _row_count(result: Any) -> int:
    if isinstance(result, CollectionValue):
        return len(result)
    return 1


def _produces_batches(pipeline: QueryPipeline, oql: str) -> bool:
    """Whether any operator of the executed plan emitted chunks."""
    stats = pipeline.run_oql_stats(oql)
    return any(op.batches_produced for op in stats.operators)


def build_report(quick: bool) -> dict[str, Any]:
    makers = _QUICK_DATABASES if quick else _FULL_DATABASES
    repeats = 3 if quick else 7
    databases = {name: maker() for name, maker in makers.items()}

    queries = []
    speedups = []
    for query in CORPUS:
        db = databases[query.family]
        batch_pipeline = QueryPipeline(db)
        row_pipeline = QueryPipeline(db, OptimizerOptions(batched_exec=False))
        # Compile once up front so the timed region measures execution, not
        # parsing/unnesting (plan-cache hits on every repeat).
        batch_pipeline.compile_oql(query.oql)
        row_pipeline.compile_oql(query.oql)

        batch_result, batch_ms = None, float("inf")
        row_result, row_ms = None, float("inf")
        # Alternate modes within each repeat so cache/frequency drift hits
        # both sides equally.
        for _ in range(repeats):
            r, ms = _best_of(lambda: batch_pipeline.run_oql(query.oql), 1)
            batch_result, batch_ms = r, min(batch_ms, ms)
            r, ms = _best_of(lambda: row_pipeline.run_oql(query.oql), 1)
            row_result, row_ms = r, min(row_ms, ms)

        if not results_equal(batch_result, row_result):
            raise AssertionError(
                f"{query.name}: batch and row execution disagree"
            )
        speedup = row_ms / max(batch_ms, 1e-6)
        speedups.append(speedup)
        queries.append(
            {
                "name": query.name,
                "family": query.family,
                "rows": _row_count(batch_result),
                "batch_ms": round(batch_ms, 4),
                "row_ms": round(row_ms, 4),
                "speedup": round(speedup, 3),
            }
        )

        if query.name in _FLAGSHIP and not _produces_batches(
            batch_pipeline, query.oql
        ):
            raise AssertionError(
                f"{query.name}: batched pipeline produced no chunks — the "
                "plan silently fell back to the row path"
            )

    geomean = statistics.geometric_mean(speedups)
    return {
        "benchmark": "batch-at-a-time vs tuple-at-a-time execution",
        "mode": "quick" if quick else "full",
        "timing": f"best of {repeats} alternating repeats, wall-clock ms",
        "queries": queries,
        "geometric_mean_speedup": round(geomean, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small databases, fewer repeats, loose assertions (CI smoke)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=_REPO / "BENCH_batch.json",
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(q["name"]) for q in report["queries"])
    print(f"{'query':{width}} {'batch':>10} {'row':>10} {'speedup':>8}")
    for q in report["queries"]:
        print(
            f"{q['name']:{width}} {q['batch_ms']:>9.2f}ms "
            f"{q['row_ms']:>9.2f}ms {q['speedup']:>7.2f}x"
        )
    geomean = report["geometric_mean_speedup"]
    print(f"\ngeometric-mean speedup over {len(report['queries'])} queries: "
          f"{geomean:.2f}x -> {args.output}")

    floor = 1.0 if args.quick else 1.3
    if geomean < floor:
        print(f"FAIL: geometric mean {geomean:.2f}x below the {floor}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
