"""Out-of-core smoke: corpus sweep against a file-backed shredded store.

Shreds every benchmark family to an on-disk SQLite file with a
deliberately tiny page cache (``PRAGMA cache_size``), asserts the shredded
dataset is larger than that cache budget — so query execution genuinely
pages, it cannot hold the working set resident — and then runs the full
53-query corpus against the file-backed store, comparing every result
with the in-memory reference pipeline.

Assertions (all loud; the job never skips silently):

* every shredded file (db + WAL) outgrows the configured cache budget;
* every corpus query executes — a ``BackendUnsupportedError`` on a corpus
  query is a coverage regression and fails the run;
* every result matches the in-memory reference engine;
* a *reopened* store (fresh ``Database`` instance, same ``db_path``)
  reuses the on-disk shred via its manifest fingerprint instead of
  re-shredding, and still returns reference-equal results.

Usage::

    PYTHONPATH=src python benchmarks/out_of_core_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from typing import Any, Callable

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "tests"))
sys.path.insert(0, str(_REPO / "src"))

from corpus import CORPUS  # noqa: E402

from repro.backends.shred import shredded_store  # noqa: E402
from repro.core.optimizer import OptimizerOptions  # noqa: E402
from repro.core.pipeline import QueryPipeline  # noqa: E402
from repro.data.datagen import (  # noqa: E402
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)
from repro.errors import BackendUnsupportedError  # noqa: E402
from repro.testing.oracle import results_equal  # noqa: E402

#: Page-cache budget per connection, KiB.  Small enough that every
#: benchmark family's shredded image outgrows it with a wide margin.
_CACHE_KIB = 32

_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(700, 20, seed=1998),
    "university": lambda: university_database(300, 40, seed=1998),
    "travel": lambda: travel_database(60, 16, seed=1998),
    "ab": lambda: ab_database(300, 300, seed=1998),
    "auction": lambda: auction_database(500, 150, seed=1998),
}


def _on_disk_bytes(path: Path) -> int:
    """Total bytes of the database image (main file + WAL, if present)."""
    total = path.stat().st_size if path.exists() else 0
    wal = path.with_name(path.name + "-wal")
    if wal.exists():
        total += wal.stat().st_size
    return total


def run_smoke(tmp: Path) -> int:
    failures = 0
    databases = {name: maker() for name, maker in _DATABASES.items()}
    paths = {name: tmp / f"{name}.db" for name in databases}

    # Shred each family to disk under the tiny cache budget and check the
    # image actually outgrows it.
    for name, db in databases.items():
        store = shredded_store(db, db_path=str(paths[name]), cache_kib=_CACHE_KIB)
        assert not store.reused, f"{name}: fresh path unexpectedly reused"
        size = _on_disk_bytes(paths[name])
        budget = _CACHE_KIB * 1024
        print(
            f"{name:10s} shredded to {paths[name].name}: "
            f"{size / 1024:.0f} KiB on disk vs {_CACHE_KIB} KiB cache"
        )
        if size <= budget:
            print(
                f"FAIL: {name} image ({size} B) fits the cache budget "
                f"({budget} B) — not an out-of-core run",
                file=sys.stderr,
            )
            failures += 1

    # Full corpus sweep: file-backed store vs in-memory reference.
    ran = 0
    for query in CORPUS:
        db = databases[query.family]
        reference = QueryPipeline(db)
        file_backed = QueryPipeline(
            db,
            OptimizerOptions(backend="sqlite", db_path=str(paths[query.family])),
        )
        expected = reference.run_oql(query.oql)
        try:
            actual = file_backed.run_oql(query.oql)
        except BackendUnsupportedError as exc:
            print(
                f"FAIL: {query.name}: file-backed store refused a corpus "
                f"query — coverage regressed: {exc}",
                file=sys.stderr,
            )
            failures += 1
            continue
        ran += 1
        if not results_equal(expected, actual):
            print(
                f"FAIL: {query.name}: file-backed result differs from the "
                "in-memory reference",
                file=sys.stderr,
            )
            failures += 1
    print(f"corpus sweep: {ran}/{len(CORPUS)} queries ran out-of-core")
    if ran != len(CORPUS):
        failures += 1

    # Reopen: a fresh Database instance with the same values must reuse
    # the on-disk shred (manifest fingerprint match) and still agree.
    reopened = {name: maker() for name, maker in _DATABASES.items()}
    for name, db in reopened.items():
        store = shredded_store(
            db, db_path=str(paths[name]), cache_kib=_CACHE_KIB
        )
        if not store.reused:
            print(
                f"FAIL: {name}: reopened store re-shredded instead of "
                "reusing the manifest-matched on-disk image",
                file=sys.stderr,
            )
            failures += 1
    for query in CORPUS[:: len(CORPUS) // 5 or 1]:
        db = reopened[query.family]
        pipe = QueryPipeline(
            db,
            OptimizerOptions(backend="sqlite", db_path=str(paths[query.family])),
        )
        expected = QueryPipeline(db).run_oql(query.oql)
        if not results_equal(expected, pipe.run_oql(query.oql)):
            print(
                f"FAIL: {query.name}: reopened store disagrees with the "
                "reference",
                file=sys.stderr,
            )
            failures += 1
    return failures


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-ooc-") as tmp:
        failures = run_smoke(Path(tmp))
    if failures:
        print(f"{failures} failure(s)", file=sys.stderr)
        return 1
    print("out-of-core smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
