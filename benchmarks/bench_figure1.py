"""Figure 1 — the algebraic plans of the paper's queries A–E.

For each query this module (a) regenerates the plan and asserts its
operator skeleton is exactly the one the paper draws, (b) writes the
rendered plan tree to ``results/fig1.txt``, and (c) benchmarks the
unnested physical execution against the naive nested-loop baseline — the
experiment the paper's Section 8 proposes.
"""

from __future__ import annotations

import pytest

from repro.algebra.pretty import plan_signature, pretty_plan
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.core.unnesting import unnest_query
from repro.data.datagen import ab_database, company_database, university_database
from repro.oql.translator import parse_and_translate

COMPANY = company_database(num_employees=80, num_departments=10, seed=1998)
UNIVERSITY = university_database(num_students=60, num_courses=12, seed=1998)
AB = ab_database(size_a=40, size_b=60, seed=1998)

#: (query id, database, OQL text, the Figure 1 operator skeleton)
FIGURE1 = [
    (
        "fig1A",
        COMPANY,
        "select distinct struct( E: e.name, C: c.name ) "
        "from e in Employees, c in e.children",
        "reduce(unnest(scan))",
    ),
    (
        "fig1B",
        COMPANY,
        "select distinct struct( D: d, E: ( select distinct e "
        "from e in Employees where e.dno = d.dno ) ) from d in Departments",
        "reduce(nest(outer-join(scan, scan)))",
    ),
    (
        "fig1C",
        AB,
        "for all a in A: exists b in B: a = b",
        "reduce(nest(outer-join(scan, scan)))",
    ),
    (
        "fig1D",
        COMPANY,
        "select distinct struct( E: e, M: count( select distinct c "
        "from c in e.children where for all d in e.manager.children: "
        "c.age > d.age ) ) from e in Employees",
        "reduce(nest(nest(outer-unnest(outer-unnest(scan)))))",
    ),
    (
        "fig1E",
        UNIVERSITY,
        "select distinct s from s in Student "
        'where for all c in ( select c from c in Courses where c.title = "DB" ): '
        "exists t in Transcript: (t.id = s.id and t.cno = c.cno)",
        "reduce(nest(nest(outer-join(outer-join(scan, scan), scan))))",
    ),
]


def _unnested(db, source):
    return Optimizer(db).compile_oql(source)


def _naive(db, source):
    return Optimizer(db, OptimizerOptions(unnest=False)).compile_oql(source)


def test_figure1_report(report_writer, benchmark):
    """Regenerate every Figure 1 plan and check its skeleton."""
    lines = []
    for name, db, source, expected in FIGURE1:
        term = parse_and_translate(source, db.schema)
        plan = unnest_query(term)
        signature = plan_signature(plan)
        assert signature == expected, f"{name}: got {signature}"
        lines.append(f"=== {name} ===")
        lines.append(f"OQL: {source}")
        lines.append(f"paper skeleton: {expected}")
        lines.append(pretty_plan(plan))
        lines.append("")
    report_writer("fig1_plans", "\n".join(lines))
    benchmark(lambda: [unnest_query(parse_and_translate(s, d.schema))
                       for _, d, s, _ in FIGURE1])


@pytest.mark.parametrize("name,db,source,expected", FIGURE1, ids=[f[0] for f in FIGURE1])
@pytest.mark.benchmark(group="figure1-unnested")
def test_unnested_execution(benchmark, name, db, source, expected):
    compiled = _unnested(db, source)
    assert plan_signature(compiled.logical) == expected
    result = benchmark(compiled.execute, db)
    assert result is not None


@pytest.mark.parametrize("name,db,source,expected", FIGURE1, ids=[f[0] for f in FIGURE1])
@pytest.mark.benchmark(group="figure1-naive")
def test_naive_execution(benchmark, name, db, source, expected):
    compiled = _naive(db, source)
    reference = _unnested(db, source).execute(db)
    result = benchmark(compiled.execute, db)
    assert result == reference
