"""SQLite shredding backend benchmark report: ``BENCH_shred.json``.

Runs every corpus query twice through the full pipeline — once on the
default in-memory engine and once on the query-shredding SQLite backend
(``OptimizerOptions.backend="sqlite"``: extents shredded into flat tables,
join/unnest chains lowered to flat SELECTs, results stitched back in
Python) — and writes a machine-readable report to ``BENCH_shred.json`` at
the repository root: per-query wall-clock for both backends, rows
returned, the ratio, the flat-query count per shredded plan, and the
geometric-mean ratio across the corpus.

With aggregation pushdown (GROUP BY + aggregates evaluated inside SQLite)
the backend is a real engine, not just a correctness oracle, and the run
asserts a **speedup floor** in ``--quick`` mode: the geometric-mean
sqlite/memory ratio must stay ≥ 0.55×.  The aggregation-heavy corpus
subset (queries with aggregate or quantifier operators — the ones whose
``Reduce``/``Nest`` roots lower to ``GROUP BY``) is reported separately;
on full-size data it is expected at ≥ 1.0×.  The run also asserts, in
both modes:

* both backends agree on every corpus query (the oracle's normalizer);
* every shredded plan actually executed at least one flat SQL query — no
  silent degradation to an all-residual (pure Python) plan;
* zero queries skipped: a ``BackendUnsupportedError`` on corpus queries is
  a coverage regression and fails the run loudly.

Timing is best-of-N (the minimum over N alternating repeats), which is the
standard way to strip scheduler noise from sub-second microbenchmarks.

Usage::

    PYTHONPATH=src python benchmarks/bench_shred.py          # full report
    PYTHONPATH=src python benchmarks/bench_shred.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Callable

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "tests"))
sys.path.insert(0, str(_REPO / "src"))

from corpus import CORPUS  # noqa: E402

from repro.core.optimizer import OptimizerOptions  # noqa: E402
from repro.core.pipeline import QueryPipeline  # noqa: E402
from repro.data.datagen import (  # noqa: E402
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)
from repro.data.values import CollectionValue  # noqa: E402
from repro.errors import BackendUnsupportedError  # noqa: E402
from repro.testing.oracle import results_equal  # noqa: E402

_FULL_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(700, 20, seed=1998),
    "university": lambda: university_database(300, 40, seed=1998),
    "travel": lambda: travel_database(60, 16, seed=1998),
    "ab": lambda: ab_database(300, 300, seed=1998),
    "auction": lambda: auction_database(500, 150, seed=1998),
}
_QUICK_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(60, 8, seed=1998),
    "university": lambda: university_database(40, 12, seed=1998),
    "travel": lambda: travel_database(6, 5, seed=1998),
    "ab": lambda: ab_database(30, 40, seed=1998),
    "auction": lambda: auction_database(40, 25, seed=1998),
}


#: Geomean floor asserted in --quick (CI) mode.
_QUICK_FLOOR = 0.55

#: OQL markers for the aggregation-heavy subset: queries with aggregate
#: or quantifier operators are the ones whose Reduce/Nest roots lower to
#: SQL GROUP BY + aggregates under pushdown.
_AGG_TOKENS = (
    "count(",
    "sum(",
    "avg(",
    "min(",
    "max(",
    "group by",
    "for all",
    "exists",
)


def _is_aggregation_heavy(oql: str) -> bool:
    lowered = oql.lower()
    return any(token in lowered for token in _AGG_TOKENS)


def _best_of(fn: Callable[[], Any], repeats: int) -> tuple[Any, float]:
    """(result, best wall-clock ms) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return result, best


def _row_count(result: Any) -> int:
    if isinstance(result, CollectionValue):
        return len(result)
    return 1


def build_report(quick: bool) -> dict[str, Any]:
    makers = _QUICK_DATABASES if quick else _FULL_DATABASES
    repeats = 3 if quick else 7
    databases = {name: maker() for name, maker in makers.items()}

    queries = []
    ratios = []
    for query in CORPUS:
        db = databases[query.family]
        memory_pipeline = QueryPipeline(db)
        sqlite_pipeline = QueryPipeline(
            db, OptimizerOptions(backend="sqlite")
        )
        # Compile once up front so the timed region measures execution, not
        # parsing/unnesting (plan-cache hits on every repeat).  The first
        # sqlite execution also pays the one-time shredding cost; run it
        # before timing so the report shows steady-state serving.
        memory_pipeline.compile_oql(query.oql)
        sqlite_pipeline.compile_oql(query.oql)
        try:
            flat_count = len(
                sqlite_pipeline.run_oql_stats(query.oql).flat_queries
            )
        except BackendUnsupportedError as exc:
            raise AssertionError(
                f"{query.name}: the SQLite backend refused a corpus query "
                f"— coverage regressed: {exc}"
            ) from exc
        if flat_count == 0:
            raise AssertionError(
                f"{query.name}: shredded plan executed no flat SQL — the "
                "translation silently degraded to an all-residual plan"
            )

        memory_result, memory_ms = None, float("inf")
        sqlite_result, sqlite_ms = None, float("inf")
        # Alternate backends within each repeat so cache/frequency drift
        # hits both sides equally.
        for _ in range(repeats):
            r, ms = _best_of(lambda: memory_pipeline.run_oql(query.oql), 1)
            memory_result, memory_ms = r, min(memory_ms, ms)
            r, ms = _best_of(lambda: sqlite_pipeline.run_oql(query.oql), 1)
            sqlite_result, sqlite_ms = r, min(sqlite_ms, ms)

        if not results_equal(memory_result, sqlite_result):
            raise AssertionError(
                f"{query.name}: in-memory and SQLite backends disagree"
            )
        ratio = memory_ms / max(sqlite_ms, 1e-6)
        ratios.append(ratio)
        queries.append(
            {
                "name": query.name,
                "family": query.family,
                "rows": _row_count(memory_result),
                "flat_queries": flat_count,
                "aggregation": _is_aggregation_heavy(query.oql),
                "memory_ms": round(memory_ms, 4),
                "sqlite_ms": round(sqlite_ms, 4),
                "sqlite_speedup": round(ratio, 3),
            }
        )

    geomean = statistics.geometric_mean(ratios)
    agg_ratios = [
        q["sqlite_speedup"] for q in queries if q["aggregation"]
    ]
    agg_geomean = statistics.geometric_mean(agg_ratios)
    return {
        "benchmark": "in-memory engine vs query-shredding SQLite backend",
        "mode": "quick" if quick else "full",
        "timing": f"best of {repeats} alternating repeats, wall-clock ms",
        "note": (
            "sqlite_speedup > 1 means SQLite was faster; aggregation "
            "pushdown (GROUP BY inside SQLite) carries the "
            "aggregation-heavy subset, reported separately"
        ),
        "queries": queries,
        "geometric_mean_sqlite_speedup": round(geomean, 3),
        "aggregation_subset_queries": len(agg_ratios),
        "aggregation_subset_speedup": round(agg_geomean, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small databases, fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=_REPO / "BENCH_shred.json",
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(q["name"]) for q in report["queries"])
    print(f"{'query':{width}} {'memory':>10} {'sqlite':>10} {'ratio':>7} {'flat':>5}")
    for q in report["queries"]:
        print(
            f"{q['name']:{width}} {q['memory_ms']:>9.2f}ms "
            f"{q['sqlite_ms']:>9.2f}ms {q['sqlite_speedup']:>6.2f}x "
            f"{q['flat_queries']:>5}"
        )
    geomean = report["geometric_mean_sqlite_speedup"]
    agg_geomean = report["aggregation_subset_speedup"]
    print(
        f"\ngeometric-mean sqlite/memory ratio over "
        f"{len(report['queries'])} queries: {geomean:.2f}x "
        f"(aggregation-heavy subset of "
        f"{report['aggregation_subset_queries']}: {agg_geomean:.2f}x) "
        f"-> {args.output}"
    )
    if args.quick and geomean < _QUICK_FLOOR:
        print(
            f"FAIL: quick-mode geomean {geomean:.2f}x is below the "
            f"{_QUICK_FLOOR:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
