"""Compiled-expression benchmark report: ``BENCH_compiled.json``.

Runs every corpus query twice through the full pipeline — once with the
expression compiler (the default) and once with ``compiled_exprs=False``
(the tree-walking :class:`~repro.calculus.evaluator.TermEvaluator` per
row) — on identical physical plans, and writes a machine-readable report
to ``BENCH_compiled.json`` at the repository root: per-query wall-clock
for both engines, rows returned, the speedup, and the geometric-mean
speedup across the corpus.

Timing is best-of-N (the minimum over N alternating repeats), which is the
standard way to strip scheduler noise from sub-second microbenchmarks; a
best-of-3 run on this corpus produced a spurious 0.38x reading that
best-of-7 corrects to ~2x.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py          # full report
    PYTHONPATH=src python benchmarks/bench_report.py --quick  # CI smoke

The full run asserts a >= 2.0x geometric-mean speedup (the acceptance bar
for the compilation layer).  ``--quick`` uses smaller databases and fewer
repeats — too noisy to pin a ratio, so it instead asserts the invariants
that do not depend on the machine: compiled and interpreted engines agree
on every query, the flagship queries report ``exprs=compiled`` on every
expression-bearing operator (no silent fallback regressions), and the
geometric mean clears a loose floor of 1.0x.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Callable

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "tests"))
sys.path.insert(0, str(_REPO / "src"))

from corpus import CORPUS  # noqa: E402

from repro.core.optimizer import OptimizerOptions  # noqa: E402
from repro.core.pipeline import QueryPipeline  # noqa: E402
from repro.data.datagen import (  # noqa: E402
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)
from repro.data.values import CollectionValue  # noqa: E402
from repro.testing.oracle import results_equal  # noqa: E402

#: Database builders per corpus family, full-size and quick-size.
_FULL_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(150, 12, seed=1998),
    "university": lambda: university_database(90, 20, seed=1998),
    "travel": lambda: travel_database(10, 8, seed=1998),
    "ab": lambda: ab_database(60, 80, seed=1998),
    "auction": lambda: auction_database(80, 40, seed=1998),
}
_QUICK_DATABASES: dict[str, Callable[[], Any]] = {
    "company": lambda: company_database(60, 8, seed=1998),
    "university": lambda: university_database(40, 12, seed=1998),
    "travel": lambda: travel_database(6, 5, seed=1998),
    "ab": lambda: ab_database(30, 40, seed=1998),
    "auction": lambda: auction_database(40, 25, seed=1998),
}

#: Queries whose operators must all report ``exprs=compiled`` — a
#: deterministic regression check that codegen covers the paper's examples
#: end to end (a new Term kind silently falling back would trip this).
_FLAGSHIP = ("query_a", "query_b", "query_d", "query_e")


def _best_of(fn: Callable[[], Any], repeats: int) -> tuple[Any, float]:
    """(result, best wall-clock ms) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return result, best


def _row_count(result: Any) -> int:
    if isinstance(result, CollectionValue):
        return len(result)
    return 1


def _eval_modes(pipeline: QueryPipeline, oql: str, db: Any) -> set[str]:
    """The distinct non-empty ``eval_mode`` values across the plan."""
    stats = pipeline.run_oql_stats(oql)
    return {op.eval_mode for op in stats.operators if op.eval_mode}


def build_report(quick: bool) -> dict[str, Any]:
    makers = _QUICK_DATABASES if quick else _FULL_DATABASES
    repeats = 3 if quick else 7
    databases = {name: maker() for name, maker in makers.items()}

    queries = []
    speedups = []
    for query in CORPUS:
        db = databases[query.family]
        compiled_pipeline = QueryPipeline(db)
        interpreted_pipeline = QueryPipeline(db, OptimizerOptions(compiled_exprs=False))
        # Compile once up front so the timed region measures execution, not
        # parsing/unnesting (plan-cache hits on every repeat).
        compiled_pipeline.compile_oql(query.oql)
        interpreted_pipeline.compile_oql(query.oql)

        compiled_result, compiled_ms = None, float("inf")
        interpreted_result, interpreted_ms = None, float("inf")
        # Alternate engines within each repeat so cache/frequency drift hits
        # both sides equally.
        for _ in range(repeats):
            r, ms = _best_of(lambda: compiled_pipeline.run_oql(query.oql), 1)
            compiled_result, compiled_ms = r, min(compiled_ms, ms)
            r, ms = _best_of(lambda: interpreted_pipeline.run_oql(query.oql), 1)
            interpreted_result, interpreted_ms = r, min(interpreted_ms, ms)

        if not results_equal(compiled_result, interpreted_result):
            raise AssertionError(
                f"{query.name}: compiled and interpreted engines disagree"
            )
        speedup = interpreted_ms / max(compiled_ms, 1e-6)
        speedups.append(speedup)
        queries.append(
            {
                "name": query.name,
                "family": query.family,
                "rows": _row_count(compiled_result),
                "compiled_ms": round(compiled_ms, 4),
                "interpreted_ms": round(interpreted_ms, 4),
                "speedup": round(speedup, 3),
            }
        )

        if query.name in _FLAGSHIP:
            modes = _eval_modes(compiled_pipeline, query.oql, db)
            if modes - {"compiled"}:
                raise AssertionError(
                    f"{query.name}: expected every expression-bearing operator "
                    f"to run compiled, saw modes {sorted(modes)}"
                )

    geomean = statistics.geometric_mean(speedups)
    return {
        "benchmark": "compiled expressions vs per-row AST interpretation",
        "mode": "quick" if quick else "full",
        "timing": f"best of {repeats} alternating repeats, wall-clock ms",
        "queries": queries,
        "geometric_mean_speedup": round(geomean, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small databases, fewer repeats, loose assertions (CI smoke)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=_REPO / "BENCH_compiled.json",
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(q["name"]) for q in report["queries"])
    print(f"{'query':{width}} {'compiled':>10} {'interp':>10} {'speedup':>8}")
    for q in report["queries"]:
        print(
            f"{q['name']:{width}} {q['compiled_ms']:>9.2f}ms "
            f"{q['interpreted_ms']:>9.2f}ms {q['speedup']:>7.2f}x"
        )
    geomean = report["geometric_mean_speedup"]
    print(f"\ngeometric-mean speedup over {len(report['queries'])} queries: "
          f"{geomean:.2f}x -> {args.output}")

    floor = 1.0 if args.quick else 2.0
    if geomean < floor:
        print(f"FAIL: geometric mean {geomean:.2f}x below the {floor}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
