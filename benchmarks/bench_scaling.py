"""Section 8's proposed experiment: quantify the unnesting speedup.

"Another goal is to quantify the performance improvement gained by query
unnesting by testing various nested queries" — this module runs exactly
that, across Kim's four nesting classes (type N, J, A, JA, the taxonomy the
paper uses in Section 2), sweeping the database size and recording the
naive-vs-unnested crossover, with and without hash joins, so "unnesting
removes recomputation" is separated from "unnesting enables hash joins".

Expected shape (and what the assertions pin):

* the naive strategy is O(|outer| × |inner|) and the unnested plan with
  hash joins is near-linear, so the speedup *grows* with database size;
* even without hash joins, unnesting never loses by more than a small
  constant (the plans do the same nested-loop work at worst).
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.data.datagen import company_database, university_database

from conftest import timed

#: (class, description, database family, OQL)
CLASSES = [
    (
        "type-N",
        "uncorrelated subquery in the predicate (membership)",
        "university",
        "select distinct s.name from s in Student "
        "where s.id in ( select t.id from t in Transcript where t.cno <= 2 )",
    ),
    (
        "type-J",
        "correlated existential subquery",
        "university",
        "select distinct s.name from s in Student "
        "where exists t in Transcript: (t.id = s.id and t.grade >= 3)",
    ),
    (
        "type-A",
        "uncorrelated aggregate in the predicate",
        "company",
        "select distinct e.name from e in Employees "
        "where e.salary > avg( select u.salary from u in Employees )",
    ),
    (
        "type-JA",
        "correlated aggregate in the predicate",
        "company",
        "select distinct e.name from e in Employees "
        "where e.salary >= max( select u.salary from u in Employees "
        "where u.dno = e.dno )",
    ),
]

SIZES = (25, 50, 100, 200)


def _database(family: str, size: int):
    if family == "company":
        return company_database(num_employees=size, num_departments=max(size // 10, 2),
                                seed=1998)
    return university_database(num_students=size, num_courses=10, seed=1998)


def _strategies(db):
    return {
        "naive": Optimizer(db, OptimizerOptions(unnest=False)),
        "unnested-nl": Optimizer(db, OptimizerOptions(hash_joins=False)),
        "unnested-hash": Optimizer(db),
    }


def test_scaling_report(report_writer, benchmark):
    lines = []
    final_speedups = {}
    for class_name, description, family, source in CLASSES:
        lines.append(f"=== {class_name}: {description} ===")
        lines.append(f"OQL: {source}")
        lines.append(
            f"{'size':>6} {'naive_ms':>10} {'unnested_nl_ms':>15} "
            f"{'unnested_hash_ms':>17} {'speedup_hash':>13}"
        )
        for size in SIZES:
            db = _database(family, size)
            times = {}
            results = {}
            for label, optimizer in _strategies(db).items():
                compiled = optimizer.compile_oql(source)
                results[label], times[label] = timed(compiled.execute, db)
            assert results["naive"] == results["unnested-hash"] == results[
                "unnested-nl"
            ]
            speedup = times["naive"] / times["unnested-hash"]
            final_speedups.setdefault(class_name, []).append(speedup)
            lines.append(
                f"{size:>6} {times['naive']:>10.2f} "
                f"{times['unnested-nl']:>15.2f} "
                f"{times['unnested-hash']:>17.2f} {speedup:>12.1f}x"
            )
        lines.append("")

    for class_name, speedups in final_speedups.items():
        lines.append(
            f"{class_name}: speedup at n={SIZES[0]}: {speedups[0]:.1f}x, "
            f"at n={SIZES[-1]}: {speedups[-1]:.1f}x"
        )
        # The headline claim: for correlated classes the gap must widen with
        # size; for the uncorrelated classes unnesting must at least win at
        # the largest size (the subquery is computed once either way, but
        # the unnested plan hashes the membership test).
        if class_name in ("type-J", "type-JA"):
            assert speedups[-1] > speedups[0], f"{class_name} gap did not widen"
        assert speedups[-1] > 1.0, f"{class_name} never won"

    report_writer("scaling", "\n".join(lines))
    db = _database("university", 50)
    compiled = Optimizer(db).compile_oql(CLASSES[1][3])
    benchmark(compiled.execute, db)


@pytest.mark.parametrize(
    "class_name,description,family,source", CLASSES, ids=[c[0] for c in CLASSES]
)
@pytest.mark.benchmark(group="scaling-naive")
def test_naive_at_100(benchmark, class_name, description, family, source):
    db = _database(family, 100)
    compiled = Optimizer(db, OptimizerOptions(unnest=False)).compile_oql(source)
    benchmark(compiled.execute, db)


@pytest.mark.parametrize(
    "class_name,description,family,source", CLASSES, ids=[c[0] for c in CLASSES]
)
@pytest.mark.benchmark(group="scaling-unnested")
def test_unnested_at_100(benchmark, class_name, description, family, source):
    db = _database(family, 100)
    compiled = Optimizer(db).compile_oql(source)
    benchmark(compiled.execute, db)
