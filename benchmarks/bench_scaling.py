"""Section 8's proposed experiment: quantify the unnesting speedup.

"Another goal is to quantify the performance improvement gained by query
unnesting by testing various nested queries" — this module runs exactly
that, across Kim's four nesting classes (type N, J, A, JA, the taxonomy the
paper uses in Section 2), sweeping the database size and recording the
naive-vs-unnested crossover, with and without hash joins, so "unnesting
removes recomputation" is separated from "unnesting enables hash joins".

Expected shape (and what the assertions pin):

* the naive strategy is O(|outer| × |inner|) and the unnested plan with
  hash joins is near-linear, so the speedup *grows* with database size;
* even without hash joins, unnesting never loses by more than a small
  constant (the plans do the same nested-loop work at worst).

Run as a script, this module instead benchmarks **parallel partitioned
execution** (repro.engine.exchange) and writes ``BENCH_parallel.json``::

    PYTHONPATH=src python benchmarks/bench_scaling.py          # full report
    PYTHONPATH=src python benchmarks/bench_scaling.py --quick  # CI smoke

Every corpus query runs serially and through the exchange layer at a
sweep of worker counts, with agreement asserted on all of them.  The
speedup floor is machine-aware: the >= 2x geometric-mean bar at 4 workers
only applies on free-threaded interpreters with >= 4 cores — on a
GIL-enabled or small-core host, CPU-bound threads cannot speed up, so the
run instead asserts agreement plus a no-pathological-slowdown sanity
floor, and records cores/GIL state in the report so the numbers are
honest about where they were measured.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Callable

_REPO = Path(__file__).resolve().parent.parent

import pytest

from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.data.datagen import company_database, university_database

from conftest import timed

#: (class, description, database family, OQL)
CLASSES = [
    (
        "type-N",
        "uncorrelated subquery in the predicate (membership)",
        "university",
        "select distinct s.name from s in Student "
        "where s.id in ( select t.id from t in Transcript where t.cno <= 2 )",
    ),
    (
        "type-J",
        "correlated existential subquery",
        "university",
        "select distinct s.name from s in Student "
        "where exists t in Transcript: (t.id = s.id and t.grade >= 3)",
    ),
    (
        "type-A",
        "uncorrelated aggregate in the predicate",
        "company",
        "select distinct e.name from e in Employees "
        "where e.salary > avg( select u.salary from u in Employees )",
    ),
    (
        "type-JA",
        "correlated aggregate in the predicate",
        "company",
        "select distinct e.name from e in Employees "
        "where e.salary >= max( select u.salary from u in Employees "
        "where u.dno = e.dno )",
    ),
]

SIZES = (25, 50, 100, 200)


def _database(family: str, size: int):
    if family == "company":
        return company_database(num_employees=size, num_departments=max(size // 10, 2),
                                seed=1998)
    return university_database(num_students=size, num_courses=10, seed=1998)


def _strategies(db):
    return {
        "naive": Optimizer(db, OptimizerOptions(unnest=False)),
        "unnested-nl": Optimizer(db, OptimizerOptions(hash_joins=False)),
        "unnested-hash": Optimizer(db),
    }


def test_scaling_report(report_writer, benchmark):
    lines = []
    final_speedups = {}
    for class_name, description, family, source in CLASSES:
        lines.append(f"=== {class_name}: {description} ===")
        lines.append(f"OQL: {source}")
        lines.append(
            f"{'size':>6} {'naive_ms':>10} {'unnested_nl_ms':>15} "
            f"{'unnested_hash_ms':>17} {'speedup_hash':>13}"
        )
        for size in SIZES:
            db = _database(family, size)
            times = {}
            results = {}
            for label, optimizer in _strategies(db).items():
                compiled = optimizer.compile_oql(source)
                results[label], times[label] = timed(compiled.execute, db)
            assert results["naive"] == results["unnested-hash"] == results[
                "unnested-nl"
            ]
            speedup = times["naive"] / times["unnested-hash"]
            final_speedups.setdefault(class_name, []).append(speedup)
            lines.append(
                f"{size:>6} {times['naive']:>10.2f} "
                f"{times['unnested-nl']:>15.2f} "
                f"{times['unnested-hash']:>17.2f} {speedup:>12.1f}x"
            )
        lines.append("")

    for class_name, speedups in final_speedups.items():
        lines.append(
            f"{class_name}: speedup at n={SIZES[0]}: {speedups[0]:.1f}x, "
            f"at n={SIZES[-1]}: {speedups[-1]:.1f}x"
        )
        # The headline claim: for correlated classes the gap must widen with
        # size; for the uncorrelated classes unnesting must at least win at
        # the largest size (the subquery is computed once either way, but
        # the unnested plan hashes the membership test).
        if class_name in ("type-J", "type-JA"):
            assert speedups[-1] > speedups[0], f"{class_name} gap did not widen"
        assert speedups[-1] > 1.0, f"{class_name} never won"

    report_writer("scaling", "\n".join(lines))
    db = _database("university", 50)
    compiled = Optimizer(db).compile_oql(CLASSES[1][3])
    benchmark(compiled.execute, db)


@pytest.mark.parametrize(
    "class_name,description,family,source", CLASSES, ids=[c[0] for c in CLASSES]
)
@pytest.mark.benchmark(group="scaling-naive")
def test_naive_at_100(benchmark, class_name, description, family, source):
    db = _database(family, 100)
    compiled = Optimizer(db, OptimizerOptions(unnest=False)).compile_oql(source)
    benchmark(compiled.execute, db)


@pytest.mark.parametrize(
    "class_name,description,family,source", CLASSES, ids=[c[0] for c in CLASSES]
)
@pytest.mark.benchmark(group="scaling-unnested")
def test_unnested_at_100(benchmark, class_name, description, family, source):
    db = _database(family, 100)
    compiled = Optimizer(db).compile_oql(source)
    benchmark(compiled.execute, db)


# ---------------------------------------------------------------------------
# Parallel-execution benchmark report: ``BENCH_parallel.json``
# ---------------------------------------------------------------------------

_PARALLEL_WORKERS = (1, 2, 4)

#: Database builders per corpus family (mirroring bench_batch.py: full
#: sizes make per-row work dominate fixed costs; quick sizes keep CI fast).
_FULL_DATABASES: dict[str, Callable[[], Any]] = {}
_QUICK_DATABASES: dict[str, Callable[[], Any]] = {}


def _init_parallel_bench() -> None:
    """Deferred imports: tests/ (for the corpus) is only put on sys.path
    when the module runs as a script, not under pytest collection."""
    sys.path.insert(0, str(_REPO / "tests"))
    sys.path.insert(0, str(_REPO / "src"))
    from repro.data.datagen import (
        ab_database,
        auction_database,
        travel_database,
    )

    _FULL_DATABASES.update(
        {
            "company": lambda: company_database(700, 20, seed=1998),
            "university": lambda: university_database(300, 40, seed=1998),
            "travel": lambda: travel_database(60, 16, seed=1998),
            "ab": lambda: ab_database(300, 300, seed=1998),
            "auction": lambda: auction_database(500, 150, seed=1998),
        }
    )
    _QUICK_DATABASES.update(
        {
            "company": lambda: company_database(60, 8, seed=1998),
            "university": lambda: university_database(40, 12, seed=1998),
            "travel": lambda: travel_database(6, 5, seed=1998),
            "ab": lambda: ab_database(30, 40, seed=1998),
            "auction": lambda: auction_database(40, 25, seed=1998),
        }
    )


def _machine() -> dict[str, Any]:
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    # Free-threaded builds (3.13+) report via _is_gil_enabled; anything
    # older is by definition GIL-bound.
    gil = getattr(sys, "_is_gil_enabled", lambda: True)()
    return {
        "cores": cores,
        "gil_enabled": bool(gil),
        "python": sys.version.split()[0],
    }


def _best_of_ms(fn: Callable[[], Any], repeats: int) -> tuple[Any, float]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return result, best


def build_parallel_report(quick: bool) -> dict[str, Any]:
    from corpus import CORPUS

    from repro.core.pipeline import QueryPipeline
    from repro.engine.exchange import PGather
    from repro.testing.oracle import results_equal

    makers = _QUICK_DATABASES if quick else _FULL_DATABASES
    repeats = 2 if quick else 5
    databases = {name: maker() for name, maker in makers.items()}

    queries = []
    speedups_at_4 = []
    disagreements = []
    for query in CORPUS:
        db = databases[query.family]
        serial = QueryPipeline(db)
        serial.compile_oql(query.oql)
        serial_result, serial_ms = _best_of_ms(
            lambda: serial.run_oql(query.oql), repeats
        )

        entry: dict[str, Any] = {
            "name": query.name,
            "family": query.family,
            "serial_ms": round(serial_ms, 4),
            "parallel_ms": {},
        }
        parallelized = False
        for workers in _PARALLEL_WORKERS:
            par = QueryPipeline(
                db, OptimizerOptions(parallel=True, num_workers=workers)
            )
            compiled = par.compile_oql(query.oql)
            physical = compiled.physical(db, {})
            if isinstance(physical, PGather):
                parallelized = True
                entry.setdefault("strategy", physical.strategy)
                entry.setdefault("mode", physical.mode)
            par_result, par_ms = _best_of_ms(
                lambda: par.run_oql(query.oql), repeats
            )
            if not results_equal(serial_result, par_result):
                disagreements.append(f"{query.name} @ {workers} workers")
            entry["parallel_ms"][str(workers)] = round(par_ms, 4)
            if workers == 4:
                speedup = serial_ms / max(par_ms, 1e-6)
                entry["speedup_at_4"] = round(speedup, 3)
                if parallelized:
                    speedups_at_4.append(speedup)
        entry["parallelized"] = parallelized
        queries.append(entry)

    if disagreements:
        raise AssertionError(
            "parallel and serial execution disagree: "
            + ", ".join(disagreements)
        )

    geomean = statistics.geometric_mean(speedups_at_4)
    machine = _machine()
    # The 2x bar needs real concurrency: >= 4 cores and no GIL.  Elsewhere
    # the exchange machinery is correctness-tested at full strength but
    # thread speedup is structurally unmeasurable, so the floor degrades to
    # a no-pathological-slowdown guard.
    capable = machine["cores"] >= 4 and not machine["gil_enabled"]
    floor = 2.0 if capable and not quick else 0.1
    return {
        "benchmark": "parallel partitioned execution vs serial",
        "mode": "quick" if quick else "full",
        "timing": f"best of {repeats} repeats, wall-clock ms",
        "machine": machine,
        "workers_swept": list(_PARALLEL_WORKERS),
        "queries": queries,
        "parallelized_queries": sum(q["parallelized"] for q in queries),
        "agreement": f"all {len(queries)} queries agree at every worker count",
        "geometric_mean_speedup_at_4": round(geomean, 3),
        "speedup_floor": floor,
        "floor_rationale": (
            "full 2x bar (>= 4 cores, free-threaded)"
            if capable and not quick
            else "sanity floor only: GIL-bound or < 4 cores — thread "
            "speedup structurally unmeasurable on this host"
        ),
    }


def main(argv: list[str] | None = None) -> int:
    _init_parallel_bench()
    parser = argparse.ArgumentParser(
        description="Benchmark parallel partitioned execution"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small databases, fewer repeats (CI smoke; agreement-focused)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=_REPO / "BENCH_parallel.json",
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = build_parallel_report(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(q["name"]) for q in report["queries"])
    print(
        f"{'query':{width}} {'serial':>10} "
        + " ".join(f"{f'-j{w}':>10}" for w in _PARALLEL_WORKERS)
        + f" {'speedup@4':>10}"
    )
    for q in report["queries"]:
        cells = " ".join(
            f"{q['parallel_ms'][str(w)]:>8.2f}ms" for w in _PARALLEL_WORKERS
        )
        tag = "" if q["parallelized"] else "  (serial fallback)"
        print(
            f"{q['name']:{width}} {q['serial_ms']:>8.2f}ms {cells} "
            f"{q['speedup_at_4']:>9.2f}x{tag}"
        )
    geomean = report["geometric_mean_speedup_at_4"]
    machine = report["machine"]
    print(
        f"\n{report['parallelized_queries']}/{len(report['queries'])} queries "
        f"parallelized; geometric-mean speedup at 4 workers: {geomean:.2f}x "
        f"(cores={machine['cores']}, gil={machine['gil_enabled']}) "
        f"-> {args.output}"
    )
    floor = report["speedup_floor"]
    if geomean < floor:
        print(f"FAIL: geometric mean {geomean:.2f}x below the {floor}x floor")
        return 1
    print(f"floor: {floor}x ({report['floor_rationale']}) — OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
