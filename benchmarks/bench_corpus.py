"""Corpus-wide sweep: every corpus query, labeled by Kim nesting class,
naive vs. optimized.

Writes ``results/corpus_sweep.txt`` — the repository's summary artifact:
one row per query with its nesting classification, both execution times,
and the speedup.  The assertions pin the aggregate claim: on every query
whose classification *needs grouping* (types A/JA — the ones only the
paper's algorithm can unnest), the optimized strategy must win on average
across the corpus.
"""

from __future__ import annotations

import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from corpus import CORPUS  # noqa: E402

from repro.core.classify import classify_oql  # noqa: E402
from repro.core.optimizer import Optimizer, OptimizerOptions  # noqa: E402
from repro.data.datagen import (  # noqa: E402
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)

from conftest import timed  # noqa: E402

_DATABASES = {
    "company": lambda: company_database(60, 8, seed=1998),
    "university": lambda: university_database(40, 12, seed=1998),
    "travel": lambda: travel_database(6, 5, seed=1998),
    "ab": lambda: ab_database(30, 40, seed=1998),
    "auction": lambda: auction_database(40, 25, seed=1998),
}


def test_corpus_sweep(report_writer, benchmark):
    databases = {name: maker() for name, maker in _DATABASES.items()}
    rows = [
        f"{'query':32} {'class':>6} {'naive_ms':>9} {'opt_ms':>8} {'speedup':>8}"
    ]
    speedups_grouping = []
    speedups_all = []
    for query in CORPUS:
        db = databases[query.family]
        report = classify_oql(query.oql, db.schema)
        naive = Optimizer(db, OptimizerOptions(unnest=False)).compile_oql(query.oql)
        fast = Optimizer(db).compile_oql(query.oql)
        naive_result, naive_ms = timed(naive.execute, db)
        fast_result, fast_ms = timed(fast.execute, db)
        assert naive_result == fast_result, query.name
        speedup = naive_ms / max(fast_ms, 1e-6)
        speedups_all.append(speedup)
        if report.needs_grouping:
            speedups_grouping.append(speedup)
        rows.append(
            f"{query.name:32} {report.dominant:>6} {naive_ms:>9.2f} "
            f"{fast_ms:>8.2f} {speedup:>7.1f}x"
        )

    rows.append("")
    rows.append(
        f"geometric-mean speedup, all {len(speedups_all)} queries: "
        f"{statistics.geometric_mean(speedups_all):.1f}x"
    )
    rows.append(
        f"geometric-mean speedup, grouping classes (A/JA): "
        f"{statistics.geometric_mean(speedups_grouping):.1f}x"
    )
    report_writer("corpus_sweep", "\n".join(rows))

    # The aggregate claim: across the corpus the optimizer wins clearly,
    # and also on the A/JA subset that defeats normalization-only systems.
    assert statistics.geometric_mean(speedups_all) > 2.0
    assert statistics.geometric_mean(speedups_grouping) > 2.0

    flagship = next(q for q in CORPUS if q.name == "query_e")
    db = databases[flagship.family]
    compiled = Optimizer(db).compile_oql(flagship.oql)
    benchmark(compiled.execute, db)
