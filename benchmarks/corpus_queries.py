"""Flagship queries shared by the benchmark modules (the paper's examples)."""

FLAGSHIP = [
    (
        "query_a",
        "company",
        "select distinct struct( E: e.name, C: c.name ) "
        "from e in Employees, c in e.children",
    ),
    (
        "query_b",
        "company",
        "select distinct struct( D: d, E: ( select distinct e "
        "from e in Employees where e.dno = d.dno ) ) from d in Departments",
    ),
    (
        "query_c",
        "ab",
        "for all a in A: exists b in B: a = b",
    ),
    (
        "query_d",
        "company",
        "select distinct struct( E: e, M: count( select distinct c "
        "from c in e.children where for all d in e.manager.children: "
        "c.age > d.age ) ) from e in Employees",
    ),
    (
        "query_e",
        "university",
        "select distinct s from s in Student "
        'where for all c in ( select c from c in Courses where c.title = "DB" ): '
        "exists t in Transcript: (t.id = s.id and t.cno = c.cno)",
    ),
    (
        "group_avg",
        "company",
        "select distinct e.dno, avg(e.salary) as S from Employees e "
        "where e.age > 30 group by e.dno",
    ),
]
