"""Section 2's claim: "the normalization algorithm improves program
performance in many cases" by producing fewer intermediate data structures.

The Section 2 travel query (nested generators + two existentials) is
evaluated by the naive calculus interpreter before and after normalization,
sweeping the database size.  Normalized evaluation avoids materializing the
inner select's result per outer iteration, so it should win by a growing
margin.  A second experiment measures the generator-iteration count (a
machine-independent work metric) for the same pair.
"""

from __future__ import annotations

import pytest

from repro.calculus.evaluator import Evaluator
from repro.core.normalization import prepare
from repro.data.datagen import travel_database
from repro.oql.translator import parse_and_translate

from conftest import timed

SOURCE = (
    "select distinct hotel.price from hotel in ( select h "
    'from c in Cities, h in c.hotels where c.name = "Arlington" ) '
    "where (exists r in hotel.rooms: r.bed_num = 3) "
    "and hotel.name in ( select t.name from s in States, "
    't in s.attractions where s.name = "Texas" )'
)


def test_normalization_report(report_writer, benchmark):
    lines = [
        "Naive calculus evaluation, unnormalized vs normalized "
        "(Section 2 travel query):",
        f"{'cities':>7} {'raw_ms':>8} {'normalized_ms':>14} "
        f"{'raw_steps':>10} {'norm_steps':>11}",
    ]
    for cities in (4, 8, 16, 32):
        db = travel_database(num_cities=cities, hotels_per_city=6, seed=1998)
        term = parse_and_translate(SOURCE, db.schema)
        normalized = prepare(term)

        raw_eval = Evaluator(db)
        raw_result, raw_ms = timed(lambda: Evaluator(db).evaluate(term))
        raw_eval.evaluate(term)

        norm_result, norm_ms = timed(lambda: Evaluator(db).evaluate(normalized))
        norm_eval = Evaluator(db)
        norm_eval.evaluate(normalized)

        assert raw_result == norm_result
        lines.append(
            f"{cities:>7} {raw_ms:>8.2f} {norm_ms:>14.2f} "
            f"{raw_eval.steps:>10} {norm_eval.steps:>11}"
        )
    report_writer("normalization", "\n".join(lines))

    db = travel_database(num_cities=16, hotels_per_city=6, seed=1998)
    term = parse_and_translate(SOURCE, db.schema)
    benchmark(prepare, term)


@pytest.mark.benchmark(group="normalization")
def test_unnormalized_evaluation(benchmark):
    db = travel_database(num_cities=16, hotels_per_city=6, seed=1998)
    term = parse_and_translate(SOURCE, db.schema)
    benchmark(lambda: Evaluator(db).evaluate(term))


@pytest.mark.benchmark(group="normalization")
def test_normalized_evaluation(benchmark):
    db = travel_database(num_cities=16, hotels_per_city=6, seed=1998)
    normalized = prepare(parse_and_translate(SOURCE, db.schema))
    benchmark(lambda: Evaluator(db).evaluate(normalized))
