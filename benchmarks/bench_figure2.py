"""Figure 2 — the staged unnesting of QUERY E.

The paper's Figure 2 shows the translation in motion: the outer
comprehension becomes box A, the universal quantifier box B, the
existential box C, and the boxes are spliced bottom-up.  This module
regenerates that walkthrough from the translator's trace (every Figure 7
rule firing, with the plan after each step) and benchmarks the unnesting
translation itself — the paper claims it "takes time linear to the size of
the query", which the compile-time-vs-nesting-depth series checks.
"""

from __future__ import annotations

from repro.algebra.pretty import pretty_plan
from repro.core.normalization import prepare
from repro.core.unnesting import UnnestingTrace, unnest, _uniquify
from repro.data.datagen import university_database
from repro.oql.translator import parse_and_translate

from conftest import timed

QUERY_E = (
    "select distinct s from s in Student "
    'where for all c in ( select c from c in Courses where c.title = "DB" ): '
    "exists t in Transcript: (t.id = s.id and t.cno = c.cno)"
)


def _nested_quantifier_query(depth: int) -> str:
    """A query with *depth* alternating quantifier levels (for the
    linear-time check)."""
    core = "t.id = s.id"
    for level in range(depth):
        quantifier = "exists" if level % 2 == 0 else "for all"
        core = (
            f"{quantifier} q{level} in Transcript: "
            f"(q{level}.cno >= 0 and ({core}))"
        )
    return f"select distinct s from s in Student, t in Transcript where {core}"


def test_figure2_walkthrough(report_writer, benchmark):
    db = university_database(num_students=30, num_courses=10, seed=1998)
    term = _uniquify(prepare(parse_and_translate(QUERY_E, db.schema)))

    trace = UnnestingTrace()
    plan = unnest(term, trace)

    lines = ["Unnesting QUERY E, rule by rule (paper Figure 2):", ""]
    for index, entry in enumerate(trace.entries, start=1):
        lines.append(f"step {index}: ({entry.rule}) {entry.detail}")
        if entry.plan is not None:
            lines.append("  plan so far:")
            lines.append("    " + pretty_plan(entry.plan).replace("\n", "\n    "))
        lines.append("")
    lines.append("final plan:")
    lines.append(pretty_plan(plan))

    rules = trace.rules_fired()
    # Box A: scan + final reduce.  Box B: outer-join + nest (C6, C5).
    # Box C: outer-join + nest.  Two splices compose the boxes: the
    # universal box from the outer predicate (C8) and the existential box
    # from the universal comprehension's head (C9).
    assert rules.count("C6") == 2
    assert rules.count("C5") == 2
    assert rules.count("C8") + rules.count("C9") == 2
    assert rules[-1] == "C2"
    lines.append("")
    lines.append(f"rules fired: {', '.join(rules)}")
    report_writer("fig2_walkthrough", "\n".join(lines))

    benchmark(lambda: unnest(term, UnnestingTrace()))


def test_unnesting_compile_time(report_writer, benchmark):
    """Compile-time vs. quantifier nesting depth.

    The paper claims the algorithm "takes time linear to the size of the
    query" counting rule firings; our term-rewriting implementation copies
    subtrees on each rewrite, so wall time grows roughly quadratically in
    query size with a very small constant.  The series is recorded for
    EXPERIMENTS.md; the assertion pins practical efficiency (a 16-deep
    quantifier tower — far beyond real queries — compiles in well under a
    second) and that the number of rule firings itself is linear.
    """
    db = university_database(num_students=10, num_courses=5, seed=1998)
    rows = ["depth  terms  rules_fired  compile_ms"]
    firing_counts = []
    for depth in (1, 2, 4, 8, 16):
        source = _nested_quantifier_query(depth)
        term = _uniquify(prepare(parse_and_translate(source, db.schema)))
        size = sum(1 for _ in _iter_terms(term))
        trace = UnnestingTrace()
        unnest(term, trace)
        firing_counts.append((depth, len(trace.rules_fired())))
        _, ms = timed(lambda t=term: unnest(t), repeat=5)
        rows.append(
            f"{depth:5d} {size:6d} {len(trace.rules_fired()):12d} {ms:11.3f}"
        )
        if depth == 16:
            assert ms < 500.0, "deep nesting compile time blew up"
    report_writer("fig2_compile_time", "\n".join(rows))

    # rule firings grow linearly with nesting depth: ~3 per quantifier level
    per_depth = [(count / depth) for depth, count in firing_counts]
    assert max(per_depth) <= 2 * min(per_depth) + 3

    deep = _uniquify(prepare(parse_and_translate(_nested_quantifier_query(8), db.schema)))
    benchmark(lambda: unnest(deep))


def _iter_terms(term):
    from repro.calculus.terms import subterms

    return subterms(term)
