"""Designing your own OODB: schemas, inheritance, views, and a fresh domain.

Run with:  python examples/schema_design.py

Builds an auction database from scratch (a schema the paper never saw),
adds a class hierarchy with extent inclusion, defines views, and runs
nested queries through the full unnesting pipeline — demonstrating that
the system generalizes beyond the paper's three example schemas.
"""

from __future__ import annotations

from repro import Optimizer, pretty_plan
from repro.data.database import Database
from repro.data.datagen import auction_database
from repro.data.schema import FLOAT, INT, STRING, Schema
from repro.data.values import Record


def hierarchy_demo() -> None:
    print("=" * 72)
    print("Class hierarchy with extent inclusion\n")
    schema = Schema()
    schema.define_class("Account", ano=INT, owner=STRING, balance=FLOAT)
    schema.define_class("Savings", extends="Account", rate=FLOAT)
    schema.define_class("Checking", extends="Account", overdraft=FLOAT)
    schema.define_extent("Accounts", "Account")
    schema.define_extent("SavingsAccounts", "Savings")
    schema.define_extent("CheckingAccounts", "Checking")

    db = Database(schema)
    db.add_extent("Accounts", [Record(ano=1, owner="plain", balance=100.0)])
    db.add_extent(
        "SavingsAccounts",
        [Record(ano=2, owner="saver", balance=500.0, rate=0.03)],
    )
    db.add_extent(
        "CheckingAccounts",
        [Record(ano=3, owner="spender", balance=-20.0, overdraft=200.0)],
    )

    optimizer = Optimizer(db)
    print("Savings inherits Account's attributes:",
          schema.class_type("Savings"))
    print("subclasses of Account:", schema.subclasses("Account"))
    print("\nA query over the superclass extent ranges over every subclass:")
    result = optimizer.run_oql(
        "select distinct a.owner from a in Accounts where a.balance >= 0"
    )
    print("  accounts in the black:", sorted(result.elements()))


def auction_demo() -> None:
    print("\n" + "=" * 72)
    print("A fresh domain: users bidding on items\n")
    db = auction_database(num_users=40, num_items=25, seed=11)
    print(f"Database: {db}")
    optimizer = Optimizer(db)

    # views compose and are inlined before unnesting
    optimizer.define_view(
        "define ActiveItems as select distinct i from i in Items "
        "where exists b in Bids: b.item = i.ino"
    )
    optimizer.define_view(
        "define Winners as select distinct struct( I: i.title, Top: max( "
        "select b.amount from b in Bids where b.item = i.ino ) ) "
        "from i in ActiveItems"
    )

    compiled = optimizer.compile_oql(
        "select distinct w.I from w in Winners where w.Top > 100"
    )
    print("\nTop-selling items (view over a view, fully unnested):")
    print(pretty_plan(compiled.optimized))
    for title in sorted(str(w) for w in compiled.execute(db)):
        print("  ", title)

    print("\nItems with no bids at all (the count-bug shape):")
    unsold = optimizer.run_oql(
        "select distinct i.title from i in Items "
        "where count( select b from b in Bids where b.item = i.ino ) = 0"
    )
    for title in sorted(unsold.elements()):
        print("  ", title)


if __name__ == "__main__":
    hierarchy_demo()
    auction_demo()
