"""Quickstart: compile and run OQL queries against an in-memory OODB.

Run with:  python examples/quickstart.py

Walks through the public API: build a database, compile OQL through the
full pipeline (translate → normalize → unnest → simplify → algebraic
rewrites → physical plan), inspect every intermediate form, and execute.
"""

from __future__ import annotations

from repro import Optimizer, OptimizerOptions, company_database, pretty, pretty_plan


def main() -> None:
    # A synthetic company database: Employees, Departments, Managers.
    db = company_database(num_employees=50, num_departments=8, seed=42)
    print(f"Database: {db}\n")

    optimizer = Optimizer(db)

    # ---- 1. A flat query --------------------------------------------------
    source = (
        "select distinct struct(E: e.name, C: c.name) "
        "from e in Employees, c in e.children"
    )
    print("OQL:", source)
    compiled = optimizer.compile_oql(source)
    print("\nCalculus translation (the paper's QUERY A):")
    print(" ", pretty(compiled.term))
    print("\nUnnested algebraic plan (paper Figure 1.A):")
    print(pretty_plan(compiled.optimized))
    result = compiled.execute(db)
    print(f"\n{len(result)} (employee, child) pairs; first few:")
    for row in sorted(map(str, result))[:3]:
        print("  ", row)

    # ---- 2. A nested query ------------------------------------------------
    source = (
        "select distinct struct(D: d.name, Staff: ("
        "  select distinct e.name from e in Employees where e.dno = d.dno )) "
        "from d in Departments"
    )
    print("\n" + "=" * 72)
    print("OQL:", source)
    compiled = optimizer.compile_oql(source)
    print("\nThe nested subquery becomes an outer-join + nest (Figure 1.B):")
    print(pretty_plan(compiled.optimized))
    print("\nPhysical plan (EXPLAIN):")
    print(compiled.explain(db))
    for row in sorted(map(str, compiled.execute(db)))[:3]:
        print("  ", row)

    # ---- 3. Unnesting on vs. off -------------------------------------------
    print("\n" + "=" * 72)
    source = (
        "select distinct e.name from e in Employees "
        "where e.salary >= max( select u.salary from u in Employees "
        "where u.dno = e.dno )"
    )
    print("OQL:", source)
    import time

    naive = Optimizer(db, OptimizerOptions(unnest=False)).compile_oql(source)
    fast = optimizer.compile_oql(source)

    start = time.perf_counter()
    naive_result = naive.execute(db)
    naive_time = time.perf_counter() - start

    start = time.perf_counter()
    fast_result = fast.execute(db)
    fast_time = time.perf_counter() - start

    assert naive_result == fast_result
    print(f"\ntop earners per department: {len(fast_result)} employees")
    print(f"naive nested-loop evaluation: {naive_time * 1000:8.2f} ms")
    print(f"unnested physical plan:       {fast_time * 1000:8.2f} ms")
    print(f"speedup: {naive_time / fast_time:.1f}x")


if __name__ == "__main__":
    main()
