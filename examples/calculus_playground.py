"""Working directly with the monoid comprehension calculus.

Run with:  python examples/calculus_playground.py

For users who want the paper's machinery without OQL: build comprehensions
with the term DSL, normalize them step by step, type-check them, and unnest
them — including the paper's QUERY C (set containment via quantifier
monoids) and the Section 2 travel-agency example.
"""

from __future__ import annotations

from repro import (
    ab_database,
    evaluate,
    evaluate_plan,
    infer_type,
    normalize,
    prepare,
    pretty,
    pretty_plan,
    travel_database,
    unnest_query,
)
from repro.calculus.terms import (
    BinOp,
    Extent,
    comprehension,
    const,
    path,
    var,
)


def query_c() -> None:
    """A ⊆ B as nested quantifier monoids: &{ |{ a=b | b <- B } | a <- A }."""
    containment = comprehension(
        "all",
        comprehension("some", BinOp("==", var("a"), var("b")), ("b", Extent("B"))),
        ("a", Extent("A")),
    )
    print("QUERY C (A subset-of B):")
    print("  calculus: ", pretty(containment))
    print("  type:     ", infer_type(containment))

    plan = unnest_query(containment)
    print("\n  unnested plan (Figure 1.C):")
    print(pretty_plan(plan).replace("\n", "\n  "))

    for subset in (False, True):
        db = ab_database(size_a=10, size_b=15, subset=subset, seed=1)
        naive = evaluate(containment, db)
        unnested = evaluate_plan(plan, db)
        assert naive == unnested
        print(f"\n  subset={subset}:  A ⊆ B evaluates to {naive}")


def hotels() -> None:
    """The Section 2 normalization example, built by hand."""
    arlington_hotels = comprehension(
        "set", var("h"),
        ("c", Extent("Cities")),
        ("h", path("c", "hotels")),
        BinOp("==", path("c", "name"), const("Arlington")),
    )
    texas_attraction_names = comprehension(
        "set", path("t", "name"),
        ("s", Extent("States")),
        ("t", path("s", "attractions")),
        BinOp("==", path("s", "name"), const("Texas")),
    )
    query = comprehension(
        "set", path("hotel", "price"),
        ("hotel", arlington_hotels),
        comprehension(
            "some", BinOp("==", path("r", "bed_num"), const(3)),
            ("r", path("hotel", "rooms")),
        ),
        comprehension(
            "some", BinOp("==", var("n"), path("hotel", "name")),
            ("n", texas_attraction_names),
        ),
    )
    print("\n" + "=" * 72)
    print("Section 2 example, before normalization:")
    print("  ", pretty(query))

    normalized = prepare(query)
    print("\nAfter normalization — one flat comprehension, all generator")
    print("domains reduced to paths (exactly the paper's canonical form):")
    print("  ", pretty(normalized))

    db = travel_database(seed=42)
    prices = evaluate(normalized, db)
    assert prices == evaluate(query, db)
    print(f"\nArlington hotel prices matching the criteria: {prices}")


def monoid_mixing() -> None:
    """Comprehensions can mix collection inputs and primitive outputs."""
    print("\n" + "=" * 72)
    print("Monoid mixing — one comprehension per monoid over the same data:")
    db = ab_database(size_a=10, size_b=5, seed=3)
    gen = ("x", Extent("A"))
    for monoid_name, head in [
        ("sum", var("x")),
        ("max", var("x")),
        ("min", var("x")),
        ("avg", var("x")),
        ("all", BinOp(">", var("x"), const(0))),
        ("some", BinOp(">", var("x"), const(25))),
        ("set", var("x")),
        ("bag", BinOp("/", var("x"), const(10))),
    ]:
        term = comprehension(monoid_name, head, gen)
        print(f"  {pretty(term):48s} = {evaluate(term, db)}")


if __name__ == "__main__":
    query_c()
    hotels()
    monoid_mixing()
