"""The paper's QUERY E, end to end: "students who have taken all database
courses" — universal quantification nested inside existential.

Run with:  python examples/university.py

This is the paper's flagship example (Figures 1.E and 2): the walkthrough
prints the calculus form, the unnesting trace (which Figure 7 rules fired),
the resulting plan with both outer-joins carrying equality predicates, and a
timing comparison of naive vs. unnested evaluation as the database grows.
"""

from __future__ import annotations

import time

from repro import (
    Optimizer,
    OptimizerOptions,
    UnnestingTrace,
    pretty,
    pretty_plan,
    university_database,
    unnest_query,
)
from repro.oql.translator import parse_and_translate

QUERY_E = """
select distinct s
from s in Student
where for all c in ( select c from c in Courses where c.title = "DB" ):
      exists t in Transcript: (t.id = s.id and t.cno = c.cno)
"""


def walkthrough() -> None:
    db = university_database(num_students=30, num_courses=10, seed=42)
    print(f"Database: {db}")
    print("\nOQL:", " ".join(QUERY_E.split()))

    term = parse_and_translate(QUERY_E, db.schema)
    print("\nMonoid calculus translation (paper QUERY E):")
    print(" ", pretty(term))

    trace = UnnestingTrace()
    plan = unnest_query(term, trace)
    print("\nUnnesting trace (Figure 7 rules, in firing order):")
    for entry in trace.entries:
        print(f"  ({entry.rule}) {entry.detail}")

    print("\nUnnested plan (paper Figure 1.E / Figure 2 result):")
    print(pretty_plan(plan))

    optimizer = Optimizer(db)
    compiled = optimizer.compile_oql(QUERY_E)
    print("\nPhysical plan — note both outer-joins became hash joins")
    print("(the optimization the paper's Section 1.1 calls out):")
    print(compiled.explain(db))

    students = compiled.execute(db)
    print(f"\n{len(students)} student(s) took every DB course:")
    for student in sorted(str(s["name"]) for s in students):
        print("  ", student)


def scaling() -> None:
    print("\n" + "=" * 72)
    print("Naive nested-loop vs. unnested plan while the database grows:\n")
    print(f"{'students':>9} {'courses':>8} {'naive (ms)':>11} "
          f"{'unnested (ms)':>14} {'speedup':>8}")
    for students, courses in [(20, 8), (40, 10), (80, 12), (160, 14)]:
        db = university_database(students, courses, seed=42)
        naive = Optimizer(db, OptimizerOptions(unnest=False)).compile_oql(QUERY_E)
        fast = Optimizer(db).compile_oql(QUERY_E)

        start = time.perf_counter()
        naive_result = naive.execute(db)
        naive_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        fast_result = fast.execute(db)
        fast_ms = (time.perf_counter() - start) * 1000

        assert naive_result == fast_result
        print(f"{students:>9} {courses:>8} {naive_ms:>11.2f} "
              f"{fast_ms:>14.2f} {naive_ms / fast_ms:>7.1f}x")


if __name__ == "__main__":
    walkthrough()
    scaling()
