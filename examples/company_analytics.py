"""Analytics over the company schema: aggregates, group-by, and the
Section 5 simplification.

Run with:  python examples/company_analytics.py

Shows the paper's Section 5 observation in action: a SQL-style GROUP BY
query is *implicitly nested* in the calculus, unnests into a self
outer-join (Figure 8.A), and the simplification rule collapses it into a
single hash-grouping pass (Figure 8.B).
"""

from __future__ import annotations

import time

from repro import (
    Optimizer,
    OptimizerOptions,
    company_database,
    pretty,
    pretty_plan,
    simplify,
    unnest_query,
)
from repro.oql.translator import parse_and_translate

GROUP_QUERY = """
select distinct e.dno, avg(e.salary) as avg_salary
from Employees e
where e.age > 30
group by e.dno
"""


def figure8() -> None:
    db = company_database(num_employees=60, num_departments=9, seed=42)
    print(f"Database: {db}")
    print("\nOQL:", " ".join(GROUP_QUERY.split()))

    term = parse_and_translate(GROUP_QUERY, db.schema)
    print("\nCalculus translation — note the hidden nesting (Section 5):")
    print(" ", pretty(term))

    plan_a = unnest_query(term)
    print("\nPlan A — the unnested self outer-join (Figure 8.A):")
    print(pretty_plan(plan_a))

    plan_b = simplify(plan_a)
    print("\nPlan B — after the Section 5 simplification (Figure 8.B):")
    print(pretty_plan(plan_b))

    from repro.engine.planner import plan_physical

    for label, plan in [("A", plan_a), ("B", plan_b)]:
        physical = plan_physical(plan, db)
        start = time.perf_counter()
        result = physical.value()
        elapsed = (time.perf_counter() - start) * 1000
        print(f"\nPlan {label}: {elapsed:.2f} ms, "
              f"{physical.total_rows()} rows processed")
    assert plan_physical(plan_a, db).value() == plan_physical(plan_b, db).value()


def more_analytics() -> None:
    db = company_database(num_employees=60, num_departments=9, seed=42)
    optimizer = Optimizer(db)
    print("\n" + "=" * 72)

    reports = [
        ("Departments with headcount above 5",
         "select e.dno, count(e) as n from Employees e group by e.dno "
         "having count(e) > 5"),
        ("Employees earning above the company average",
         "select distinct e.name from e in Employees "
         "where e.salary > avg( select u.salary from u in Employees )"),
        ("Per-department payroll",
         "select distinct struct( D: d.name, Payroll: sum( select e.salary "
         "from e in Employees where e.dno = d.dno ) ) from d in Departments"),
        ("Employees all of whose children outrank the manager's children",
         "select distinct struct( E: e.name, M: count( select distinct c "
         "from c in e.children where for all d in e.manager.children: "
         "c.age > d.age ) ) from e in Employees where e.oid < 5"),
    ]
    for title, source in reports:
        compiled = optimizer.compile_oql(source)
        result = compiled.execute(db)
        print(f"\n{title}:")
        rows = sorted(map(str, result)) if hasattr(result, "__iter__") else [result]
        for row in rows[:5]:
            print("  ", row)
        if hasattr(result, "__len__") and len(result) > 5:
            print(f"   ... ({len(result)} rows total)")


if __name__ == "__main__":
    figure8()
    more_analytics()
