"""Database administration: persistence, indexes, statistics, EXPLAIN ANALYZE.

Run with:  python examples/dba_tools.py

Shows the substrate around the optimizer: save/load a database image (the
SHORE stand-in), build indexes and watch the planner pick index scans,
ANALYZE statistics refining cost estimates, and per-operator execution
statistics.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Optimizer, company_database
from repro.data.storage import load_database, save_database
from repro.engine import run_with_stats
from repro.engine.planner import PlannerOptions


def main() -> None:
    db = company_database(num_employees=500, num_departments=12, seed=7)
    print(f"Built {db!r}")

    # ---- persistence ---------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        image = Path(tmp) / "company.repro.json"
        save_database(db, image)
        print(f"\nSaved database image: {image.name} "
              f"({image.stat().st_size // 1024} KiB)")
        db = load_database(image)
        print(f"Reloaded: {db!r}")

    # ---- indexes -------------------------------------------------------------
    source = "select distinct e.name from e in Employees where e.dno = 4"
    optimizer = Optimizer(db)
    compiled = optimizer.compile_oql(source)

    print("\nWithout an index:")
    stats = run_with_stats(compiled.optimized, db, PlannerOptions(index_scans=False))
    print(stats.report())

    db.create_index("Employees", "dno")
    print("\nAfter CREATE INDEX on Employees.dno:")
    stats = run_with_stats(compiled.optimized, db)
    print(stats.report())

    # ---- statistics ------------------------------------------------------------
    from repro.engine.cost import CostModel
    from repro.algebra.operators import Scan, Select
    from repro.calculus.terms import BinOp, Proj, Var, const

    select = Select(
        Scan("Employees", "e"), BinOp("==", Proj(Var("e"), "dno"), const(4))
    )
    model = CostModel(db)
    print(f"\nCost model estimate before ANALYZE: "
          f"{model.cardinality(select):.0f} rows")
    db.analyze()
    print(f"Cost model estimate after  ANALYZE: "
          f"{model.cardinality(select):.0f} rows "
          f"(dno has {db.distinct_count('Employees', 'dno')} distinct values)")
    actual = len(db.index_lookup("Employees", "dno", 4))
    print(f"Actual matching employees:          {actual} rows")

    # ---- EXPLAIN ANALYZE on a nested query ---------------------------------------
    nested = (
        "select distinct struct( D: d.dno, Payroll: sum( select e.salary "
        "from e in Employees where e.dno = d.dno ) ) from d in Departments"
    )
    print("\nEXPLAIN ANALYZE of a nested aggregate query:")
    compiled = optimizer.compile_oql(nested)
    stats = run_with_stats(compiled.optimized, db)
    print(stats.report())


if __name__ == "__main__":
    main()
