"""repro — a reproduction of Fegaras, *Query Unnesting in Object-Oriented
Databases* (SIGMOD 1998).

The package implements the paper's complete system:

* the **monoid comprehension calculus** (:mod:`repro.calculus`) — terms,
  monoids, typing rules, and the reference (naive nested-loop) evaluator;
* the **normalization algorithm** (:mod:`repro.core.normalization`, rules
  N1–N9) and predicate normalization;
* the **nested relational algebra** (:mod:`repro.algebra`) with aggregation,
  quantification, outer-joins, outer-unnests, and nest (rules O1–O7);
* the **query unnesting algorithm** (:mod:`repro.core.unnesting`, rules
  C1–C9) — the paper's primary contribution;
* the **Section 5 simplification rule** (:mod:`repro.core.simplification`);
* an **OQL front-end** (:mod:`repro.oql`);
* a **rule-based optimizer** and cost-based join permutation
  (:mod:`repro.core.optimizer`, :mod:`repro.core.rewrite`);
* an **in-memory OODB** and **physical execution engine**
  (:mod:`repro.data`, :mod:`repro.engine`).

Quickstart::

    from repro import Optimizer, company_database

    db = company_database(num_employees=100, num_departments=10)
    optimizer = Optimizer(db)
    result = optimizer.run_oql(
        "select distinct struct(E: e.name, C: c.name) "
        "from e in Employees, c in e.children"
    )
"""

from repro.algebra.evaluator import evaluate_plan
from repro.algebra.pretty import plan_signature, pretty_plan
from repro.calculus.evaluator import Evaluator, evaluate
from repro.calculus.pretty import pretty
from repro.calculus.typing import infer_type
from repro.core.classify import classify, classify_oql
from repro.core.normalization import (
    canonicalize,
    normalize,
    normalize_predicates,
    prepare,
)
from repro.core.optimizer import CompiledQuery, Optimizer, OptimizerOptions
from repro.core.pipeline import PIPELINE_STAGES, PlanCache, QueryPipeline, StageResult
from repro.core.simplification import simplify
from repro.core.unnesting import UnnestingTrace, unnest, unnest_query
from repro.data.database import Database
from repro.data.datagen import (
    ab_database,
    company_database,
    travel_database,
    university_database,
)
from repro.engine.executor import ExecutionStats, run_with_stats
from repro.engine.governor import CancelToken, Governor
from repro.engine.planner import PlannerOptions, execute, plan_physical
from repro.errors import (
    BudgetExceeded,
    ExecutionError,
    GovernorError,
    PlanningError,
    QueryCancelled,
    QueryError,
    QueryTimeout,
    TypeCheckError,
    UnknownExtentError,
)
from repro.oql.params import parameterize_literals
from repro.oql.parser import parse
from repro.oql.translator import parse_and_translate, translate

__version__ = "1.0.0"

__all__ = [
    "BudgetExceeded",
    "CancelToken",
    "CompiledQuery",
    "Database",
    "Evaluator",
    "ExecutionError",
    "ExecutionStats",
    "Governor",
    "GovernorError",
    "Optimizer",
    "OptimizerOptions",
    "PIPELINE_STAGES",
    "PlanCache",
    "PlannerOptions",
    "PlanningError",
    "QueryCancelled",
    "QueryError",
    "QueryPipeline",
    "QueryTimeout",
    "StageResult",
    "TypeCheckError",
    "UnknownExtentError",
    "UnnestingTrace",
    "ab_database",
    "canonicalize",
    "classify",
    "classify_oql",
    "company_database",
    "evaluate",
    "evaluate_plan",
    "execute",
    "infer_type",
    "normalize",
    "normalize_predicates",
    "parameterize_literals",
    "parse",
    "parse_and_translate",
    "plan_physical",
    "plan_signature",
    "prepare",
    "pretty",
    "pretty_plan",
    "run_with_stats",
    "simplify",
    "translate",
    "travel_database",
    "university_database",
    "unnest",
    "unnest_query",
]
