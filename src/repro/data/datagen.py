"""Deterministic synthetic data generators for the paper's example schemas.

The paper's examples run over three schemas: a *company* schema (Employees,
Departments, Managers — QUERIES A, B, D and the Section 5 group-by example),
a *university* schema (Student, Courses, Transcript — QUERY E), and a
*travel* schema (Cities/hotels, States/attractions — the Section 2 OQL
normalization example).  No data sets were published, so these generators
produce deterministic (seeded) synthetic instances whose sizes are
parameterized — that is what the benchmark sweeps vary.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.data.database import Database
from repro.data.schema import (
    FLOAT,
    INT,
    STRING,
    Schema,
    record_of,
    set_of,
)
from repro.data.values import Record, SetValue

_FIRST_NAMES = (
    "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
    "Trent", "Victor", "Walter", "Yolanda",
)

_CITY_NAMES = (
    "Arlington", "Austin", "Boston", "Chicago", "Dallas", "Denver",
    "Houston", "Madison", "Portland", "Seattle",
)

_STATE_NAMES = ("Texas", "Washington", "Oregon", "Illinois", "Wisconsin")

_COURSE_TITLES = ("DB", "OS", "AI", "PL", "Networks", "Graphics", "Theory")


# ---------------------------------------------------------------------------
# Company schema (QUERIES A, B, D; Section 5 example)
# ---------------------------------------------------------------------------


def company_schema() -> Schema:
    """Schema for the Employees / Departments / Managers examples."""
    schema = Schema()
    person = schema.define_class("Person", name=STRING, age=INT)
    manager_info = record_of(name=STRING, children=set_of(person))
    schema.classes["ManagerInfo"] = manager_info
    schema.define_class(
        "Employee",
        oid=INT,
        name=STRING,
        age=INT,
        salary=FLOAT,
        dno=INT,
        children=set_of(person),
        manager=manager_info,
    )
    schema.define_class("Department", dno=INT, name=STRING, budget=FLOAT)
    schema.define_class("Manager", name=STRING, age=INT, salary=FLOAT)
    schema.define_extent("Employees", "Employee")
    schema.define_extent("Departments", "Department")
    schema.define_extent("Managers", "Manager")
    return schema


def company_database(
    num_employees: int = 60,
    num_departments: int = 8,
    num_managers: int = 10,
    max_children: int = 3,
    seed: int = 1998,
) -> Database:
    """A deterministic company database instance.

    A fraction of departments intentionally has no employees and a fraction
    of employees has no children, so the outer-join / outer-unnest NULL
    paths of the unnested plans are always exercised.
    """
    rng = random.Random(seed)
    db = Database(company_schema())

    def person(prefix: str, index: int) -> Record:
        return Record(
            name=f"{prefix}-{_FIRST_NAMES[index % len(_FIRST_NAMES)]}",
            age=rng.randint(1, 18),
        )

    managers = [
        Record(
            name=f"Mgr-{_FIRST_NAMES[i % len(_FIRST_NAMES)]}",
            age=rng.randint(30, 65),
            salary=float(rng.randint(60, 160) * 1000),
        )
        for i in range(max(num_managers, 1))
    ]
    manager_infos = [
        Record(
            name=m["name"],
            children=SetValue(
                person(f"mc{i}", j) for j in range(rng.randint(0, max_children))
            ),
        )
        for i, m in enumerate(managers)
    ]

    employees = []
    for i in range(num_employees):
        children = SetValue(
            person(f"c{i}", j) for j in range(rng.randint(0, max_children))
        )
        employees.append(
            Record(
                oid=i,
                name=f"Emp-{i}-{_FIRST_NAMES[i % len(_FIRST_NAMES)]}",
                age=rng.randint(20, 64),
                salary=float(rng.randint(30, 150) * 1000),
                # Department numbers start at 1; dno 0 never exists so some
                # employees are guaranteed not to join with any department,
                # and the highest departments may have no employees.
                dno=rng.randint(1, max(num_departments + 2, 2)),
                children=children,
                manager=manager_infos[i % len(manager_infos)],
            )
        )

    departments = [
        Record(
            dno=d + 1,
            name=f"Dept-{d + 1}",
            budget=float(rng.randint(100, 900) * 1000),
        )
        for d in range(num_departments)
    ]

    db.add_extent("Employees", employees)
    db.add_extent("Departments", departments)
    db.add_extent("Managers", managers)
    return db


# ---------------------------------------------------------------------------
# University schema (QUERY E)
# ---------------------------------------------------------------------------


def university_schema() -> Schema:
    """Schema for the Student / Courses / Transcript examples (QUERY E)."""
    schema = Schema()
    schema.define_class("Student", id=INT, name=STRING, age=INT)
    schema.define_class("Course", cno=INT, title=STRING)
    schema.define_class("TranscriptEntry", id=INT, cno=INT, grade=FLOAT)
    schema.define_extent("Student", "Student")
    schema.define_extent("Courses", "Course")
    schema.define_extent("Transcript", "TranscriptEntry")
    return schema


def university_database(
    num_students: int = 40,
    num_courses: int = 12,
    enrollment_probability: float = 0.4,
    db_course_fraction: float = 0.3,
    seed: int = 1998,
) -> Database:
    """A deterministic university database instance.

    ``db_course_fraction`` of the courses are titled "DB" so QUERY E's
    universal quantification ranges over several courses; enrollments are
    Bernoulli so some students take all DB courses and some take none.
    """
    rng = random.Random(seed)
    db = Database(university_schema())

    students = [
        Record(
            id=i,
            name=f"Stu-{i}-{_FIRST_NAMES[i % len(_FIRST_NAMES)]}",
            age=rng.randint(18, 30),
        )
        for i in range(num_students)
    ]
    num_db = max(1, int(num_courses * db_course_fraction))
    courses = [
        Record(
            cno=c,
            title="DB" if c < num_db else _COURSE_TITLES[1 + c % (len(_COURSE_TITLES) - 1)],
        )
        for c in range(num_courses)
    ]
    transcript = []
    for student in students:
        for course in courses:
            if rng.random() < enrollment_probability:
                transcript.append(
                    Record(
                        id=student["id"],
                        cno=course["cno"],
                        grade=round(rng.uniform(1.0, 4.0), 2),
                    )
                )
    # Guarantee at least one student who took every DB course, so the result
    # of QUERY E is non-trivially non-empty at every size.
    if students:
        for course in courses[:num_db]:
            transcript.append(
                Record(id=students[0]["id"], cno=course["cno"], grade=4.0)
            )

    db.add_extent("Student", students)
    db.add_extent("Courses", courses)
    db.add_extent("Transcript", transcript)
    return db


# ---------------------------------------------------------------------------
# Travel schema (Section 2 OQL normalization example)
# ---------------------------------------------------------------------------


def travel_schema() -> Schema:
    """Schema for the Cities / States examples (Section 2)."""
    schema = Schema()
    room = schema.define_class("Room", bed_num=INT)
    hotel = schema.define_class(
        "Hotel", name=STRING, price=FLOAT, rooms=set_of(room)
    )
    schema.define_class("City", name=STRING, hotels=set_of(hotel))
    attraction = schema.define_class("Attraction", name=STRING)
    schema.define_class("State", name=STRING, attractions=set_of(attraction))
    schema.define_extent("Cities", "City")
    schema.define_extent("States", "State")
    return schema


def travel_database(
    num_cities: int = 8,
    hotels_per_city: int = 5,
    rooms_per_hotel: int = 6,
    seed: int = 1998,
) -> Database:
    """A deterministic travel database (Cities with hotels, States)."""
    rng = random.Random(seed)
    db = Database(travel_schema())

    hotel_names = [f"Hotel-{i}" for i in range(num_cities * hotels_per_city)]
    cities = []
    for c in range(num_cities):
        hotels = []
        for h in range(hotels_per_city):
            rooms = SetValue(
                Record(bed_num=rng.randint(1, 3))
                for _ in range(rng.randint(1, rooms_per_hotel))
            )
            hotels.append(
                Record(
                    name=hotel_names[c * hotels_per_city + h],
                    price=float(rng.randint(40, 400)),
                    rooms=rooms,
                )
            )
        cities.append(
            Record(name=_CITY_NAMES[c % len(_CITY_NAMES)], hotels=SetValue(hotels))
        )

    states = []
    for s, state_name in enumerate(_STATE_NAMES):
        # Texas' attractions intentionally overlap hotel names so the
        # Section 2 example query has a non-empty answer.
        attraction_names: Iterable[str]
        if state_name == "Texas":
            # Bias toward Arlington's own hotels (the first hotels_per_city
            # names) so the example query's join is non-empty.
            arlington = hotel_names[:hotels_per_city]
            rest = rng.sample(hotel_names, k=min(3, len(hotel_names)))
            attraction_names = list(dict.fromkeys(arlington + rest))
        else:
            attraction_names = [f"Attraction-{s}-{i}" for i in range(4)]
        states.append(
            Record(
                name=state_name,
                attractions=SetValue(Record(name=n) for n in attraction_names),
            )
        )

    db.add_extent("Cities", cities)
    db.add_extent("States", states)
    return db


# ---------------------------------------------------------------------------
# Auction schema (not from the paper: a generality check for the pipeline)
# ---------------------------------------------------------------------------


def auction_schema() -> Schema:
    """Users placing bids on items — a schema the paper never saw."""
    schema = Schema()
    bid = schema.define_class("Bid", bidder=INT, item=INT, amount=FLOAT)
    schema.define_class(
        "Item",
        ino=INT,
        title=STRING,
        reserve=FLOAT,
        categories=set_of(record_of(name=STRING)),
    )
    schema.define_class("User", uno=INT, name=STRING, rating=INT)
    schema.define_extent("Bids", "Bid")
    schema.define_extent("Items", "Item")
    schema.define_extent("Users", "User")
    return schema


def auction_database(
    num_users: int = 30,
    num_items: int = 20,
    bids_per_user: int = 4,
    seed: int = 1998,
) -> Database:
    """A deterministic auction database.

    Some items intentionally receive no bids and some users never bid, so
    outer-operator padding paths are exercised; reserves are set so that
    roughly half the items have a bid meeting the reserve.
    """
    rng = random.Random(seed)
    db = Database(auction_schema())

    categories = ("art", "books", "tools", "music", "games")
    items = [
        Record(
            ino=i,
            title=f"Item-{i}",
            reserve=float(rng.randint(10, 90)),
            categories=SetValue(
                Record(name=c)
                for c in rng.sample(categories, k=rng.randint(1, 3))
            ),
        )
        for i in range(num_items)
    ]
    users = [
        Record(
            uno=u,
            name=f"User-{u}-{_FIRST_NAMES[u % len(_FIRST_NAMES)]}",
            rating=rng.randint(0, 5),
        )
        for u in range(num_users)
    ]
    bids = []
    for user in users:
        if user["uno"] % 7 == 3:
            continue  # some users never bid
        for _ in range(rng.randint(0, bids_per_user)):
            # item 0 never receives bids
            item = items[rng.randint(1, max(num_items - 1, 1))]
            bids.append(
                Record(
                    bidder=user["uno"],
                    item=item["ino"],
                    amount=float(rng.randint(5, 120)),
                )
            )

    db.add_extent("Users", users)
    db.add_extent("Items", items)
    db.add_extent("Bids", bids)
    return db


# ---------------------------------------------------------------------------
# Plain A/B sets (QUERY C: A ⊆ B)
# ---------------------------------------------------------------------------


def ab_database(
    size_a: int = 20,
    size_b: int = 30,
    subset: bool = False,
    seed: int = 1998,
) -> Database:
    """Two integer extents A and B for the containment query (QUERY C).

    With ``subset=True``, A is guaranteed to be a subset of B.
    """
    rng = random.Random(seed)
    universe = range(3 * max(size_a, size_b, 1))
    b_items = rng.sample(universe, k=min(size_b, len(universe)))
    if subset:
        a_items = rng.sample(b_items, k=min(size_a, len(b_items)))
    else:
        a_items = rng.sample(universe, k=min(size_a, len(universe)))

    schema = Schema()
    schema.define_class("Int", value=INT)
    schema.define_extent("A", "Int")
    schema.define_extent("B", "Int")
    db = Database(schema)
    db.add_extent("A", a_items)
    db.add_extent("B", b_items)
    return db
