"""File-backed persistence for databases (the SHORE stand-in).

The paper's prototype evaluated plans in memory and planned to "connect it
to the SHORE object management system" for persistence.  This module is the
corresponding substrate for this reproduction: a self-describing JSON
format that round-trips a complete :class:`~repro.data.database.Database` —
schema, extents (with nested records/sets/bags/lists and NULLs), and the
set of built indexes (rebuilt on load).

Format sketch::

    {"format": "repro-db", "version": 1,
     "schema": {"classes": {...}, "extents": {...}},
     "extents": {"Employees": {"kind": "set", "items": [...]}, ...},
     "indexes": [["Employees", "dno"], ...]}

Values are encoded with one-key tag objects so scalars stay plain JSON:
``{"$record": {...}}``, ``{"$set": [...]}``, ``{"$bag": [[item, count]]}``,
``{"$list": [...]}``, ``{"$null": true}``.  A stored object's identity rides
along as ``{"$record": {...}, "$oid": n}``; since the bag encoding groups
elements by their full encoding, value-equal objects with different OIDs
stay distinct entries and identity round-trips losslessly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.data.database import Database
from repro.data.schema import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    AnyType,
    BoolType,
    CollectionType,
    FloatType,
    IntType,
    RecordType,
    Schema,
    StringType,
    Type,
)
from repro.data.values import (
    NULL,
    BagValue,
    ListValue,
    Record,
    SetValue,
    is_null,
)

FORMAT_NAME = "repro-db"
FORMAT_VERSION = 1


class StorageError(Exception):
    """The file is not a valid repro database image."""


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode a runtime value as JSON-compatible data.

    A record's engine-assigned OID is persisted as a ``$oid`` sibling of
    ``$record``, so object identity survives a save/load round trip (two
    value-equal duplicates in a bag stay distinct objects).
    """
    if is_null(value):
        return {"$null": True}
    if isinstance(value, Record):
        encoded: dict[str, Any] = {
            "$record": {k: encode_value(v) for k, v in value.items()}
        }
        if value.oid is not None:
            encoded["$oid"] = value.oid
        return encoded
    if isinstance(value, SetValue):
        return {"$set": [encode_value(v) for v in value.elements()]}
    if isinstance(value, BagValue):
        distinct = {}
        for element in value.elements():
            key = encode_value(element)
            marker = json.dumps(key, sort_keys=True)
            if marker not in distinct:
                distinct[marker] = [key, 0]
            distinct[marker][1] += 1
        return {"$bag": list(distinct.values())}
    if isinstance(value, ListValue):
        return {"$list": [encode_value(v) for v in value.elements()]}
    if isinstance(value, (bool, int, float, str)):
        return value
    raise StorageError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: Any) -> Any:
    """Decode JSON data produced by :func:`encode_value`."""
    if isinstance(data, dict):
        if "$null" in data:
            return NULL
        if "$record" in data:
            record = Record(
                {k: decode_value(v) for k, v in data["$record"].items()}
            )
            if "$oid" in data:
                record = record.with_oid(data["$oid"])
            return record
        if "$set" in data:
            return SetValue(decode_value(v) for v in data["$set"])
        if "$bag" in data:
            items = []
            for encoded, count in data["$bag"]:
                element = decode_value(encoded)
                items.extend([element] * count)
            return BagValue(items)
        if "$list" in data:
            return ListValue(decode_value(v) for v in data["$list"])
        raise StorageError(f"unknown value tag in {sorted(data)}")
    if isinstance(data, (bool, int, float, str)):
        return data
    raise StorageError(f"cannot decode {type(data).__name__}")


# ---------------------------------------------------------------------------
# Type / schema encoding
# ---------------------------------------------------------------------------

_PRIMITIVES: dict[str, Type] = {
    "bool": BOOL,
    "int": INT,
    "float": FLOAT,
    "string": STRING,
    "any": ANY,
}


def encode_type(type_: Type) -> Any:
    """Encode a data-model type as JSON-compatible data."""
    if isinstance(type_, (BoolType, IntType, FloatType, StringType, AnyType)):
        return str(type_)
    if isinstance(type_, CollectionType):
        return {"collection": type_.monoid_name, "element": encode_type(type_.element)}
    if isinstance(type_, RecordType):
        return {"record": {name: encode_type(t) for name, t in type_.fields}}
    raise StorageError(f"cannot encode type {type_}")


def decode_type(data: Any) -> Type:
    """Decode JSON produced by :func:`encode_type`."""
    if isinstance(data, str):
        try:
            return _PRIMITIVES[data]
        except KeyError:
            raise StorageError(f"unknown primitive type {data!r}") from None
    if isinstance(data, dict) and "collection" in data:
        return CollectionType(data["collection"], decode_type(data["element"]))
    if isinstance(data, dict) and "record" in data:
        fields = tuple((name, decode_type(t)) for name, t in data["record"].items())
        return RecordType(fields)
    raise StorageError(f"cannot decode type from {data!r}")


def encode_schema(schema: Schema) -> dict[str, Any]:
    """Encode a schema catalog (classes + extents)."""
    return {
        "classes": {
            name: encode_type(record_type)
            for name, record_type in schema.classes.items()
        },
        "extents": dict(schema.extents),
    }


def decode_schema(data: dict[str, Any]) -> Schema:
    """Decode JSON produced by :func:`encode_schema`."""
    schema = Schema()
    for name, encoded in data.get("classes", {}).items():
        decoded = decode_type(encoded)
        if not isinstance(decoded, RecordType):
            raise StorageError(f"class {name!r} is not a record type")
        schema.classes[name] = decoded
    for extent, class_name in data.get("extents", {}).items():
        schema.extents[extent] = class_name
    return schema


# ---------------------------------------------------------------------------
# Whole-database round trip
# ---------------------------------------------------------------------------

_KINDS = {SetValue: "set", BagValue: "bag", ListValue: "list"}


def database_to_dict(db: Database) -> dict[str, Any]:
    """The JSON-compatible image of a whole database."""
    extents: dict[str, Any] = {}
    for name in db.extent_names():
        collection = db.extent(name)
        extents[name] = {
            "kind": _KINDS[type(collection)],
            "items": [encode_value(v) for v in collection.elements()],
        }
    indexes = [
        [extent, attr]
        for extent in db.extent_names()
        for attr in db.indexed_attributes(extent)
    ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "schema": encode_schema(db.schema),
        "extents": extents,
        "indexes": indexes,
    }


def database_from_dict(data: dict[str, Any]) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    if data.get("format") != FORMAT_NAME:
        raise StorageError("not a repro database image (bad format marker)")
    if data.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported format version {data.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    db = Database(decode_schema(data.get("schema", {})))
    for name, extent in data.get("extents", {}).items():
        items = [decode_value(v) for v in extent["items"]]
        db.add_extent(name, items, kind=extent["kind"])
    for extent, attr in data.get("indexes", []):
        db.create_index(extent, attr)
    return db


def save_database(db: Database, path: str | Path) -> None:
    """Write *db* to *path* as a self-describing JSON image."""
    Path(path).write_text(json.dumps(database_to_dict(db), indent=1))


def load_database(path: str | Path) -> Database:
    """Load a database image written by :func:`save_database`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt database image: {exc}") from exc
    return database_from_dict(data)
