"""An in-memory OODB object store with class extents.

The paper's prototype produced "physical plans that are evaluated in memory";
this module is the corresponding substrate.  A :class:`Database` pairs a
:class:`~repro.data.schema.Schema` with the actual extent contents (immutable
collection values over :class:`~repro.data.values.Record` objects).  It
implements the ``ExtentProvider`` protocol used by every evaluator in the
system.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.data.schema import Schema
from repro.data.values import BagValue, CollectionValue, ListValue, Record, SetValue
from repro.errors import UnknownExtentError


class Database:
    """A schema plus in-memory extents, with optional attribute indexes.

    >>> db = Database()
    >>> db.add_extent("Employees", [Record(name="Smith", dno=1)])
    >>> len(db.extent("Employees"))
    1
    >>> db.create_index("Employees", "dno")
    >>> [r["name"] for r in db.index_lookup("Employees", "dno", 1)]
    ['Smith']
    """

    def __init__(self, schema: Schema | None = None):
        self.schema = schema or Schema()
        self._extents: dict[str, CollectionValue] = {}
        self._extent_cache: dict[str, CollectionValue] = {}
        self._indexes: dict[tuple[str, str], dict[Any, list[Any]]] = {}
        self._statistics: dict[tuple[str, str], int] | None = None
        #: Monotone counter bumped by every change that can alter plan choice
        #: (extent contents, indexes, statistics).  The plan cache keys on it
        #: so stale plans are never served after the database changes.
        self.schema_version: int = 0
        #: Next engine-assigned object identity.  Every record stored via
        #: :meth:`add_extent` gets a database-unique OID (see :meth:`adopt`).
        self._next_oid: int = 0

    # -- object identity (OID allocation) --------------------------------------

    def allocate_oid(self) -> int:
        """Hand out the next database-unique object identity."""
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def adopt(self, value: Any) -> Any:
        """Stamp engine OIDs onto *value* and everything stored inside it.

        Records without an OID get a fresh one; records that already carry
        an OID (e.g. reloaded from a persisted image) keep it, and the
        allocator is bumped past it so future OIDs stay unique.  Each
        occurrence of a value-equal duplicate in a bag is adopted
        separately, so duplicates become identity-distinct objects.
        Scalars and NULL pass through unchanged — only stored objects have
        identity; query literals and computed records never go through
        ``adopt`` and stay identity-free.
        """
        if isinstance(value, Record):
            fields = {attr: self.adopt(v) for attr, v in value.items()}
            oid = value.oid
            if oid is None:
                oid = self.allocate_oid()
            elif oid >= self._next_oid:
                self._next_oid = oid + 1
            return Record(fields).with_oid(oid)
        if isinstance(value, SetValue):
            return SetValue(self.adopt(v) for v in value.elements())
        if isinstance(value, BagValue):
            # elements() re-expands multiplicities, so each occurrence of a
            # value-equal duplicate is stamped with its own OID.
            return BagValue(self.adopt(v) for v in value.elements())
        if isinstance(value, ListValue):
            return ListValue(self.adopt(v) for v in value.elements())
        return value

    def add_extent(
        self,
        name: str,
        objects: Iterable[Any],
        kind: str = "set",
    ) -> None:
        """Install extent *name* with the given objects.

        *kind* selects the collection monoid of the extent (class extents in
        the paper are sets; bags and lists are supported for completeness).
        Every object is adopted on the way in: it receives an engine OID
        (preserving any it already carries), making value-equal duplicates
        in bag extents identity-distinct, as the OO model requires.
        """
        items = [self.adopt(obj) for obj in objects]
        if kind == "set":
            self._extents[name] = SetValue(items)
        elif kind == "bag":
            self._extents[name] = BagValue(items)
        elif kind == "list":
            self._extents[name] = ListValue(items)
        else:
            raise ValueError(f"unknown extent kind {kind!r}")
        self._extent_cache.clear()
        self.schema_version += 1

    def extent(self, name: str) -> CollectionValue:
        """Resolve an extent by name (the ExtentProvider protocol).

        An extent of a class logically contains the objects of every
        registered extent of its subclasses (OODB extent inclusion), so a
        query over ``Persons`` also ranges over ``Employees`` when
        ``Employee extends Person``.
        """
        try:
            base = self._extents[name]
        except KeyError:
            raise UnknownExtentError(
                f"unknown extent {name!r}; known extents: {sorted(self._extents)}"
            ) from None
        if name in self._extent_cache:
            return self._extent_cache[name]
        merged = self._with_subextents(name, base)
        self._extent_cache[name] = merged
        return merged

    def _with_subextents(self, name: str, base: CollectionValue) -> CollectionValue:
        class_name = self.schema.extents.get(name)
        if class_name is None or not self.schema.supertypes:
            return base
        extra = []
        for other, other_class in self.schema.extents.items():
            if (
                other != name
                and other in self._extents
                and other_class != class_name
                and self.schema.is_subclass(other_class, class_name)
            ):
                extra.extend(self._extents[other].elements())
        if not extra:
            return base
        if isinstance(base, SetValue):
            return SetValue(list(base.elements()) + extra)
        if isinstance(base, BagValue):
            return BagValue(list(base.elements()) + extra)
        return ListValue(list(base.elements()) + extra)

    def has_extent(self, name: str) -> bool:
        return name in self._extents

    def extent_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._extents))

    def cardinality(self, name: str) -> int:
        """Number of objects in an extent (used by the cost model)."""
        return len(self.extent(name))

    # -- statistics (ANALYZE) --------------------------------------------------

    def analyze(self) -> None:
        """Collect per-attribute statistics for the cost model.

        For every record-valued extent, records the number of distinct
        values of each scalar attribute.  The cost model uses ``1/ndv`` as
        the selectivity of equality predicates on analyzed attributes
        instead of its fixed default.
        """
        self._statistics = {}
        for name in self.extent_names():
            distinct: dict[str, set[Any]] = {}
            for obj in self.extent(name):
                if not isinstance(obj, Record):
                    continue
                for attr, value in obj.items():
                    try:
                        distinct.setdefault(attr, set()).add(value)
                    except TypeError:  # pragma: no cover - all values hashable
                        continue
            for attr, values in distinct.items():
                self._statistics[(name, attr)] = len(values)
        self.schema_version += 1

    def distinct_count(self, extent_name: str, attr: str) -> int | None:
        """Distinct values of ``extent.attr``, or None when not analyzed."""
        if self._statistics is None:
            return None
        return self._statistics.get((extent_name, attr))

    # -- indexes ("choosing access paths", paper Section 6) ------------------

    def create_index(self, extent_name: str, attr: str) -> None:
        """Build a hash index over attribute *attr* of extent *extent_name*.

        The planner turns equality selections on indexed attributes into
        index scans.  Indexes are built eagerly and must be (re)created
        after ``add_extent`` replaces the extent's contents.
        """
        table: dict[Any, list[Any]] = {}
        for obj in self.extent(extent_name):
            if not isinstance(obj, Record) or attr not in obj:
                raise ValueError(
                    f"cannot index {extent_name!r} on {attr!r}: objects lack "
                    "that attribute"
                )
            table.setdefault(obj[attr], []).append(obj)
        self._indexes[(extent_name, attr)] = table
        self.schema_version += 1

    def has_index(self, extent_name: str, attr: str) -> bool:
        return (extent_name, attr) in self._indexes

    def indexed_attributes(self, extent_name: str) -> tuple[str, ...]:
        return tuple(
            sorted(attr for ext, attr in self._indexes if ext == extent_name)
        )

    def index_lookup(self, extent_name: str, attr: str, value: Any) -> list[Any]:
        """Objects of *extent_name* whose *attr* equals *value* (via index)."""
        try:
            table = self._indexes[(extent_name, attr)]
        except KeyError:
            raise KeyError(
                f"no index on {extent_name}.{attr}; create one with "
                "create_index()"
            ) from None
        return table.get(value, [])

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}: {len(c)}" for n, c in sorted(self._extents.items()))
        return f"Database({sizes})"
