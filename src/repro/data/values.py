"""Runtime values for the object-oriented data model.

The calculus and the algebra of the paper operate over a small universe of
values: scalars (booleans, numbers, strings), records (tuples with named
attributes), the three collection kinds (sets, bags, lists), and ``NULL``.

Every value in this module is *immutable and hashable*.  This is a deliberate
engineering choice: the nest operator of the algebra groups streams by
arbitrary value keys, and the set monoid must deduplicate arbitrary elements;
hashability makes both O(1) per element.

Object identity.  The paper's data model is object-oriented: two objects
with identical state are still *distinct* objects.  Stored objects are
:class:`Record` values carrying an engine-assigned OID (stamped by
:meth:`repro.data.database.Database.add_extent`), held *outside* structural
equality: ``==``/``hash`` on records stay purely value-based, so monoid
set-dedup and cross-path result comparison keep deep value equality.  Code
that must distinguish objects — grouping keys in the nest operator,
equi-join keys, object equality in queries — goes through
:func:`identity_key` / :func:`identity_eq`, which collapse to plain value
semantics for identity-free values (literals and computed records never get
an OID).  :class:`BagValue` stores its elements keyed by identity so a bag
extent can hold two value-equal but distinct objects without conflating
them; its public ``==``/``hash``/``count`` remain value-based.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any


class NullValue:
    """The distinguished ``NULL`` value of the paper's calculus.

    The paper extends every type domain with ``NULL`` and supports exactly
    two operations on it: creating it and testing for it (Section 2).  The
    unnesting algorithm introduces NULLs via outer-joins and outer-unnests
    and removes them via the nest operator's null-to-zero conversion.

    This class is a singleton; use the module-level :data:`NULL`.
    """

    _instance: "NullValue | None" = None

    def __new__(cls) -> "NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __hash__(self) -> int:
        return hash("repro.NULL")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullValue)

    def __bool__(self) -> bool:
        # NULL must never be silently used as a truth value; predicates
        # decide explicitly via ``is_null``.
        raise TypeError("NULL has no truth value; test with is_null() instead")


NULL = NullValue()


def is_null(value: Any) -> bool:
    """Return True iff *value* is the distinguished NULL value."""
    return isinstance(value, NullValue)


class Record(Mapping[str, Any]):
    """An immutable record (the calculus' tuple ``(A1=e1, ..., An=en)``).

    Attributes are accessed by projection (``record["name"]`` or
    ``record.get``).  Records compare and hash structurally, so they can be
    set elements and grouping keys.

    A record may additionally carry an engine-assigned :attr:`oid` — the
    object identity of the paper's OO model.  The OID deliberately does
    *not* participate in ``==``/``hash`` (two objects with identical state
    are value-equal); identity-sensitive code uses :func:`identity_key`.
    Derived records (:meth:`with_field`, query-built structs) carry no OID.

    >>> r = Record(name="Smith", age=40)
    >>> r["name"]
    'Smith'
    >>> r == Record(age=40, name="Smith")
    True
    >>> r.with_oid(7) == r and r.with_oid(7).oid == 7
    True
    """

    __slots__ = ("_fields", "_hash", "_oid", "_ikey")

    def __init__(self, _fields: Mapping[str, Any] | None = None, **kwargs: Any):
        fields: dict[str, Any] = dict(_fields) if _fields else {}
        fields.update(kwargs)
        object.__setattr__(self, "_fields", fields)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_oid", None)
        object.__setattr__(self, "_ikey", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Record is immutable")

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._fields[name]
        except KeyError:
            raise KeyError(
                f"record has no attribute {name!r}; attributes are "
                f"{sorted(self._fields)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def attributes(self) -> tuple[str, ...]:
        """The record's attribute names, sorted."""
        return tuple(sorted(self._fields))

    def with_field(self, name: str, value: Any) -> "Record":
        """A copy of this record with attribute *name* set to *value*.

        The copy is a *derived* value, not the stored object — it carries
        no OID even when this record has one.
        """
        fields = dict(self._fields)
        fields[name] = value
        return Record(fields)

    # -- object identity ---------------------------------------------------

    @property
    def oid(self) -> int | None:
        """The engine-assigned object identity, or None for plain values."""
        return self._oid

    def with_oid(self, oid: int) -> "Record":
        """This record stamped with object identity *oid*.

        The field mapping is shared with the original, so stamping is O(1).
        """
        stamped = Record.__new__(Record)
        object.__setattr__(stamped, "_fields", self._fields)
        object.__setattr__(stamped, "_hash", self._hash)
        object.__setattr__(stamped, "_oid", oid)
        object.__setattr__(stamped, "_ikey", None)
        return stamped

    # -- structural equality ----------------------------------------------

    def _key(self) -> tuple[tuple[str, Any], ...]:
        return tuple(sorted(self._fields.items(), key=lambda kv: kv[0]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._key())
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._key())
        return f"<{inner}>"


class CollectionValue:
    """Base class for the three collection kinds (set, bag, list)."""

    __slots__ = ()

    def elements(self) -> Iterator[Any]:
        """Iterate over the elements *with* multiplicity."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        return self.elements()


class SetValue(CollectionValue):
    """An immutable set — the carrier of the paper's set monoid (∪, {}).

    Elements iterate in first-insertion order, *not* Python hash order:
    extent scans (and everything downstream of them — join probe order,
    group first-seen order, bag results built from set extents) are
    therefore deterministic across processes regardless of
    ``PYTHONHASHSEED``.  Equality, hashing, and membership remain
    order-insensitive; only iteration order is pinned.
    """

    __slots__ = ("_items", "_order")

    def __init__(self, items: Iterable[Any] = ()):
        # dict.fromkeys dedups by the same ==/hash as frozenset and keeps
        # the first occurrence, so value semantics are unchanged.
        ordered = dict.fromkeys(items)
        object.__setattr__(self, "_order", tuple(ordered))
        object.__setattr__(self, "_items", frozenset(ordered))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("SetValue is immutable")

    def elements(self) -> Iterator[Any]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, value: Any) -> bool:
        return value in self._items

    def union(self, other: "SetValue") -> "SetValue":
        return SetValue(self._order + other._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetValue):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(("set", self._items))

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in _stable_order(self._items))
        return "{" + inner + "}"


class BagValue(CollectionValue):
    """An immutable bag (multiset) — carrier of the bag monoid (⊎, {{}}).

    Elements are stored keyed by :func:`identity_key`, so a bag can hold
    two value-equal but identity-distinct objects without conflating them
    (a bag extent of duplicates is exactly where the OO model and plain
    multiset-of-values semantics diverge).  The *public* interface —
    ``==``, ``hash``, :meth:`count`, ``in`` — remains value-based, matching
    the value semantics of every other collection.
    """

    __slots__ = ("_entries",)

    def __init__(self, items: Iterable[Any] = ()):
        # identity key -> (representative element, multiplicity)
        entries: dict[Any, tuple[Any, int]] = {}
        if isinstance(items, BagValue):
            entries = dict(items._entries)
        else:
            for item in items:
                key = identity_key(item)
                found = entries.get(key)
                entries[key] = (item, 1) if found is None else (found[0], found[1] + 1)
        object.__setattr__(self, "_entries", entries)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("BagValue is immutable")

    @classmethod
    def from_counts(cls, counts: Mapping[Any, int]) -> "BagValue":
        entries: dict[Any, tuple[Any, int]] = {}
        for value, count in counts.items():
            if count <= 0:
                continue
            key = identity_key(value)
            found = entries.get(key)
            entries[key] = (
                (value, count) if found is None else (found[0], found[1] + count)
            )
        bag = cls()
        object.__setattr__(bag, "_entries", entries)
        return bag

    def _value_counts(self) -> dict[Any, int]:
        """Multiplicity per *value* (identity collapsed) — the bag's public
        value semantics."""
        counts: dict[Any, int] = {}
        for value, count in self._entries.values():
            counts[value] = counts.get(value, 0) + count
        return counts

    def count(self, value: Any) -> int:
        """Multiplicity of *value* in the bag (by value, ignoring identity)."""
        return sum(c for v, c in self._entries.values() if v == value)

    def elements(self) -> Iterator[Any]:
        for value, count in self._entries.values():
            for _ in range(count):
                yield value

    def __len__(self) -> int:
        return sum(count for _, count in self._entries.values())

    def __contains__(self, value: Any) -> bool:
        return any(v == value for v, _ in self._entries.values())

    def additive_union(self, other: "BagValue") -> "BagValue":
        entries = dict(self._entries)
        for key, (value, count) in other._entries.items():
            found = entries.get(key)
            entries[key] = (
                (value, count) if found is None else (found[0], found[1] + count)
            )
        bag = BagValue()
        object.__setattr__(bag, "_entries", entries)
        return bag

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BagValue):
            return NotImplemented
        return self._value_counts() == other._value_counts()

    def __hash__(self) -> int:
        return hash(("bag", frozenset(self._value_counts().items())))

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in _stable_order(list(self.elements())))
        return "{{" + inner + "}}"


class ListValue(CollectionValue):
    """An immutable list — carrier of the list monoid (++, [])."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()):
        object.__setattr__(self, "_items", tuple(items))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ListValue is immutable")

    def elements(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Any:
        return self._items[index]

    def concat(self, other: "ListValue") -> "ListValue":
        return ListValue(self._items + other._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ListValue):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(("list", self._items))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(v) for v in self._items) + "]"


def _stable_order(items: Iterable[Any]) -> list[Any]:
    """Order arbitrary hashable values deterministically (for repr only)."""
    return sorted(items, key=lambda v: (str(type(v).__name__), repr(v)))


def is_collection(value: Any) -> bool:
    """True iff *value* is one of the three collection kinds."""
    return isinstance(value, CollectionValue)


def ensure_hashable(value: Any) -> Any:
    """Validate that *value* can live inside sets / grouping keys.

    Raises TypeError for unhashable values; returns the value unchanged.
    """
    if not isinstance(value, Hashable):
        raise TypeError(f"value of type {type(value).__name__} is not hashable")
    hash(value)
    return value


# ---------------------------------------------------------------------------
# Object identity
# ---------------------------------------------------------------------------

#: Tags for identity keys.  The NUL prefix keeps them disjoint from every
#: real value in the model (values never contain raw Python tuples).
_OID_TAG = "\x00oid"
_REC_TAG = "\x00rec"
_SET_TAG = "\x00set"
_BAG_TAG = "\x00bag"
_LIST_TAG = "\x00list"


def identity_key(value: Any) -> Any:
    """A hashable key that distinguishes values by *object identity*.

    For identity-free values (scalars, NULL, literals, computed records)
    the value itself is returned unchanged, so identity keys degrade to
    plain value semantics exactly where the OO model prescribes value
    equality.  For a record stamped with an OID the key is the OID alone;
    for containers holding identity-bearing elements the key recurses.
    Two stored objects with identical state therefore get *different* keys,
    which is what lets grouping and joins keep them apart.

    >>> identity_key(Record(j=1)) == identity_key(Record(j=1))
    True
    >>> identity_key(Record(j=1).with_oid(0)) == identity_key(Record(j=1).with_oid(1))
    False
    """
    # Exact-class fast paths: scalars dominate join/group keys, and the
    # ``is``-check skips ABCMeta's __instancecheck__ on the Record test.
    cls = value.__class__
    if cls is bool or cls is int or cls is float or cls is str:
        return value
    if cls is Record or isinstance(value, Record):
        cached = value._ikey
        if cached is not None:
            return cached
        if value._oid is not None:
            key: Any = (_OID_TAG, value._oid)
        else:
            items = value._key()
            parts = tuple((attr, identity_key(v)) for attr, v in items)
            if all(part is v for (_, part), (_, v) in zip(parts, items)):
                key = value  # identity-free all the way down
            else:
                key = (_REC_TAG, parts)
        object.__setattr__(value, "_ikey", key)
        return key
    if isinstance(value, SetValue):
        keys = frozenset(identity_key(v) for v in value._items)
        if keys == value._items:
            return value  # no member carries identity
        return (_SET_TAG, keys)
    if isinstance(value, BagValue):
        entries = value._entries
        if all(key is entry[0] for key, entry in entries.items()):
            return value
        return (_BAG_TAG, frozenset((k, c) for k, (_, c) in entries.items()))
    if isinstance(value, ListValue):
        keys = tuple(identity_key(v) for v in value._items)
        if all(k is v for k, v in zip(keys, value._items)):
            return value
        return (_LIST_TAG, keys)
    return value


def has_identity(value: Any) -> bool:
    """True iff *value* carries object identity anywhere inside it."""
    return identity_key(value) is not value


def identity_eq(left: Any, right: Any) -> bool:
    """Equality by object identity where present, by value otherwise.

    This is what OQL ``=`` means on the OO model: scalars and plain values
    compare by value; stored objects compare by OID (a literal twin of a
    stored object is *not* that object).  All execution paths share this
    predicate via ``apply_binop``, so they cannot disagree on it.
    """
    return identity_key(left) == identity_key(right)


def identity_sort_key(key: Any) -> tuple:
    """A total order over identity keys / scalar join keys, for sort-merge.

    Ranks values by kind so mixed-type inputs never raise TypeError:
    numbers (booleans included) sort together, then strings, then
    everything else by repr.  Values whose sort keys are equal are not
    necessarily equal — merge loops must still compare the raw keys.
    """
    if isinstance(key, (bool, int, float)):
        return (0, float(key))
    if isinstance(key, str):
        return (1, key)
    return (2, type(key).__name__, repr(key))
