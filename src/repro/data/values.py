"""Runtime values for the object-oriented data model.

The calculus and the algebra of the paper operate over a small universe of
values: scalars (booleans, numbers, strings), records (tuples with named
attributes), the three collection kinds (sets, bags, lists), and ``NULL``.

Every value in this module is *immutable and hashable*.  This is a deliberate
engineering choice: the nest operator of the algebra groups streams by
arbitrary value keys, and the set monoid must deduplicate arbitrary elements;
hashability makes both O(1) per element.  Database objects are plain
:class:`Record` values whose identity, when needed, is an ``oid`` attribute
(see :mod:`repro.data.database`).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any


class NullValue:
    """The distinguished ``NULL`` value of the paper's calculus.

    The paper extends every type domain with ``NULL`` and supports exactly
    two operations on it: creating it and testing for it (Section 2).  The
    unnesting algorithm introduces NULLs via outer-joins and outer-unnests
    and removes them via the nest operator's null-to-zero conversion.

    This class is a singleton; use the module-level :data:`NULL`.
    """

    _instance: "NullValue | None" = None

    def __new__(cls) -> "NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __hash__(self) -> int:
        return hash("repro.NULL")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullValue)

    def __bool__(self) -> bool:
        # NULL must never be silently used as a truth value; predicates
        # decide explicitly via ``is_null``.
        raise TypeError("NULL has no truth value; test with is_null() instead")


NULL = NullValue()


def is_null(value: Any) -> bool:
    """Return True iff *value* is the distinguished NULL value."""
    return isinstance(value, NullValue)


class Record(Mapping[str, Any]):
    """An immutable record (the calculus' tuple ``(A1=e1, ..., An=en)``).

    Attributes are accessed by projection (``record["name"]`` or
    ``record.get``).  Records compare and hash structurally, so they can be
    set elements and grouping keys.

    >>> r = Record(name="Smith", age=40)
    >>> r["name"]
    'Smith'
    >>> r == Record(age=40, name="Smith")
    True
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, _fields: Mapping[str, Any] | None = None, **kwargs: Any):
        fields: dict[str, Any] = dict(_fields) if _fields else {}
        fields.update(kwargs)
        object.__setattr__(self, "_fields", fields)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Record is immutable")

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._fields[name]
        except KeyError:
            raise KeyError(
                f"record has no attribute {name!r}; attributes are "
                f"{sorted(self._fields)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def attributes(self) -> tuple[str, ...]:
        """The record's attribute names, sorted."""
        return tuple(sorted(self._fields))

    def with_field(self, name: str, value: Any) -> "Record":
        """A copy of this record with attribute *name* set to *value*."""
        fields = dict(self._fields)
        fields[name] = value
        return Record(fields)

    # -- structural equality ----------------------------------------------

    def _key(self) -> tuple[tuple[str, Any], ...]:
        return tuple(sorted(self._fields.items(), key=lambda kv: kv[0]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._key())
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._key())
        return f"<{inner}>"


class CollectionValue:
    """Base class for the three collection kinds (set, bag, list)."""

    __slots__ = ()

    def elements(self) -> Iterator[Any]:
        """Iterate over the elements *with* multiplicity."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        return self.elements()


class SetValue(CollectionValue):
    """An immutable set — the carrier of the paper's set monoid (∪, {})."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()):
        object.__setattr__(self, "_items", frozenset(items))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("SetValue is immutable")

    def elements(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, value: Any) -> bool:
        return value in self._items

    def union(self, other: "SetValue") -> "SetValue":
        return SetValue(self._items | other._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetValue):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(("set", self._items))

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in _stable_order(self._items))
        return "{" + inner + "}"


class BagValue(CollectionValue):
    """An immutable bag (multiset) — carrier of the bag monoid (⊎, {{}})."""

    __slots__ = ("_counts",)

    def __init__(self, items: Iterable[Any] = ()):
        counts: dict[Any, int] = {}
        if isinstance(items, BagValue):
            counts = dict(items._counts)
        else:
            for item in items:
                counts[item] = counts.get(item, 0) + 1
        object.__setattr__(self, "_counts", counts)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("BagValue is immutable")

    @classmethod
    def from_counts(cls, counts: Mapping[Any, int]) -> "BagValue":
        bag = cls()
        object.__setattr__(bag, "_counts", {k: v for k, v in counts.items() if v > 0})
        return bag

    def count(self, value: Any) -> int:
        """Multiplicity of *value* in the bag."""
        return self._counts.get(value, 0)

    def elements(self) -> Iterator[Any]:
        for value, count in self._counts.items():
            for _ in range(count):
                yield value

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __contains__(self, value: Any) -> bool:
        return value in self._counts

    def additive_union(self, other: "BagValue") -> "BagValue":
        counts = dict(self._counts)
        for value, count in other._counts.items():
            counts[value] = counts.get(value, 0) + count
        return BagValue.from_counts(counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BagValue):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(("bag", frozenset(self._counts.items())))

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in _stable_order(list(self.elements())))
        return "{{" + inner + "}}"


class ListValue(CollectionValue):
    """An immutable list — carrier of the list monoid (++, [])."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()):
        object.__setattr__(self, "_items", tuple(items))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ListValue is immutable")

    def elements(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Any:
        return self._items[index]

    def concat(self, other: "ListValue") -> "ListValue":
        return ListValue(self._items + other._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ListValue):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(("list", self._items))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(v) for v in self._items) + "]"


def _stable_order(items: Iterable[Any]) -> list[Any]:
    """Order arbitrary hashable values deterministically (for repr only)."""
    return sorted(items, key=lambda v: (str(type(v).__name__), repr(v)))


def is_collection(value: Any) -> bool:
    """True iff *value* is one of the three collection kinds."""
    return isinstance(value, CollectionValue)


def ensure_hashable(value: Any) -> Any:
    """Validate that *value* can live inside sets / grouping keys.

    Raises TypeError for unhashable values; returns the value unchanged.
    """
    if not isinstance(value, Hashable):
        raise TypeError(f"value of type {type(value).__name__} is not hashable")
    hash(value)
    return value
