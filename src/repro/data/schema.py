"""Type system and schema catalog for the OODB data model.

The paper's typing rules (Figure 3 for the calculus, Figure 6 for the
algebra) are stated over a type language with primitive types, record types,
and collection types.  This module provides that type language plus a schema
catalog mapping class names to their attribute types and extent names to
their element classes — the information the OQL translator and the type
checkers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


class Type:
    """Base class for all data-model types."""

    __slots__ = ()


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class IntType(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class FloatType(Type):
    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class StringType(Type):
    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True)
class RecordType(Type):
    """A record type ``( A1: t1, ..., An: tn )``."""

    fields: tuple[tuple[str, Type], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate record attributes: {names}")
        # Canonical attribute order makes structural equality order-free.
        object.__setattr__(
            self, "fields", tuple(sorted(self.fields, key=lambda kv: kv[0]))
        )

    def attribute(self, name: str) -> Type:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        raise KeyError(
            f"record type has no attribute {name!r}; attributes are "
            f"{[n for n, _ in self.fields]}"
        )

    def has_attribute(self, name: str) -> bool:
        return any(field_name == name for field_name, _ in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {t}" for n, t in self.fields)
        return f"( {inner} )"


@dataclass(frozen=True)
class CollectionType(Type):
    """A collection type: set(t), bag(t), or list(t)."""

    monoid_name: str  # "set" | "bag" | "list"
    element: Type

    def __post_init__(self) -> None:
        if self.monoid_name not in ("set", "bag", "list"):
            raise ValueError(f"not a collection monoid: {self.monoid_name!r}")

    def __str__(self) -> str:
        return f"{self.monoid_name}({self.element})"


@dataclass(frozen=True)
class FunctionType(Type):
    """A function type t1 -> t2 (typing rule T6/T7)."""

    param: Type
    result: Type

    def __str__(self) -> str:
        return f"({self.param} -> {self.result})"


@dataclass(frozen=True)
class AnyType(Type):
    """Top type used where inference must proceed without schema info."""

    def __str__(self) -> str:
        return "any"


BOOL = BoolType()
INT = IntType()
FLOAT = FloatType()
STRING = StringType()
ANY = AnyType()


def set_of(element: Type) -> CollectionType:
    """The type ``set(element)``."""
    return CollectionType("set", element)


def bag_of(element: Type) -> CollectionType:
    """The type ``bag(element)``."""
    return CollectionType("bag", element)


def list_of(element: Type) -> CollectionType:
    """The type ``list(element)``."""
    return CollectionType("list", element)


def record_of(**fields: Type) -> RecordType:
    """A record type from keyword arguments."""
    return RecordType(tuple(fields.items()))


def is_numeric(type_: Type) -> bool:
    """True for int/float (and ``any``, which may stand for either)."""
    return isinstance(type_, (IntType, FloatType, AnyType))


def unify(left: Type, right: Type) -> Type:
    """The least upper bound of two types, or raise on a mismatch.

    ``any`` unifies with everything; int and float unify to float.
    """
    if isinstance(left, AnyType):
        return right
    if isinstance(right, AnyType):
        return left
    if left == right:
        return left
    if {type(left), type(right)} == {IntType, FloatType}:
        return FLOAT
    if isinstance(left, CollectionType) and isinstance(right, CollectionType):
        if left.monoid_name == right.monoid_name:
            return CollectionType(left.monoid_name, unify(left.element, right.element))
    if isinstance(left, RecordType) and isinstance(right, RecordType):
        left_names = [n for n, _ in left.fields]
        right_names = [n for n, _ in right.fields]
        if left_names == right_names:
            fields = tuple(
                (n, unify(lt, rt))
                for (n, lt), (_, rt) in zip(left.fields, right.fields)
            )
            return RecordType(fields)
    raise TypeError(f"cannot unify types {left} and {right}")


@dataclass
class Schema:
    """A schema catalog: named record classes, inheritance, and extents.

    Classes may reference each other by name (``ClassRef``-style references
    are expressed simply by using the referenced class' record type through
    :meth:`class_type`; recursion is broken by ``ANY`` placeholders when a
    class is self-referential).  A class declared with ``extends=`` inherits
    its superclass' attributes, and an extent of the superclass logically
    contains the objects of every subclass extent (see
    :meth:`repro.data.database.Database.extent`).
    """

    classes: dict[str, RecordType] = field(default_factory=dict)
    extents: dict[str, str] = field(default_factory=dict)  # extent -> class
    supertypes: dict[str, str] = field(default_factory=dict)  # class -> parent

    def define_class(
        self, class_name: str, /, extends: str | None = None, **attributes: Type
    ) -> RecordType:
        """Register a class; with ``extends``, inherit the parent's attributes."""
        fields_: dict[str, Type] = {}
        if extends is not None:
            parent = self.class_type(extends)
            fields_.update(dict(parent.fields))
            self.supertypes[class_name] = extends
        fields_.update(attributes)
        record_type = RecordType(tuple(fields_.items()))
        self.classes[class_name] = record_type
        return record_type

    def is_subclass(self, class_name: str, ancestor: str) -> bool:
        """True when *class_name* is *ancestor* or derives from it."""
        current: str | None = class_name
        while current is not None:
            if current == ancestor:
                return True
            current = self.supertypes.get(current)
        return False

    def subclasses(self, class_name: str) -> tuple[str, ...]:
        """All registered classes deriving from *class_name* (inclusive)."""
        return tuple(
            sorted(name for name in self.classes if self.is_subclass(name, class_name))
        )

    def define_extent(self, extent_name: str, class_name: str) -> None:
        """Register a class extent (a named top-level set of class objects)."""
        if class_name not in self.classes:
            raise KeyError(f"unknown class {class_name!r}")
        self.extents[extent_name] = class_name

    def class_type(self, name: str) -> RecordType:
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(
                f"unknown class {name!r}; known: {sorted(self.classes)}"
            ) from None

    def extent_type(self, extent_name: str) -> CollectionType:
        """The type of an extent: set(class record type)."""
        try:
            class_name = self.extents[extent_name]
        except KeyError:
            raise KeyError(
                f"unknown extent {extent_name!r}; known: {sorted(self.extents)}"
            ) from None
        return set_of(self.class_type(class_name))

    def has_extent(self, extent_name: str) -> bool:
        return extent_name in self.extents

    def extent_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.extents))


def schema_from_mapping(mapping: Mapping[str, RecordType]) -> Schema:
    """Build a schema where each class has a same-named extent."""
    schema = Schema()
    for name, record_type in mapping.items():
        schema.classes[name] = record_type
        schema.extents[name] = name
    return schema
