"""The in-memory OODB substrate: values, schema catalog, object store, and
deterministic synthetic data generators for the paper's example schemas."""

from repro.data.database import Database
from repro.data.datagen import (
    ab_database,
    company_database,
    travel_database,
    university_database,
)
from repro.data.schema import Schema
from repro.data.values import (
    NULL,
    BagValue,
    ListValue,
    NullValue,
    Record,
    SetValue,
    is_null,
)

__all__ = [
    "NULL",
    "BagValue",
    "Database",
    "ListValue",
    "NullValue",
    "Record",
    "Schema",
    "SetValue",
    "ab_database",
    "company_database",
    "is_null",
    "travel_database",
    "university_database",
]
