"""The structured error taxonomy for the query engine.

Every failure that crosses the public pipeline boundary —
:meth:`repro.core.pipeline.QueryPipeline.run_oql` and friends — is an
instance of :class:`QueryError`.  Raw Python exceptions (``KeyError`` from a
missing extent, ``TypeError`` from ill-typed arithmetic, ``ZeroDivisionError``
from an unlucky predicate) never escape; they are either prevented statically
(the T1–T9 typechecker and schema-aware translation reject them at plan
time) or wrapped at the stage boundary that observed them.

The hierarchy::

    QueryError
    ├── PlanningError            parse / translate / typecheck / rewrite
    │   ├── TypeCheckError       T1–T9 violation, names the subterm
    │   ├── UnknownExtentError   name does not resolve against the schema
    │   └── BackendUnsupportedError
    │                            the selected execution backend refuses the
    │                            query or database (e.g. the SQLite shredding
    │                            backend on a schema it cannot flatten)
    ├── ExecutionError           runtime failure in a well-typed plan
    │   └── GovernorError        a resource limit tripped
    │       ├── QueryTimeout     wall-clock deadline exceeded
    │       ├── BudgetExceeded   row or memory budget exceeded
    │       └── QueryCancelled   cooperative cancel() token observed

Each error carries structured context — the query source, the pipeline
stage that raised, and (for execution errors) the operator that was
running — filled in by :meth:`QueryError.annotate` as the exception
propagates outward through layers that know more than the raise site did.

This module imports nothing from the rest of the package so that any
layer (data, calculus, algebra, engine, core) can depend on it without
creating an import cycle.
"""

from __future__ import annotations

__all__ = [
    "QueryError",
    "PlanningError",
    "TypeCheckError",
    "UnknownExtentError",
    "BackendUnsupportedError",
    "ExecutionError",
    "GovernorError",
    "QueryTimeout",
    "BudgetExceeded",
    "QueryCancelled",
]


class QueryError(Exception):
    """Base class for every error the query engine reports.

    Attributes:
        message: the human-readable description, without context suffix.
        source: the OQL source text of the failing query, when known.
        stage: the pipeline stage that failed (``parse``, ``translate``,
            ``typecheck``, ``normalize``, ``unnest``, ``simplify``,
            ``optimize``, ``plan``, ``execute``).
        operator: the physical operator running when an execution error
            surfaced, when known (e.g. ``PHashJoin``).
    """

    def __init__(
        self,
        message: str,
        *,
        source: str | None = None,
        stage: str | None = None,
        operator: str | None = None,
    ):
        super().__init__(message)
        self.message = message
        self.source = source
        self.stage = stage
        self.operator = operator

    def annotate(
        self,
        *,
        source: str | None = None,
        stage: str | None = None,
        operator: str | None = None,
    ) -> "QueryError":
        """Fill in context fields that are still unset and return ``self``.

        Outer layers (the pipeline boundary, the executor) call this as the
        error propagates; the innermost annotation wins because set fields
        are never overwritten.
        """
        if source is not None and self.source is None:
            self.source = source
        if stage is not None and self.stage is None:
            self.stage = stage
        if operator is not None and self.operator is None:
            self.operator = operator
        return self

    def __str__(self) -> str:
        parts = []
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.operator is not None:
            parts.append(f"operator={self.operator}")
        if self.source is not None:
            parts.append(f"query={self.source!r}")
        if not parts:
            return self.message
        return f"{self.message} [{', '.join(parts)}]"


class PlanningError(QueryError):
    """The query was rejected before execution: parse, name resolution,
    typecheck, or a rewrite-stage failure."""


class TypeCheckError(PlanningError):
    """A T1–T9 typing rule was violated; the message names the subterm."""


class UnknownExtentError(PlanningError, KeyError):
    """A name did not resolve to an extent (or binding) in the schema.

    Also a ``KeyError`` for backward compatibility with callers that
    caught the raw lookup failure.
    """

    # KeyError.__str__ repr-quotes its argument; QueryError's wins via MRO,
    # but be explicit so the contract is pinned rather than incidental.
    __str__ = QueryError.__str__


class BackendUnsupportedError(PlanningError):
    """The selected execution backend cannot run this query or database.

    Raised by alternative backends (``OptimizerOptions.backend``) on
    constructs they refuse rather than risk silently diverging from the
    reference semantics — e.g. the SQLite shredding backend on a schema
    with inheritance, or a database whose extents it cannot flatten.  The
    query itself is fine: re-running with ``backend="memory"`` succeeds.
    The differential oracle treats this error as a *skip* (counted, never
    silent), not a disagreement.
    """


class ExecutionError(QueryError):
    """A well-typed plan failed at run time (e.g. division by zero,
    an unbound parameter, or a wrapped evaluator fault)."""


class GovernorError(ExecutionError):
    """A per-query resource limit stopped execution cooperatively."""


class QueryTimeout(GovernorError):
    """The query exceeded its wall-clock deadline."""


class BudgetExceeded(GovernorError):
    """The query exceeded its row budget or estimated-memory budget."""


class QueryCancelled(GovernorError):
    """The query observed its cancellation token and stopped."""
