"""Alternative execution backends.

The in-memory engine (:mod:`repro.engine`) is the default executor.  This
package hosts independently-implemented backends selected through
``OptimizerOptions.backend``; each one is both a production posture (e.g.
out-of-core data volume) and a differential-oracle surface (an independent
implementation the fuzzer can disagree with).

Currently:

* :mod:`repro.backends.shred` — query shredding over stdlib ``sqlite3``
  (``backend="sqlite"``).
"""
