"""The query-shredding SQLite backend (``OptimizerOptions.backend="sqlite"``).

Fegaras' unnesting algebra produces flat join/outer-join/unnest chains
separated by nest operators — exactly the shape *query shredding* (Cheney,
Lindley & Wadler, arXiv:1404.7078) translates to a bounded set of flat
relational queries plus a stitching step.  This module implements that
translation over the stdlib ``sqlite3`` engine in three layers:

**Shredded storage** (:class:`ShreddedStore`).  Every extent is flattened
into SQLite tables: one root table per extent keyed by the engine-assigned
``$oid`` (scalar attributes as columns, nested *records* flattened in place
with ``$``-joined column prefixes), and one child table per nested
collection (``Extent$path``) whose rows carry ``$parent`` (the owning row's
``$oid``) and ``$pos`` (the occurrence index — bag multiplicity and list
order survive shredding).  The catalog is **data-driven**: shapes are
inferred from the stored values, not the declared schema (the ``ab`` demo
database stores plain integers under a record-typed schema).  Anything the
flat encoding cannot represent faithfully — inheritance hierarchies,
NULL-valued collection attributes, heterogeneous record shapes, mixed-type
columns — raises :class:`~repro.errors.BackendUnsupportedError` instead of
risking silent divergence.  The store is also an ``ExtentProvider``:
:meth:`ShreddedStore.extent` re-stitches an extent's rows back into the
original nested values (same OIDs, same collection kinds), which both
proves the shredding lossless and feeds the residual evaluator below.

**SQL lowering** (:func:`compile_segments`).  Maximal chains of
scan/select/join/outer-join/unnest/outer-unnest/map operators are compiled
into **one flat ``SELECT`` per nesting level**: joins become parenthesized
join trees (inner predicates in ``ON``/``WHERE``, which are equivalent for
inner joins), outer-joins become ``LEFT JOIN`` with the right side's
residual filters lifted into the ``ON`` clause (the standard equivalence),
and (outer-)unnests become joins against the child tables on ``$parent``.
The translated predicates rely on SQLite's Kleene three-valued logic
matching the calculus: ``WHERE`` drops NULL predicates exactly as the
engine treats NULL predicates as false, ``AND``/``OR``/``NOT``/``CASE``
agree with the evaluator's 3VL, and object equality compares ``$oid``
columns — the same identity semantics as
:func:`~repro.data.values.identity_eq`.  Expressions the translation cannot
prove equivalent (division — SQLite truncates integers and yields NULL on
zero — parameters, string concatenation, collection-valued terms) are
simply *not* compiled: the operator stays residual.  Every segment orders
by the constituent ``$pos`` columns, reproducing the in-memory engine's
nested-loop enumeration order exactly.

**Aggregation pushdown** (the same :func:`compile_segments`).  The paper's
O4/O7 reduce/nest operators lower into SQL instead of stitching whenever
their monoid has an exact SQL rendering: ``sum``/``max``/``avg``/``all``/
``some`` (and ``min`` at a segment root) become ``GROUP BY`` + aggregate
expressions over a ``CASE``-guarded contribution — NULL padding from
outer-joins and failed predicates contribute ``NULL``, which every SQL
aggregate skips, reproducing the calculus' null-to-zero conversion — and
first-seen group order is preserved by ``ROW_NUMBER()`` over the chain's
``$pos`` ordering, grouped as ``MIN("$rn")``.  A lowered ``Nest`` can feed
further joins and nests as a derived table (record keys pass their payload
columns through under ``k<i>$`` prefixes), so stacked aggregations become
*one* SQL statement.  ``Nest`` with a collection monoid compiles to a
single level-ordered query merged back in one linear pass.  Anything
outside this fragment (``prod``, parameters, collection heads under
grouping) falls back to stitching, exactly as before.

**Stitching** (:class:`_HybridEvaluator`).  The flat result sets are
stitched back into nested values by the reference plan evaluator: the
segment rows are decoded into environments (``$oid`` → the rehydrated
object, so identity is preserved end to end) and every operator *above* a
segment — residual expressions, refused extents, non-lowerable monoids —
runs the reference Python semantics over them.  This is the shredding
paper's stitching phase with the repo's own nest operator as the stitcher,
so 3VL, identity, and monoid semantics match the in-memory engine *by
construction*.  Execution is governed inside SQLite itself: a progress
handler ticks the shared governor every few thousand VM opcodes, so
timeouts, budgets, and cancellation trip mid-``SELECT``.

**Out-of-core storage**.  ``ShreddedStore(db_path=...)`` shreds to a file
instead of ``:memory:`` (WAL journal, file-backed temp store, bounded page
cache), records a fingerprint manifest (layout version, schema version,
per-extent value digests) plus the JSON catalog, and on reopen reuses the
existing shred when the fingerprint still matches — extents larger than
memory execute out of core with the working set bounded by
``cache_size``.  Join columns discovered at lowering time get indexes on
demand, and ``ANALYZE`` keeps the SQLite planner's estimates honest.
"""

from __future__ import annotations

import itertools
import json
import math
import sqlite3
import threading
import time
import weakref
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.algebra.evaluator import PlanEvaluator
from repro.algebra.operators import (
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.evaluator import Evaluator as TermEvaluator
from repro.calculus.monoids import CollectionMonoid, monoid as lookup_monoid
from repro.calculus.terms import (
    BinOp,
    Const,
    If,
    IsNull,
    Not,
    Null,
    Proj,
    Term,
    Var,
)
from repro.data.database import Database
from repro.data.values import (
    NULL,
    BagValue,
    CollectionValue,
    ListValue,
    Record,
    SetValue,
    is_null,
)
from repro.errors import (
    BackendUnsupportedError,
    ExecutionError,
    GovernorError,
    UnknownExtentError,
)

__all__ = [
    "ShreddedStore",
    "shredded_store",
    "compile_segments",
    "execute_shredded",
    "explain_shredded",
    "shredded_sql",
]


def _q(name: str) -> str:
    """Quote a SQL identifier (``$oid``-style names and user attributes
    like ``oid`` both need it)."""
    return '"' + name.replace('"', '""') + '"'


#: Rows fetched (and governor-ticked) per batch while draining a cursor.
_FETCH_BATCH = 1024
#: SQLite VM opcodes between governor checkpoints mid-SELECT.
_PROGRESS_OPCODES = 2000
#: Default page-cache budget (KiB) for file-backed stores; the rest of the
#: working set stays on disk, which is the whole point of out-of-core mode.
_FILE_CACHE_KIB = 16384
#: Bumped whenever the flat encoding changes; part of the file manifest's
#: fingerprint so a stale layout re-shreds instead of misreading.
_LAYOUT_VERSION = 2
_MANIFEST_TABLE = "repro$manifest"


# ---------------------------------------------------------------------------
# Shredded storage
# ---------------------------------------------------------------------------


_SCALAR_TAGS = {bool: "bool", int: "int", float: "float", str: "str"}


def _scalar_tag(value: Any) -> str | None:
    for cls, tag in _SCALAR_TAGS.items():
        if isinstance(value, bool):
            return "bool"
        break
    return _SCALAR_TAGS.get(type(value))


def _merge_tag(a: str | None, b: str) -> str:
    if a is None or a == b:
        return b
    if {a, b} <= {"int", "float", "num"}:
        return "num"
    raise BackendUnsupportedError(
        f"mixed value types in one column ({a} vs {b}) cannot be shredded "
        "faithfully (SQLite orders across storage classes; the engine "
        "raises a type error)"
    )


@dataclass
class _Table:
    """One flat SQLite table: an extent's root or a lifted nested collection.

    ``columns`` maps scalar attribute paths (``salary``,
    ``manager$name``) to their value tags; ``records`` is the set of
    nested-record paths ("" is the element itself for record-shaped
    tables, each contributing a ``path$oid`` column); ``children`` maps
    nested-collection paths to their child tables.
    """

    name: str
    extent: str  # root extent this table shreds (child tables inherit it)
    element: str  # "record" | "scalar"
    kind: str  # set | bag | list
    child: bool  # has $parent?
    columns: dict[str, str] = field(default_factory=dict)
    records: set[str] = field(default_factory=set)
    children: dict[str, "_Table"] = field(default_factory=dict)

    def oid_column(self, path: str = "") -> str:
        return "$oid" if path == "" else path + "$oid"

    def value_column(self, path: str) -> str:
        return "$value" if path == "" else path

    def payload_columns(self) -> list[str]:
        """The non-structural columns, in deterministic order."""
        cols = [self.value_column(p) for p in sorted(self.columns)]
        cols += [self.oid_column(p) for p in sorted(self.records) if p]
        return sorted(cols)

    def all_columns(self) -> list[str]:
        structural = ["$oid"] + (["$parent"] if self.child else []) + ["$pos"]
        return structural + self.payload_columns()


def _encode(value: Any) -> Any:
    if is_null(value):
        return None
    if isinstance(value, bool):
        return int(value)
    return value


def _decode(value: Any, tag: str) -> Any:
    if value is None:
        return NULL
    if tag == "bool":
        return bool(value)
    return value


class ShreddedStore:
    """A database's extents shredded into flat in-memory SQLite tables.

    Also an ``ExtentProvider``: :meth:`extent` stitches the flat rows back
    into the original nested collection values (rehydration), registering
    every record by OID in :attr:`objects` so SQL segment rows can resolve
    ``$oid`` columns to the very objects the residual operators iterate.
    """

    def __init__(
        self,
        database: Database,
        db_path: str | None = None,
        cache_kib: int | None = None,
    ):
        if database.schema.supertypes:
            raise BackendUnsupportedError(
                "the SQLite shredding backend does not support inheritance "
                "hierarchies (extent inclusion would shred objects into "
                "multiple root tables)"
            )
        self._database = database
        self.db_path = db_path
        if cache_kib is None and db_path is not None:
            cache_kib = _FILE_CACHE_KIB
        self.cache_kib = cache_kib
        self.lock = threading.Lock()
        # Connection policy: an in-memory store IS one connection (a second
        # ``:memory:`` connection would see a different, empty database), so
        # it stays shared across threads with ``self.lock`` serializing
        # statements.  A file-backed store gives every thread its own
        # connection (see :meth:`connection`): concurrent sessions then
        # read in parallel under WAL, and — the bug this replaced — never
        # interleave cursors, statement caches, or progress handlers on a
        # connection another thread is mid-query on.
        self._shared_connection: sqlite3.Connection | None = None
        self._tlocal = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._closed = False
        first_connection = self._open_connection()
        if db_path is None:
            self._shared_connection = first_connection
        else:
            self._tlocal.connection = first_connection
        #: extent name -> root table (only extents that shredded cleanly).
        self.tables: dict[str, _Table] = {}
        #: extent name -> refusal reason (never silent: surfaced by extent()).
        self.refusals: dict[str, str] = {}
        #: oid -> rehydrated Record (filled lazily per extent).
        self.objects: dict[int, Record] = {}
        #: True when a file-backed store reused an existing shred via the
        #: manifest fingerprint instead of re-shredding.
        self.reused = False
        self._extent_cache: dict[str, CollectionValue] = {}
        self._next_surrogate = -1
        self._join_indexed: set[tuple[str, str]] = set()
        #: Monotonic nonce for governed statements (see _execute).  An
        #: itertools counter: ``next()`` is atomic under the GIL, where the
        #: old ``+= 1`` read-modify-write raced concurrent sessions into
        #: sharing a nonce (and thus a cached statement's VM-step phase,
        #: corrupting per-query governor accounting).
        self._governed_nonce = itertools.count(1)
        #: (plan id, pushdown) -> (plan, segments).  The strong plan
        #: reference keeps ``id()`` from being recycled while the entry
        #: lives; plan-cache hits then skip re-lowering entirely.
        self._segment_cache: dict[tuple[int, bool], tuple[Any, dict]] = {}
        self._segment_cache_lock = threading.Lock()
        if db_path is not None:
            fingerprint = self._fingerprint()
            if self._try_reuse(fingerprint):
                self.reused = True
            else:
                self._reset_file()
                self._shred_all()
                self._write_manifest(fingerprint)
        else:
            self._shred_all()
        self.connection.execute("ANALYZE")

    # -- connection / file management ---------------------------------------

    @property
    def connection(self) -> sqlite3.Connection:
        """The calling thread's connection.

        In-memory stores share one connection (callers serialize on
        :attr:`lock`); file-backed stores hand every thread its own,
        opened lazily against :attr:`db_path` with the same pragmas.
        """
        if self._closed:
            # Without this check a closed in-memory store would lazily
            # open a brand-new empty ':memory:' database here and answer
            # post-close queries with silently wrong (empty) results.
            raise sqlite3.ProgrammingError(
                "cannot use a closed ShreddedStore"
            )
        shared = self._shared_connection
        if shared is not None:
            return shared
        connection = getattr(self._tlocal, "connection", None)
        if connection is None:
            connection = self._open_connection()
            self._tlocal.connection = connection
        return connection

    def _open_connection(self) -> sqlite3.Connection:
        connection = sqlite3.connect(
            self.db_path or ":memory:", check_same_thread=False
        )
        # Autocommit; shredding wraps itself in an explicit transaction.
        connection.isolation_level = None
        self._configure_pragmas(connection)
        with self._connections_lock:
            self._connections.append(connection)
        return connection

    def close(self) -> None:
        """Close every connection this store has opened (all threads).
        The store is unusable afterwards: further statements raise
        :class:`sqlite3.ProgrammingError` instead of silently running
        against a fresh empty database."""
        self._closed = True
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - best-effort cleanup
                pass
        self._shared_connection = None
        self._tlocal = threading.local()

    def _configure_pragmas(self, connection: sqlite3.Connection) -> None:
        execute = connection.execute
        if self.db_path is not None:
            # Streaming-friendly file mode: WAL keeps readers unblocked,
            # NORMAL sync is durable enough for a rebuildable cache, and a
            # file-backed temp store lets sorts/group-bys spill to disk.
            execute("PRAGMA journal_mode=WAL")
            execute("PRAGMA synchronous=NORMAL")
            execute("PRAGMA temp_store=FILE")
            execute("PRAGMA busy_timeout=5000")
        if self.cache_kib is not None:
            execute(f"PRAGMA cache_size=-{int(self.cache_kib)}")

    def _shred_all(self) -> None:
        self.connection.execute("BEGIN IMMEDIATE")
        try:
            for name in self._database.extent_names():
                try:
                    self._shred_extent(name)
                except BackendUnsupportedError as exc:
                    self.refusals[name] = exc.message
            self.connection.execute("COMMIT")
        except BaseException:
            self.connection.execute("ROLLBACK")
            raise

    def _fingerprint(self) -> str:
        """A value-based digest of the database: layout + schema versions
        plus a per-extent CRC over canonical element reprs.  Deliberately
        *not* OID-based — engine OIDs are not stable across processes, but
        the stored values are what the shred encodes."""
        from repro.engine.exchange import _stable_repr

        parts = [
            f"format:{_LAYOUT_VERSION}",
            f"schema:{self._database.schema_version}",
        ]
        for name in sorted(self._database.extent_names()):
            value = self._database.extent(name)
            digest = 0
            count = 0
            for element in value.elements():
                digest = zlib.crc32(
                    _stable_repr(element).encode("utf-8"), digest
                )
                count += 1
            parts.append(f"{name}:{_collection_kind(value)}:{count}:{digest}")
        return ";".join(parts)

    def _manifest_value(self, key: str) -> str | None:
        try:
            row = self.connection.execute(
                f"SELECT value FROM {_q(_MANIFEST_TABLE)} WHERE key = ?",
                (key,),
            ).fetchone()
        except sqlite3.OperationalError:
            return None  # no manifest table: fresh file or foreign content
        return None if row is None else row[0]

    def _try_reuse(self, fingerprint: str) -> bool:
        if self._manifest_value("fingerprint") != fingerprint:
            return False
        catalog_json = self._manifest_value("catalog")
        refusals_json = self._manifest_value("refusals")
        if catalog_json is None or refusals_json is None:
            return False
        try:
            catalog = json.loads(catalog_json)
            refusals = json.loads(refusals_json)
            tables = {
                name: _table_from_json(spec) for name, spec in catalog.items()
            }
        except (ValueError, KeyError, TypeError):
            return False
        self.tables = tables
        self.refusals = {str(k): str(v) for k, v in refusals.items()}
        return True

    def _reset_file(self) -> None:
        names = [
            row[0]
            for row in self.connection.execute(
                "SELECT name FROM sqlite_master "
                "WHERE type = 'table' AND name NOT LIKE 'sqlite_%'"
            ).fetchall()
        ]
        for name in names:
            self.connection.execute(f"DROP TABLE IF EXISTS {_q(name)}")

    def _write_manifest(self, fingerprint: str) -> None:
        catalog = {
            name: _table_to_json(table) for name, table in self.tables.items()
        }
        self.connection.execute(
            f"CREATE TABLE IF NOT EXISTS {_q(_MANIFEST_TABLE)} "
            "(key TEXT PRIMARY KEY, value TEXT)"
        )
        for key, value in (
            ("fingerprint", fingerprint),
            ("catalog", json.dumps(catalog, sort_keys=True)),
            ("refusals", json.dumps(self.refusals, sort_keys=True)),
        ):
            self.connection.execute(
                f"INSERT OR REPLACE INTO {_q(_MANIFEST_TABLE)} "
                "(key, value) VALUES (?, ?)",
                (key, value),
            )

    @contextmanager
    def statement_guard(self) -> Iterator[sqlite3.Connection]:
        """Exclusive use of the calling thread's connection for one
        statement's full lifetime (execute through final fetch).

        In-memory stores serialize on :attr:`lock` — the connection is
        shared, and interleaving another thread's cursor (or progress
        handler) mid-fetch is exactly the corruption this guards against.
        File-backed stores yield the thread's own connection with no lock:
        WAL readers proceed in parallel.
        """
        if self._shared_connection is not None:
            with self.lock:
                yield self._shared_connection
        else:
            yield self.connection

    def cached_segments(self, plan: Any, pushdown: bool) -> dict:
        """The compiled segments for *plan*, lowered once per store.

        Plan-cache hits re-execute the same ``CompiledQuery`` (and thus the
        same plan object) many times; re-running the lowering on each
        execution would dominate small queries."""
        key = (id(plan), pushdown)
        with self._segment_cache_lock:
            hit = self._segment_cache.get(key)
            if hit is not None and hit[0] is plan:
                return hit[1]
        # Lowering is pure w.r.t. the cache (index creation serializes on
        # self.lock); concurrent first executions may both lower, one wins.
        segments = compile_segments(plan, self, pushdown=pushdown)
        with self._segment_cache_lock:
            if len(self._segment_cache) >= 128:
                self._segment_cache.clear()
            self._segment_cache[key] = (plan, segments)
        return segments

    def prepare_indexes(self, requests: set[tuple[str, str]]) -> list[str]:
        """Create indexes for lowering-time equi-join columns (idempotent);
        re-ANALYZE when anything new appears.  Returns new index names."""
        created: list[str] = []
        with self.lock:
            for table_name, column in sorted(requests):
                if (table_name, column) in self._join_indexed:
                    continue
                if table_name not in {
                    t.name for t in self._all_tables()
                }:  # pragma: no cover - requests come from the catalog
                    continue
                index = f"ix$join${table_name}${column}"
                self.connection.execute(
                    f"CREATE INDEX IF NOT EXISTS {_q(index)} "
                    f"ON {_q(table_name)} ({_q(column)})"
                )
                self._join_indexed.add((table_name, column))
                created.append(index)
            if created:
                self.connection.execute("ANALYZE")
        return created

    def _all_tables(self) -> Iterator[_Table]:
        def walk(table: _Table) -> Iterator[_Table]:
            yield table
            for child in table.children.values():
                yield from walk(child)

        for table in self.tables.values():
            yield from walk(table)

    # -- shredding ----------------------------------------------------------

    def _surrogate(self) -> int:
        oid = self._next_surrogate
        self._next_surrogate -= 1
        return oid

    def _shred_extent(self, name: str) -> None:
        value = self._database.extent(name)
        kind = _collection_kind(value)
        table = self._describe(name, name, kind, list(value.elements()), False)
        self._create(table)
        self._insert(table, list(value.elements()), None)
        self.tables[name] = table

    def _describe(
        self,
        table_name: str,
        extent: str,
        kind: str,
        elements: list[Any],
        child: bool,
    ) -> _Table:
        table = _Table(table_name, extent, "record", kind, child)
        present = [e for e in elements if not is_null(e)]
        records = [e for e in present if isinstance(e, Record)]
        if records:
            if len(records) != len(elements):
                raise BackendUnsupportedError(
                    f"{table_name}: record-shaped collection mixes records "
                    "with other elements"
                )
            table.records.add("")
            self._describe_fields(table, "", records)
            return table
        scalars = [e for e in present if _scalar_tag(e) is not None]
        if len(scalars) != len(present):
            raise BackendUnsupportedError(
                f"{table_name}: elements are neither records nor scalars"
            )
        tag: str | None = None
        for e in scalars:
            tag = _merge_tag(tag, _scalar_tag(e))
        table.element = "scalar"
        table.columns[""] = tag or "any"
        return table

    def _describe_fields(
        self, table: _Table, prefix: str, records: list[Record]
    ) -> None:
        attrs = records[0].attributes()
        if any(r.attributes() != attrs for r in records):
            raise BackendUnsupportedError(
                f"{table.name}: heterogeneous record shapes at "
                f"{prefix or 'the element'!r}"
            )
        for attr in attrs:
            path = f"{prefix}${attr}" if prefix else attr
            values = [r[attr] for r in records]
            present = [v for v in values if not is_null(v)]
            if not present:
                table.columns[path] = "any"
                continue
            if all(_scalar_tag(v) is not None for v in present):
                tag: str | None = None
                for v in present:
                    tag = _merge_tag(tag, _scalar_tag(v))
                table.columns[path] = tag or "any"
            elif all(isinstance(v, Record) for v in present):
                table.records.add(path)
                self._describe_fields(table, path, present)
            elif all(isinstance(v, CollectionValue) for v in present):
                if len(present) != len(values):
                    raise BackendUnsupportedError(
                        f"{table.name}: NULL-valued collection attribute "
                        f"{path!r} (a missing child table cannot distinguish "
                        "NULL from empty)"
                    )
                kinds = {_collection_kind(v) for v in present}
                if len(kinds) != 1:
                    raise BackendUnsupportedError(
                        f"{table.name}: mixed collection kinds at {path!r}"
                    )
                nested = [e for v in present for e in v.elements()]
                table.children[path] = self._describe(
                    f"{table.name}${path}", table.extent, kinds.pop(), nested,
                    True,
                )
            else:
                raise BackendUnsupportedError(
                    f"{table.name}: attribute {path!r} mixes value categories"
                )

    def _create(self, table: _Table) -> None:
        cols = ", ".join(_q(c) for c in table.all_columns())
        self.connection.execute(f"CREATE TABLE {_q(table.name)} ({cols})")
        if table.child:
            # Composite: probes join on $parent and scan children in $pos
            # order, so one index covers both the join and the sort.
            self.connection.execute(
                f"CREATE INDEX {_q('ix$' + table.name)} "
                f"ON {_q(table.name)} ({_q('$parent')}, {_q('$pos')})"
            )
        for child in table.children.values():
            self._create(child)

    def _insert(
        self, table: _Table, elements: list[Any], parent: int | None
    ) -> None:
        columns = table.all_columns()
        sql = (
            f"INSERT INTO {_q(table.name)} "
            f"({', '.join(_q(c) for c in columns)}) "
            f"VALUES ({', '.join('?' for _ in columns)})"
        )
        for pos, element in enumerate(elements):
            row = {c: None for c in columns}
            row["$pos"] = pos
            if table.child:
                row["$parent"] = parent
            if table.element == "record":
                oid = element.oid if element.oid is not None else self._surrogate()
                row["$oid"] = oid
                self._flatten(table, "", element, row)
            else:
                row["$oid"] = self._surrogate()
                row["$value"] = _encode(element)
            self.connection.execute(sql, [row[c] for c in columns])
            for path, child in table.children.items():
                value = _walk_path(element, path)
                if value is None or is_null(value):
                    continue
                self._insert(child, list(value.elements()), row["$oid"])

    def _flatten(
        self, table: _Table, prefix: str, record: Record, row: dict
    ) -> None:
        for attr in record.attributes():
            path = f"{prefix}${attr}" if prefix else attr
            value = record[attr]
            if path in table.columns:
                row[table.value_column(path)] = _encode(value)
            elif path in table.records:
                if is_null(value):
                    continue  # the path$oid column stays NULL
                oid = value.oid if value.oid is not None else self._surrogate()
                row[table.oid_column(path)] = oid
                self._flatten(table, path, value, row)
            # collection paths are handled by the child-table inserts

    # -- rehydration (the ExtentProvider protocol) --------------------------

    def extent(self, name: str) -> CollectionValue:
        cached = self._extent_cache.get(name)
        if cached is not None:
            return cached
        if name in self.refusals:
            raise BackendUnsupportedError(
                f"extent {name!r} was not shredded: {self.refusals[name]}"
            )
        table = self.tables.get(name)
        if table is None:
            raise UnknownExtentError(
                f"unknown extent {name!r}; known extents: "
                f"{sorted(self.tables)}"
            )
        elements = self._load(table).get(None, [])
        value = _make_collection(table.kind, elements)
        self._extent_cache[name] = value
        return value

    def ensure_loaded(self, extents: Iterator[str] | tuple[str, ...]) -> None:
        """Rehydrate the given extents so ``objects`` can resolve their OIDs."""
        for name in extents:
            self.extent(name)

    def _load(self, table: _Table) -> dict[int | None, list[Any]]:
        """All of *table*'s elements, stitched, grouped by ``$parent``."""
        loaded_children = {
            path: self._load(child) for path, child in table.children.items()
        }
        columns = table.all_columns()
        order = '"$parent", "$pos"' if table.child else '"$pos"'
        sql = (
            f"SELECT {', '.join(_q(c) for c in columns)} "
            f"FROM {_q(table.name)} ORDER BY {order}"
        )
        grouped: dict[int | None, list[Any]] = {}
        with self.statement_guard() as connection:
            rows = connection.execute(sql).fetchall()
        for values in rows:
            row = dict(zip(columns, values))
            parent = row.get("$parent")
            if table.element == "record":
                element = self._stitch_record(table, "", row, loaded_children)
            else:
                element = _decode(row["$value"], table.columns[""])
            grouped.setdefault(parent, []).append(element)
        return grouped

    def _stitch_record(
        self,
        table: _Table,
        prefix: str,
        row: dict,
        loaded_children: dict[str, dict[int | None, list[Any]]],
    ) -> Any:
        oid = row[table.oid_column(prefix)]
        if oid is None:
            return NULL
        fields: dict[str, Any] = {}
        for path, tag in table.columns.items():
            attr = _direct_attr(prefix, path)
            if attr is not None:
                fields[attr] = _decode(row[table.value_column(path)], tag)
        for path in table.records:
            attr = _direct_attr(prefix, path)
            if attr is not None:
                fields[attr] = self._stitch_record(
                    table, path, row, loaded_children
                )
        row_oid = row["$oid"]
        for path, child in table.children.items():
            attr = _direct_attr(prefix, path)
            if attr is not None:
                elements = loaded_children[path].get(row_oid, [])
                fields[attr] = _make_collection(child.kind, elements)
        record = Record(fields)
        if oid >= 0:
            record = record.with_oid(oid)
            self.objects[oid] = record
        return record


def _direct_attr(prefix: str, path: str) -> str | None:
    """The attribute name when *path* is a direct field of *prefix*."""
    if prefix:
        if not path.startswith(prefix + "$"):
            return None
        rest = path[len(prefix) + 1 :]
    else:
        rest = path
    return rest if rest and "$" not in rest else None


def _collection_kind(value: CollectionValue) -> str:
    if isinstance(value, SetValue):
        return "set"
    if isinstance(value, BagValue):
        return "bag"
    if isinstance(value, ListValue):
        return "list"
    raise BackendUnsupportedError(
        f"unknown collection kind {type(value).__name__}"
    )


def _make_collection(kind: str, elements: list[Any]) -> CollectionValue:
    if kind == "set":
        return SetValue(elements)
    if kind == "bag":
        return BagValue(elements)
    return ListValue(elements)


def _walk_path(element: Any, path: str) -> Any | None:
    """Navigate ``a$b$c`` through nested records; None when unreachable."""
    value = element
    for attr in path.split("$"):
        if is_null(value) or not isinstance(value, Record):
            return None
        value = value[attr]
    return value


def _table_to_json(table: _Table) -> dict[str, Any]:
    """The catalog entry persisted in a file-backed store's manifest."""
    return {
        "name": table.name,
        "extent": table.extent,
        "element": table.element,
        "kind": table.kind,
        "child": table.child,
        "columns": dict(table.columns),
        "records": sorted(table.records),
        "children": {
            path: _table_to_json(child)
            for path, child in sorted(table.children.items())
        },
    }


def _table_from_json(spec: Mapping[str, Any]) -> _Table:
    return _Table(
        name=spec["name"],
        extent=spec["extent"],
        element=spec["element"],
        kind=spec["kind"],
        child=bool(spec["child"]),
        columns=dict(spec["columns"]),
        records=set(spec["records"]),
        children={
            path: _table_from_json(child)
            for path, child in spec["children"].items()
        },
    )


#: One shredded store per database, invalidated on schema changes.  Weak so
#: a dropped database releases its SQLite image.
_STORES: (
    "weakref.WeakKeyDictionary[Database, tuple[int, str | None, ShreddedStore]]"
) = weakref.WeakKeyDictionary()
_STORES_LOCK = threading.Lock()
_STORES_BUILD_LOCK = threading.Lock()


def shredded_store(
    database: Database,
    db_path: str | None = None,
    cache_kib: int | None = None,
) -> ShreddedStore:
    """The (cached) shredded image of *database*.

    Rebuilt whenever ``schema_version`` changes (mirroring the plan cache's
    staleness rule) or when ``db_path`` switches — an in-memory store and a
    file-backed one are different images.  A file-backed store that finds a
    matching manifest fingerprint reuses the on-disk shred.
    """

    def lookup() -> ShreddedStore | None:
        entry = _STORES.get(database)
        if (
            entry is not None
            and entry[0] == database.schema_version
            and entry[1] == db_path
        ):
            return entry[2]
        return None

    with _STORES_LOCK:
        store = lookup()
        if store is not None:
            return store
    # Serialize builds: two threads that both miss must not each shred the
    # same database (and, file-backed, write the same file) concurrently.
    # Creation is rare — once per schema version — so one coarse lock is
    # fine; re-check under it so the loser adopts the winner's store.
    with _STORES_BUILD_LOCK:
        with _STORES_LOCK:
            store = lookup()
            if store is not None:
                return store
        store = ShreddedStore(database, db_path=db_path, cache_kib=cache_kib)
        with _STORES_LOCK:
            _STORES[database] = (database.schema_version, db_path, store)
    return store


# ---------------------------------------------------------------------------
# SQL lowering: expression translation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SqlExpr:
    """A translated scalar expression: SQL text plus a value tag.

    ``tag`` is a value-type tag (``int``/``float``/``num``/``str``/
    ``bool``/``any``/``null``) or ``object`` — in which case ``sql`` is the
    ``$oid`` column, the identity the engine's ``=`` compares.
    """

    sql: str
    tag: str


@dataclass
class _VarBind:
    """How one range variable is realized inside a SQL segment.

    ``prefix`` supports lowered nests used as derived tables: a record
    group key passes its payload columns through under a ``k<i>$`` prefix,
    so the rebound variable resolves ``alias."k<i>$<column>"`` instead of
    the physical column names.
    """

    kind: str  # "record" | "scalar" | "expr"
    alias: str = ""
    table: _Table | None = None
    expr: _SqlExpr | None = None
    prefix: str = ""


def _bcol(bind: _VarBind, column: str) -> str:
    """A bound table column as qualified SQL (prefix-aware)."""
    return f"{bind.alias}.{_q(bind.prefix + column)}"


_NUMERIC = frozenset(("int", "float", "num", "bool"))


def _comparable(a: str, b: str) -> bool:
    if "any" in (a, b) or "null" in (a, b):
        return True  # a NULL operand yields NULL on both backends
    return (a in _NUMERIC and b in _NUMERIC) or (a == "str" and b == "str")


def _literal(value: Any) -> _SqlExpr | None:
    if isinstance(value, bool):
        return _SqlExpr("1" if value else "0", "bool")
    if isinstance(value, int):
        return _SqlExpr(str(value), "int")
    if isinstance(value, float):
        if not math.isfinite(value):
            return None  # SQLite has no literal NaN/inf
        return _SqlExpr(repr(value), "float")
    if isinstance(value, str):
        if "\x00" in value:
            return None
        return _SqlExpr("'" + value.replace("'", "''") + "'", "str")
    return None


def _sql_expr(term: Term, binds: Mapping[str, _VarBind]) -> _SqlExpr | None:
    """Translate a calculus term to SQL, or None when no faithful
    translation exists (the caller falls back to residual Python).

    Deliberately untranslated: ``/`` and ``%`` (SQLite truncates integer
    division and yields NULL on zero where the engine raises a structured
    error), parameters (bound per execution, after segment compilation),
    string concatenation, and anything collection- or record-constructing.
    """
    if isinstance(term, Const):
        return _literal(term.value)
    if isinstance(term, Null):
        return _SqlExpr("NULL", "null")
    if isinstance(term, (Var, Proj)):
        return _resolve_path(term, binds)
    if isinstance(term, IsNull):
        inner = _sql_expr(term.expr, binds)
        if inner is None:
            return None
        return _SqlExpr(f"({inner.sql} IS NULL)", "bool")
    if isinstance(term, Not):
        inner = _sql_expr(term.expr, binds)
        if inner is None or inner.tag not in ("bool", "any", "null"):
            return None
        return _SqlExpr(f"(NOT {inner.sql})", "bool")
    if isinstance(term, If):
        cond = _sql_expr(term.cond, binds)
        then = _sql_expr(term.then, binds)
        orelse = _sql_expr(term.orelse, binds)
        if cond is None or then is None or orelse is None:
            return None
        if "object" in (cond.tag, then.tag, orelse.tag):
            return None
        # SQL CASE takes ELSE on a NULL condition, matching the calculus.
        return _SqlExpr(
            f"(CASE WHEN {cond.sql} THEN {then.sql} ELSE {orelse.sql} END)",
            _result_tag(then.tag, orelse.tag),
        )
    if isinstance(term, BinOp):
        return _sql_binop(term, binds)
    return None


def _result_tag(a: str, b: str) -> str:
    if a == b:
        return a
    if a in ("null", "any"):
        return b
    if b in ("null", "any"):
        return a
    if a in _NUMERIC and b in _NUMERIC:
        return "float" if "float" in (a, b) else "num"
    return "any"


def _sql_binop(term: BinOp, binds: Mapping[str, _VarBind]) -> _SqlExpr | None:
    left = _sql_expr(term.left, binds)
    right = _sql_expr(term.right, binds)
    if left is None or right is None:
        return None
    op = term.op
    if op in ("and", "or"):
        if left.tag not in ("bool", "any", "null"):
            return None
        if right.tag not in ("bool", "any", "null"):
            return None
        # The reference evaluator is *left-biased*, not Kleene: a NULL left
        # operand yields NULL even when the right operand would decide
        # (``NULL and False`` is NULL; SQLite's Kleene AND gives False, and
        # likewise ``NULL or True``).  The right-operand cases agree —
        # ``False and NULL`` short-circuits to False on both — so guarding
        # the left operand with a CASE restores exact parity.
        return _SqlExpr(
            f"(CASE WHEN ({left.sql}) IS NULL THEN NULL "
            f"ELSE {left.sql} {op.upper()} {right.sql} END)",
            "bool",
        )
    if op in ("==", "!="):
        sql_op = "=" if op == "==" else "<>"
        if left.tag == "object" or right.tag == "object":
            # Object equality is OID equality (identity semantics).  A
            # mixed object/scalar comparison is rejected by the typechecker;
            # don't guess at it here.
            if {left.tag, right.tag} <= {"object", "null"}:
                return _SqlExpr(f"({left.sql} {sql_op} {right.sql})", "bool")
            return None
        if not _comparable(left.tag, right.tag):
            return None
        return _SqlExpr(f"({left.sql} {sql_op} {right.sql})", "bool")
    if op in ("<", "<=", ">", ">="):
        if "object" in (left.tag, right.tag):
            return None
        if not _comparable(left.tag, right.tag):
            return None
        return _SqlExpr(f"({left.sql} {op} {right.sql})", "bool")
    if op in ("+", "-", "*"):
        if left.tag not in _NUMERIC and left.tag != "null":
            return None
        if right.tag not in _NUMERIC and right.tag != "null":
            return None
        return _SqlExpr(
            f"({left.sql} {op} {right.sql})", _result_tag(left.tag, right.tag)
        )
    return None  # "/" and "%" stay residual by design


def _resolve_path(term: Term, binds: Mapping[str, _VarBind]) -> _SqlExpr | None:
    """A variable or projection chain as a SQL column reference."""
    attrs: list[str] = []
    while isinstance(term, Proj):
        attrs.append(term.attr)
        term = term.expr
    if not isinstance(term, Var):
        return None
    bind = binds.get(term.name)
    if bind is None:
        return None
    if bind.kind == "expr":
        return bind.expr if not attrs else None
    table = bind.table
    assert table is not None
    if bind.kind == "scalar":
        if attrs:
            return None  # projecting a scalar is an engine-side error
        return _SqlExpr(_bcol(bind, table.value_column("")), table.columns[""])
    if not attrs:
        return _SqlExpr(_bcol(bind, table.oid_column()), "object")
    path = "$".join(reversed(attrs))
    if path in table.columns:
        return _SqlExpr(_bcol(bind, table.value_column(path)), table.columns[path])
    if path in table.records:
        return _SqlExpr(_bcol(bind, table.oid_column(path)), "object")
    return None  # a collection path or an attribute the catalog lacks


# ---------------------------------------------------------------------------
# SQL lowering: aggregate monoids
# ---------------------------------------------------------------------------


#: Monoids whose SQL value encoding is exact *mid-query*, so a lowered nest
#: can feed further SQL.  ``min`` is excluded: its zero is ``inf``, which
#: SQL renders as NULL — decodable at a segment root, not chainable.
#: ``prod`` has no SQL aggregate at all and always stays residual.
_CHAINABLE = frozenset(("sum", "max", "avg", "all", "some"))
_ROOT_AGGREGATES = _CHAINABLE | {"min"}

_BOOLISH = frozenset(("bool", "any", "null"))
_NUMERIC_OK = _NUMERIC | {"any", "null"}


def _filter_sql(term: Term, binds: Mapping[str, _VarBind]) -> _SqlExpr | None:
    """*term* as a SQL condition used only for its truth (WHERE/ON/guards).

    A filtering position keeps a row iff the predicate is exactly True, so
    NULL and False are interchangeable there — and the reference
    evaluator's left-biased ``and`` agrees with SQLite's Kleene AND on
    True-ness (both are True iff both operands are).  Conjunctions
    therefore lower to plain AND with no CASE guard, which keeps the
    condition transparent to SQLite's planner: equality conjuncts in a
    JOIN's ON clause can drive index probes.  ``or`` stays value-exact
    (guarded): left-biased ``NULL or True`` is NULL — drops the row —
    where Kleene OR would keep it.
    """
    if isinstance(term, BinOp) and term.op == "and":
        left = _filter_sql(term.left, binds)
        right = _filter_sql(term.right, binds)
        if left is None or right is None:
            return None
        if left.tag not in _BOOLISH or right.tag not in _BOOLISH:
            return None
        return _SqlExpr(f"({left.sql} AND {right.sql})", "bool")
    return _sql_expr(term, binds)


def _aggregate_sql(
    name: str, value_sql: str, tag: str
) -> tuple[str, str, str] | None:
    """The SQL aggregate for monoid *name* over *value_sql* contributions.

    Returns ``(sql, out_tag, decode_kind)`` or None when the monoid/input
    combination has no faithful SQL form.  Contributions are NULL for
    skipped rows (NULL padding, failed predicates, NULL heads), which SQL
    aggregates ignore — matching the calculus, where NULL contributes
    nothing to a primitive accumulator.  The COALESCE/CASE wrappers restore
    each monoid's zero on an empty group.
    """
    if name == "sum":
        if tag not in _NUMERIC_OK:
            return None
        out = "int" if tag in ("int", "bool") else (
            "float" if tag == "float" else "num"
        )
        return (f"COALESCE(SUM({value_sql}), 0)", out, "scalar")
    if name == "max":
        # The paper's (max, 0) monoid floors at zero; scalar two-arg max.
        if tag not in _NUMERIC_OK:
            return None
        out = "int" if tag in ("int", "bool") else "num"
        return (f"max(0, COALESCE(MAX({value_sql}), 0))", out, "scalar")
    if name == "min":
        # zero is +inf: an empty group decodes NULL -> float("inf") at the
        # segment root ("min" decode kind).
        if tag not in _NUMERIC_OK:
            return None
        return (f"MIN({value_sql})", "num", "min")
    if name == "avg":
        # SQL AVG is NULL on empty input, exactly the monoid's finalize.
        if tag not in _NUMERIC_OK:
            return None
        return (f"AVG({value_sql})", "float", "scalar")
    if name == "all":
        if tag not in _BOOLISH:
            return None
        return (f"COALESCE(MIN({value_sql}), 1)", "bool", "scalar")
    if name == "some":
        if tag not in _BOOLISH:
            return None
        return (f"COALESCE(MAX({value_sql}), 0)", "bool", "scalar")
    return None


# ---------------------------------------------------------------------------
# SQL lowering: operator chains
# ---------------------------------------------------------------------------


@dataclass
class _Chain:
    """A partially built flat SELECT: FROM tree, filters, and bindings.

    ``order_cols`` are the SQL expressions that reproduce the in-memory
    engine's nested-loop enumeration order (one ``$pos`` per constituent
    source, in enumeration order); a lowered nest replaces its inputs'
    ``$pos`` columns with its groups' first-seen ``MIN("$rn")``.
    """

    from_sql: str
    where: list[str]
    binds: dict[str, _VarBind]
    order_cols: list[str]
    extents: list[str]
    uses_table: bool = True
    #: True when the chain contains a lowered (GROUP BY) nest.
    grouped: bool = False


@dataclass
class _Segment:
    """One compiled flat query covering a subtree of the logical plan.

    ``mode`` selects the stitching strategy: ``stream`` yields one
    environment per row (chains and GROUP BY nests), ``merge`` linearly
    merges level-ordered rows into collection-valued groups, ``reduce``
    decodes a single aggregate row, and ``fold`` folds decoded rows into a
    collection monoid.
    """

    sql: str
    #: Per-output-column decode instructions: (var, kind, tag).
    decoders: tuple[tuple[str, str, str], ...]
    #: Root extents whose objects the decoded rows reference.
    extents: tuple[str, ...]
    mode: str = "stream"
    #: EXPLAIN marker: sql | sql:group | sql:agg | sql:merge.
    label: str = "sql"
    #: merge mode: how many leading columns form the group key.
    key_count: int = 0
    #: merge/fold modes: the monoid folding decoded elements.
    monoid_name: str = ""
    #: merge mode: the variable bound to each group's collection.
    out_var: str = ""


class _SegmentBuilder:
    """Compiles maximal operator subtrees into flat SELECT statements.

    With *pushdown* enabled (the default), ``Reduce`` and ``Nest`` roots
    with SQL-expressible monoids lower into aggregate queries, and lowered
    nests additionally participate *inside* chains as derived tables.  With
    pushdown off the builder reproduces the stitching-only backend — the
    differential oracle pins both behaviors.
    """

    def __init__(self, store: ShreddedStore, pushdown: bool = True):
        self._store = store
        self._pushdown = pushdown
        #: (table, column) equi-join pairs worth indexing, discovered at
        #: lowering time across every *successful* build.
        self.index_requests: set[tuple[str, str]] = set()
        self._pending: set[tuple[str, str]] = set()

    def build(self, plan: Operator) -> _Segment | None:
        self._pending = set()
        segment = self._build(plan)
        if segment is not None:
            self.index_requests |= self._pending
        return segment

    def _build(self, plan: Operator) -> _Segment | None:
        counter = [0]
        if isinstance(plan, Reduce):
            if not self._pushdown:
                return None
            return self._build_reduce(plan, counter)
        if isinstance(plan, Nest):
            if not self._pushdown:
                return None
            return self._build_nest(plan, counter)
        chain = self._chain(plan, counter)
        if chain is None or not chain.uses_table:
            return None
        return self._finalize(plan, chain)

    # -- chain construction --------------------------------------------------

    def _alias(self, counter: list[int]) -> str:
        alias = f"t{counter[0]}"
        counter[0] += 1
        return alias

    def _chain(self, plan: Operator, counter: list[int]) -> _Chain | None:
        if isinstance(plan, Scan):
            return self._chain_scan(plan, counter)
        if isinstance(plan, Select):
            return self._chain_select(plan, counter)
        if isinstance(plan, Map):
            return self._chain_map(plan, counter)
        if isinstance(plan, (Join, OuterJoin)):
            return self._chain_join(plan, counter)
        if isinstance(plan, (Unnest, OuterUnnest)):
            return self._chain_unnest(plan, counter)
        if isinstance(plan, Seed):
            return self._chain_seed(plan, counter)
        if isinstance(plan, Nest):
            return self._chain_nest(plan, counter)
        return None

    def _chain_scan(self, plan: Scan, counter: list[int]) -> _Chain | None:
        table = self._store.tables.get(plan.extent)
        if table is None:
            return None
        alias = self._alias(counter)
        kind = "record" if table.element == "record" else "scalar"
        return _Chain(
            from_sql=f"{_q(table.name)} {alias}",
            where=[],
            binds={plan.var: _VarBind(kind, alias, table)},
            order_cols=[f"{alias}.{_q('$pos')}"],
            extents=[table.extent],
        )

    def _chain_seed(self, plan: Seed, counter: list[int]) -> _Chain | None:
        if not self._pushdown:
            return None
        alias = self._alias(counter)
        return _Chain(
            from_sql=f"(SELECT 0 AS {_q('$pos')}) {alias}",
            where=[],
            binds={},
            order_cols=[f"{alias}.{_q('$pos')}"],
            extents=[],
            uses_table=False,
        )

    def _chain_select(self, plan: Select, counter: list[int]) -> _Chain | None:
        chain = self._chain(plan.child, counter)
        if chain is None:
            return None
        pred = _filter_sql(plan.pred, chain.binds)
        if pred is None:
            return None
        chain.where.append(pred.sql)
        return chain

    def _chain_map(self, plan: Map, counter: list[int]) -> _Chain | None:
        chain = self._chain(plan.child, counter)
        if chain is None:
            return None
        for name, expr in plan.bindings:
            compiled = _sql_expr(expr, chain.binds)
            if compiled is None:
                return None
            chain.binds[name] = _VarBind("expr", expr=compiled)
        return chain

    def _chain_join(
        self, plan: Join | OuterJoin, counter: list[int]
    ) -> _Chain | None:
        left = self._chain(plan.left, counter)
        if left is None:
            return None
        right = self._chain(plan.right, counter)
        if right is None:
            return None
        binds = {**left.binds, **right.binds}
        on: list[str] = []
        if plan.pred != Const(True):
            pred = _filter_sql(plan.pred, binds)
            if pred is None:
                return None
            on.append(pred.sql)
            self._equi_columns(plan.pred, binds)
        if isinstance(plan, OuterJoin):
            # The right side's filters must join the ON clause: a LEFT JOIN
            # pads left rows whose partners fail them, exactly as O5 pads
            # when the predicate fails.
            on.extend(right.where)
            where = left.where
            keyword = "LEFT JOIN"
        else:
            where = left.where + right.where
            keyword = "JOIN"
        condition = " AND ".join(on) if on else "1"
        return _Chain(
            from_sql=(
                f"({left.from_sql} {keyword} {right.from_sql} ON {condition})"
            ),
            where=where,
            binds=binds,
            order_cols=left.order_cols + right.order_cols,
            extents=left.extents + right.extents,
            uses_table=left.uses_table or right.uses_table,
            grouped=left.grouped or right.grouped,
        )

    def _equi_columns(
        self, pred: Term, binds: Mapping[str, _VarBind]
    ) -> None:
        """Collect physical (table, column) pairs under equality in an
        AND-chain — the join keys worth indexing."""
        if not isinstance(pred, BinOp):
            return
        if pred.op == "and":
            self._equi_columns(pred.left, binds)
            self._equi_columns(pred.right, binds)
            return
        if pred.op != "==":
            return
        for side in (pred.left, pred.right):
            found = _indexable_column(side, binds)
            if found is not None:
                self._pending.add(found)

    def _chain_unnest(
        self, plan: Unnest | OuterUnnest, counter: list[int]
    ) -> _Chain | None:
        chain = self._chain(plan.child, counter)
        if chain is None:
            return None
        resolved = self._collection(plan.path, chain.binds)
        if resolved is None:
            return None
        parent_bind, child = resolved
        parent_table = parent_bind.table
        assert parent_table is not None
        alias = self._alias(counter)
        kind = "record" if child.element == "record" else "scalar"
        binds = dict(chain.binds)
        binds[plan.var] = _VarBind(kind, alias, child)
        on = [
            f"{alias}.{_q('$parent')} = "
            f"{_bcol(parent_bind, parent_table.oid_column())}"
        ]
        if not parent_bind.prefix:
            # The probe side of the $parent join: worth an index on the
            # parent's $oid when SQLite drives from the child table.
            self._pending.add((parent_table.name, parent_table.oid_column()))
        if plan.pred != Const(True):
            pred = _filter_sql(plan.pred, binds)
            if pred is None:
                return None
            # O6 pads when no element *satisfies the predicate*, which is
            # precisely LEFT JOIN with the predicate in the ON clause.
            on.append(pred.sql)
        keyword = "LEFT JOIN" if isinstance(plan, OuterUnnest) else "JOIN"
        return _Chain(
            from_sql=(
                f"({chain.from_sql} {keyword} {_q(child.name)} {alias} "
                f"ON {' AND '.join(on)})"
            ),
            where=chain.where,
            binds=binds,
            order_cols=chain.order_cols + [f"{alias}.{_q('$pos')}"],
            extents=chain.extents + [child.extent],
            uses_table=True,
            grouped=chain.grouped,
        )

    def _collection(
        self, path: Term, binds: Mapping[str, _VarBind]
    ) -> tuple[_VarBind, _Table] | None:
        """Resolve an unnest path to (parent bind, child table)."""
        attrs: list[str] = []
        while isinstance(path, Proj):
            attrs.append(path.attr)
            path = path.expr
        if not isinstance(path, Var) or not attrs:
            return None
        bind = binds.get(path.name)
        if bind is None or bind.kind != "record":
            return None
        assert bind.table is not None
        child = bind.table.children.get("$".join(reversed(attrs)))
        if child is None:
            return None
        return bind, child

    # -- nest/reduce lowering ------------------------------------------------

    def _nest_condition(
        self, plan: Nest, binds: Mapping[str, _VarBind]
    ) -> tuple[bool, str | None]:
        """The contribution guard: null-var indicators AND the predicate.

        Returns ``(ok, sql)`` — sql None means unconditional.  The
        indicators are 0/1 (never NULL), so Kleene AND with a possibly-NULL
        predicate matches the calculus: any NULL/false conjunct yields a
        NULL contribution, which the aggregates skip (``_holds`` treats
        NULL as false; null vars are checked first).
        """
        conds: list[str] = []
        for null_var in plan.null_vars:
            indicator = _sql_expr(Var(null_var), binds)
            if indicator is None:
                return False, None
            conds.append(f"({indicator.sql} IS NOT NULL)")
        if plan.pred != Const(True):
            pred = _filter_sql(plan.pred, binds)
            if pred is None or pred.tag not in _BOOLISH:
                return False, None
            conds.append(pred.sql)
        if not conds:
            return True, None
        return True, " AND ".join(conds)

    def _key_select(
        self, bind: _VarBind, name: str
    ) -> tuple[str, tuple[str, str]]:
        """One group key as ``(select sql, (decode kind, tag))``."""
        if bind.kind == "record":
            assert bind.table is not None
            return _bcol(bind, bind.table.oid_column()), ("object", "")
        if bind.kind == "scalar":
            assert bind.table is not None
            return (
                _bcol(bind, bind.table.value_column("")),
                ("scalar", bind.table.columns[""]),
            )
        assert bind.expr is not None
        if bind.expr.tag == "object":
            return bind.expr.sql, ("object", "")
        return bind.expr.sql, ("scalar", bind.expr.tag)

    def _pinned_rank(self, plan: Nest, chain: _Chain) -> str | None:
        """The enumeration-order column pinned by the group key, if any.

        When every group-by variable is a record binding and together they
        pin the chain's *leading* order column, that column is constant
        within each group (the key fixes its source row) and distinct
        across groups (``$oid`` and ``$pos`` are bijective per source), so
        it reproduces first-seen group order directly — the
        ``ROW_NUMBER()`` window, which forces a full sort of the join
        output, can be dropped in favor of the bare column.
        """
        if not plan.group_by:
            return None
        pinned: set[str] = set()
        for var in plan.group_by:
            bind = chain.binds.get(var)
            if bind is None or bind.kind != "record":
                return None
            pinned.add(f"{bind.alias}.{_q('$pos')}")
        if len(pinned) == 1 and chain.order_cols[:1] == list(pinned):
            return chain.order_cols[0]
        return None

    def _chain_nest(self, plan: Nest, counter: list[int]) -> _Chain | None:
        """A lowered nest as a *derived table* feeding further SQL.

        The inner query stamps each row with its enumeration rank
        (``ROW_NUMBER()`` over the chain's ``$pos`` order) and the guarded
        contribution; the outer query groups, aggregates, and keeps
        ``MIN("$rn")`` as the group's first-seen position.  Record group
        keys pass their payload columns through under a ``k<i>$`` prefix —
        within a group every row carries the same ``$oid``, hence identical
        payload, so the bare columns are sound under GROUP BY.
        """
        if not self._pushdown:
            return None
        if plan.monoid_name not in _CHAINABLE:
            return None
        if isinstance(plan.monoid, CollectionMonoid):
            return None
        chain = self._chain(plan.child, counter)
        if chain is None:
            return None
        ok, cond = self._nest_condition(plan, chain.binds)
        if not ok:
            return None
        head = _sql_expr(plan.head, chain.binds)
        if head is None or head.tag == "object":
            return None
        aggregate = _aggregate_sql(plan.monoid_name, _q("$c"), head.tag)
        if aggregate is None:
            return None
        agg_sql, out_tag, _decode = aggregate
        galias = self._alias(counter)
        inner_select: list[str] = []
        outer_select: list[str] = []
        group_names: list[str] = []
        rebinds: dict[str, _VarBind] = {}
        for i, var in enumerate(plan.group_by):
            bind = chain.binds.get(var)
            if bind is None:
                return None
            if bind.kind == "record":
                assert bind.table is not None
                table = bind.table
                for column in [table.oid_column()] + table.payload_columns():
                    out = f"k{i}${column}"
                    inner_select.append(f"{_bcol(bind, column)} AS {_q(out)}")
                    outer_select.append(_q(out))
                group_names.append(_q(f"k{i}$" + table.oid_column()))
                rebinds[var] = _VarBind(
                    "record", galias, table, prefix=f"k{i}$"
                )
            else:
                key_sql, (kind, tag) = self._key_select(bind, f"k{i}")
                inner_select.append(f"{key_sql} AS {_q(f'k{i}')}")
                outer_select.append(_q(f"k{i}"))
                group_names.append(_q(f"k{i}"))
                rebinds[var] = _VarBind(
                    "expr",
                    expr=_SqlExpr(
                        f"{galias}.{_q(f'k{i}')}",
                        "object" if kind == "object" else tag,
                    ),
                )
        contrib = (
            head.sql
            if cond is None
            else f"(CASE WHEN {cond} THEN {head.sql} ELSE NULL END)"
        )
        inner_select.append(f"{contrib} AS {_q('$c')}")
        rank = self._pinned_rank(plan, chain)
        if rank is None:
            order = ", ".join(chain.order_cols)
            rank = f"ROW_NUMBER() OVER (ORDER BY {order})"
        inner_select.append(f"{rank} AS {_q('$rn')}")
        inner_sql = f"SELECT {', '.join(inner_select)} FROM {chain.from_sql}"
        if chain.where:
            inner_sql += f" WHERE {' AND '.join(chain.where)}"
        # GROUP BY NULL for key-less nests: one group while input rows
        # exist, *zero* groups on empty input — matching the calculus,
        # where a nest over an empty stream emits nothing (unlike a bare
        # SQL aggregate, which would emit one row).
        group_clause = ", ".join(group_names) if group_names else "NULL"
        outer_items = outer_select + [
            f"{agg_sql} AS {_q('$agg')}",
            f"MIN({_q('$rn')}) AS {_q('$pos')}",
        ]
        grouped_sql = (
            f"SELECT {', '.join(outer_items)} FROM ({inner_sql}) "
            f"GROUP BY {group_clause}"
        )
        rebinds[plan.out_var] = _VarBind(
            "expr", expr=_SqlExpr(f"{galias}.{_q('$agg')}", out_tag)
        )
        return _Chain(
            from_sql=f"({grouped_sql}) {galias}",
            where=[],
            binds=rebinds,
            order_cols=[f"{galias}.{_q('$pos')}"],
            extents=list(chain.extents),
            uses_table=chain.uses_table,
            grouped=True,
        )

    def _build_nest(self, plan: Nest, counter: list[int]) -> _Segment | None:
        """A nest at a segment root: GROUP BY for primitive monoids, a
        level-ordered merge query for collection monoids."""
        chain = self._chain(plan.child, counter)
        if chain is None or not chain.uses_table:
            return None
        ok, cond = self._nest_condition(plan, chain.binds)
        if not ok:
            return None
        if isinstance(plan.monoid, CollectionMonoid):
            return self._build_nest_merge(plan, chain, cond)
        if plan.monoid_name not in _ROOT_AGGREGATES:
            return None
        head = _sql_expr(plan.head, chain.binds)
        if head is None or head.tag == "object":
            return None
        aggregate = _aggregate_sql(plan.monoid_name, _q("$c"), head.tag)
        if aggregate is None:
            return None
        agg_sql, out_tag, decode_kind = aggregate
        inner_select: list[str] = []
        outer_select: list[str] = []
        group_names: list[str] = []
        decoders: list[tuple[str, str, str]] = []
        for i, var in enumerate(plan.group_by):
            bind = chain.binds.get(var)
            if bind is None:
                return None
            key_sql, (kind, tag) = self._key_select(bind, f"k{i}")
            inner_select.append(f"{key_sql} AS {_q(f'k{i}')}")
            outer_select.append(f"{_q(f'k{i}')} AS c{i}")
            group_names.append(_q(f"k{i}"))
            decoders.append((var, kind, tag))
        contrib = (
            head.sql
            if cond is None
            else f"(CASE WHEN {cond} THEN {head.sql} ELSE NULL END)"
        )
        inner_select.append(f"{contrib} AS {_q('$c')}")
        rank = self._pinned_rank(plan, chain)
        if rank is None:
            order = ", ".join(chain.order_cols)
            rank = f"ROW_NUMBER() OVER (ORDER BY {order})"
        inner_select.append(f"{rank} AS {_q('$rn')}")
        inner_sql = f"SELECT {', '.join(inner_select)} FROM {chain.from_sql}"
        if chain.where:
            inner_sql += f" WHERE {' AND '.join(chain.where)}"
        group_clause = ", ".join(group_names) if group_names else "NULL"
        outer_select.append(f"{agg_sql} AS c{len(plan.group_by)}")
        decoders.append((plan.out_var, decode_kind, out_tag))
        sql = (
            f"SELECT {', '.join(outer_select)} FROM ({inner_sql}) "
            f"GROUP BY {group_clause} ORDER BY MIN({_q('$rn')})"
        )
        return _Segment(
            sql,
            tuple(decoders),
            tuple(dict.fromkeys(chain.extents)),
            mode="stream",
            label="sql:group",
        )

    def _build_nest_merge(
        self, plan: Nest, chain: _Chain, cond: str | None
    ) -> _Segment | None:
        """Collection-monoid nest: one query ordered by group key (then
        enumeration rank), merged back in a single linear pass."""
        head = _sql_expr(plan.head, chain.binds)
        if head is None:
            return None
        select: list[str] = []
        decoders: list[tuple[str, str, str]] = []
        key_names: list[str] = []
        for i, var in enumerate(plan.group_by):
            bind = chain.binds.get(var)
            if bind is None:
                return None
            key_sql, (kind, tag) = self._key_select(bind, f"k{i}")
            select.append(f"{key_sql} AS c{i}")
            key_names.append(f"c{i}")
            decoders.append((var, kind, tag))
        head_kind = "object" if head.tag == "object" else "scalar"
        decoders.append(("", head_kind, head.tag))
        select.append(f"({cond or '1'}) AS {_q('$c')}")
        select.append(f"{head.sql} AS {_q('$h')}")
        order = ", ".join(chain.order_cols)
        select.append(f"ROW_NUMBER() OVER (ORDER BY {order}) AS {_q('$rn')}")
        sql = f"SELECT {', '.join(select)} FROM {chain.from_sql}"
        if chain.where:
            sql += f" WHERE {' AND '.join(chain.where)}"
        sql += " ORDER BY " + ", ".join(key_names + [_q("$rn")])
        return _Segment(
            sql,
            tuple(decoders),
            tuple(dict.fromkeys(chain.extents)),
            mode="merge",
            label="sql:merge",
            key_count=len(plan.group_by),
            monoid_name=plan.monoid_name,
            out_var=plan.out_var,
        )

    def _build_reduce(
        self, plan: Reduce, counter: list[int]
    ) -> _Segment | None:
        """A reduce root: a single aggregate row for primitive monoids, an
        ordered element stream folded in one pass for collection monoids."""
        chain = self._chain(plan.child, counter)
        if chain is None or not chain.uses_table:
            return None
        where = list(chain.where)
        if plan.pred != Const(True):
            pred = _filter_sql(plan.pred, chain.binds)
            if pred is None or pred.tag not in _BOOLISH:
                return None
            # WHERE drops NULL predicates exactly as _holds treats them.
            where.append(pred.sql)
        head = _sql_expr(plan.head, chain.binds)
        if head is None:
            return None
        extents = tuple(dict.fromkeys(chain.extents))
        if isinstance(plan.monoid, CollectionMonoid):
            sql = f"SELECT {head.sql} AS c0 FROM {chain.from_sql}"
            if where:
                sql += f" WHERE {' AND '.join(where)}"
            sql += f" ORDER BY {', '.join(chain.order_cols)}"
            head_kind = "object" if head.tag == "object" else "scalar"
            return _Segment(
                sql,
                (("", head_kind, head.tag),),
                extents,
                mode="fold",
                label="sql",
                monoid_name=plan.monoid_name,
            )
        if plan.monoid_name not in _ROOT_AGGREGATES:
            return None
        if head.tag == "object":
            return None
        aggregate = _aggregate_sql(plan.monoid_name, head.sql, head.tag)
        if aggregate is None:
            return None
        agg_sql, out_tag, decode_kind = aggregate
        sql = f"SELECT {agg_sql} AS c0 FROM {chain.from_sql}"
        if where:
            sql += f" WHERE {' AND '.join(where)}"
        return _Segment(
            sql,
            (("", decode_kind, out_tag),),
            extents,
            mode="reduce",
            label="sql:agg",
            monoid_name=plan.monoid_name,
        )

    # -- SELECT assembly -----------------------------------------------------

    def _finalize(self, plan: Operator, chain: _Chain) -> _Segment:
        select: list[str] = []
        decoders: list[tuple[str, str, str]] = []
        for position, var in enumerate(plan.columns()):
            bind = chain.binds[var]
            if bind.kind == "record":
                assert bind.table is not None
                expr = _bcol(bind, bind.table.oid_column())
                decoders.append((var, "object", ""))
            elif bind.kind == "scalar":
                assert bind.table is not None
                expr = _bcol(bind, bind.table.value_column(""))
                decoders.append((var, "scalar", bind.table.columns[""]))
            else:
                assert bind.expr is not None
                expr = bind.expr.sql
                if bind.expr.tag == "object":
                    decoders.append((var, "object", ""))
                else:
                    decoders.append((var, "scalar", bind.expr.tag))
            select.append(f"{expr} AS c{position}")
        # Ordering by every constituent $pos reproduces the in-memory
        # engine's nested-loop enumeration order (padded rows sort first
        # within their left row, which is also the only row it has).
        order = ", ".join(chain.order_cols)
        sql = f"SELECT {', '.join(select)} FROM {chain.from_sql}"
        if chain.where:
            sql += f" WHERE {' AND '.join(chain.where)}"
        sql += f" ORDER BY {order}"
        extents = tuple(dict.fromkeys(chain.extents))
        label = "sql:group" if chain.grouped else "sql"
        return _Segment(sql, tuple(decoders), extents, label=label)


def _indexable_column(
    term: Term, binds: Mapping[str, _VarBind]
) -> tuple[str, str] | None:
    """The physical (table, column) behind an equality operand, if any.

    Only unprefixed binds qualify: a prefixed bind reads from a derived
    table, which has no index to offer.
    """
    attrs: list[str] = []
    while isinstance(term, Proj):
        attrs.append(term.attr)
        term = term.expr
    if not isinstance(term, Var):
        return None
    bind = binds.get(term.name)
    if bind is None or bind.prefix or bind.table is None:
        return None
    table = bind.table
    if bind.kind == "scalar":
        if attrs:
            return None
        return (table.name, table.value_column(""))
    if bind.kind != "record":
        return None
    if not attrs:
        return (table.name, table.oid_column())
    path = "$".join(reversed(attrs))
    if path in table.columns:
        return (table.name, table.value_column(path))
    if path in table.records:
        return (table.name, table.oid_column(path))
    return None


def compile_segments(
    plan: Operator, store: ShreddedStore, pushdown: bool = True
) -> dict[int, _Segment]:
    """Maximal SQL-translatable subtrees of *plan*, keyed by node ``id``.

    The walk is top-down greedy: the largest subtree that fully translates
    becomes one flat SELECT — with *pushdown* that includes ``Reduce`` and
    ``Nest`` roots lowered to SQL aggregation; anything that refuses
    (residual expressions, refused extents, non-lowerable monoids) stays
    Python, and the search recurses into its children — so a plan degrades
    gracefully from "one flat query per nesting level" down to per-scan
    queries, never failing outright.  Equi-join columns discovered during
    lowering get indexes (plus ANALYZE) before execution.
    """
    builder = _SegmentBuilder(store, pushdown=pushdown)
    segments: dict[int, _Segment] = {}

    def visit(node: Operator) -> None:
        if isinstance(
            node,
            (
                Scan,
                Select,
                Map,
                Join,
                OuterJoin,
                Unnest,
                OuterUnnest,
                Reduce,
                Nest,
            ),
        ):
            segment = builder.build(node)
            if segment is not None:
                segments[id(node)] = segment
                return
        for child in node.children():
            visit(child)

    visit(plan)
    if builder.index_requests:
        store.prepare_indexes(builder.index_requests)
    return segments


# ---------------------------------------------------------------------------
# Execution: SQL segments + residual reference semantics
# ---------------------------------------------------------------------------


class _ProgressTrap:
    """Captures the GovernorError a progress handler raised.

    Exceptions must never cross the sqlite3 C boundary: the handler stores
    the structured error here and returns 1, SQLite aborts the statement
    with ``OperationalError: interrupted``, and the caller re-raises the
    stored error in its place.
    """

    __slots__ = ("tripped",)

    def __init__(self) -> None:
        self.tripped: BaseException | None = None


def _install_progress(connection: Any, governor: Any) -> _ProgressTrap | None:
    """Wire the shared governor into SQLite's VM so timeouts, budgets, and
    cancellation trip *mid-SELECT*, not just between flat queries."""
    if governor is None:
        return None
    trap = _ProgressTrap()

    def handler() -> int:
        try:
            governor.tick()
        except GovernorError as exc:
            trap.tripped = exc
            return 1
        except Exception:  # pragma: no cover - never cross the C boundary
            return 1
        return 0

    connection.set_progress_handler(handler, _PROGRESS_OPCODES)
    return trap


class _HybridEvaluator(PlanEvaluator):
    """The stitching evaluator: SQL segments below, reference Python above.

    Operators covered by a compiled segment stream decoded SQLite rows (or,
    for lowered reduce/nest roots, decode aggregated results directly);
    every other operator — residual expressions, refused extents,
    non-lowerable monoids — runs the inherited reference semantics over the
    shredded store's rehydrated extents.  Identity, 3VL, and monoid
    behavior therefore match the in-memory engine by construction.
    """

    def __init__(
        self,
        store: ShreddedStore,
        segments: Mapping[int, _Segment],
        params: Mapping[str, Any] | None = None,
        governor: Any | None = None,
    ):
        super().__init__(store)
        # Residual terms need parameter values and governor ticks; the
        # base class builds its term evaluator with neither.
        self._terms = TermEvaluator(store, params, governor)
        self._store = store
        self._segments = segments
        self._governor = governor
        #: (sql, rows, sql ms, decode/stitch ms) per executed flat query.
        self.flat_queries: list[tuple[str, int, float, float]] = []

    def stream(self, plan: Operator) -> Iterator[dict[str, Any]]:
        segment = self._segments.get(id(plan))
        if segment is None:
            return super().stream(plan)
        if segment.mode == "merge":
            return self._stream_merge(segment)
        return self._stream_segment(segment)

    def _reduce(self, plan: Reduce) -> Any:
        segment = self._segments.get(id(plan))
        if segment is None or segment.mode not in ("reduce", "fold"):
            monoid = plan.monoid
            if isinstance(monoid, CollectionMonoid):
                # Same semantics as the base per-row merge loop — for
                # collection monoids the contribution is unconditionally
                # unit(head), NULLs kept, no finalize — but folding the
                # collected elements once is O(n) where repeated
                # set/bag union rebuilds the accumulator per row (O(n²)).
                elements = [
                    self._value(plan.head, env)
                    for env in self.stream(plan.child)
                    if self._holds(plan.pred, env)
                ]
                self.steps += len(elements)
                return monoid.fold_elements(elements)
            return super()._reduce(plan)
        rows, index = self._execute(segment)
        start = time.perf_counter()
        objects = self._store.objects
        _, kind, tag = segment.decoders[0]
        if segment.mode == "reduce":
            value = rows[0][0]
            if kind == "min":
                result = float("inf") if value is None else value
            elif value is None:
                result = NULL
            else:
                result = bool(value) if tag == "bool" else value
        else:
            elements: list[Any] = []
            append = elements.append
            if kind == "object":
                for row in rows:
                    value = row[0]
                    append(NULL if value is None else objects[value])
            elif tag == "bool":
                for row in rows:
                    value = row[0]
                    append(NULL if value is None else bool(value))
            else:
                for row in rows:
                    value = row[0]
                    append(NULL if value is None else value)
            self.steps += len(rows)
            monoid = lookup_monoid(segment.monoid_name)
            assert isinstance(monoid, CollectionMonoid)
            result = monoid.fold_elements(elements)
        self._add_decode_ms(index, (time.perf_counter() - start) * 1000.0)
        return result

    # -- segment execution ---------------------------------------------------

    def _execute(self, segment: _Segment) -> tuple[list[Any], int]:
        """Run one flat query; returns (rows, flat_queries index).

        Rows are drained in batches with the governor ticked per batch, and
        a progress handler checkpoints the governor every few thousand VM
        opcodes so budgets trip inside long-running SELECTs too.
        """
        store = self._store
        if any(kind == "object" for _, kind, _ in segment.decoders):
            # Only object-decoding segments need the rehydrated extents;
            # scalar aggregates and folds skip that cost entirely.
            store.ensure_loaded(segment.extents)
        governor = self._governor
        sql = segment.sql
        if governor is not None:
            # SQLite's progress-handler countdown runs off the *statement's*
            # accumulated VM-step counter, which the module's statement
            # cache preserves across executions — a cache hit would start
            # at a different opcode phase each run, making checkpoint
            # charges nondeterministic.  A nonce comment forces a fresh
            # prepare (phase zero) for governed statements only; the
            # ungoverned hot path keeps the cache.  (next() on the shared
            # counter is atomic; the statement cache itself is
            # per-connection, so concurrent sessions never share phase.)
            sql = f"{segment.sql} /* governed:{next(store._governed_nonce)} */"
        start = time.perf_counter()
        rows: list[Any] = []
        with store.statement_guard() as connection:
            trap = _install_progress(connection, governor)
            try:
                cursor = connection.execute(sql)
                while True:
                    batch = cursor.fetchmany(_FETCH_BATCH)
                    if governor is not None and batch:
                        governor.tick_many(len(batch))
                    rows.extend(batch)
                    if len(batch) < _FETCH_BATCH:
                        break
            except sqlite3.OperationalError as exc:
                if trap is not None and trap.tripped is not None:
                    raise trap.tripped from None
                raise ExecutionError(
                    f"sqlite backend error: {exc}"
                ) from exc
            finally:
                if trap is not None:
                    connection.set_progress_handler(None, 0)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.flat_queries.append((segment.sql, len(rows), elapsed_ms, 0.0))
        return rows, len(self.flat_queries) - 1

    def _add_decode_ms(self, index: int, ms: float) -> None:
        sql, count, sql_ms, decode_ms = self.flat_queries[index]
        self.flat_queries[index] = (sql, count, sql_ms, decode_ms + ms)

    def _stream_segment(self, segment: _Segment) -> Iterator[dict[str, Any]]:
        rows, index = self._execute(segment)
        objects = self._store.objects
        decoders = segment.decoders

        def generate() -> Iterator[dict[str, Any]]:
            total = len(rows)
            for base in range(0, total, _FETCH_BATCH):
                start = time.perf_counter()
                chunk: list[dict[str, Any]] = []
                for row in rows[base : base + _FETCH_BATCH]:
                    self.steps += 1
                    env: dict[str, Any] = {}
                    for (var, kind, tag), value in zip(decoders, row):
                        if kind == "min":
                            env[var] = float("inf") if value is None else value
                        elif value is None:
                            env[var] = NULL
                        elif kind == "object":
                            env[var] = objects[value]
                        else:
                            env[var] = bool(value) if tag == "bool" else value
                    chunk.append(env)
                self._add_decode_ms(
                    index, (time.perf_counter() - start) * 1000.0
                )
                yield from chunk

        return generate()

    def _stream_merge(self, segment: _Segment) -> Iterator[dict[str, Any]]:
        """Linear-merge stitching for collection-monoid nests.

        The rows arrive ordered by group key then enumeration rank, so one
        pass over adjacent runs rebuilds every group; groups are then
        emitted in first-seen (minimum rank) order, matching the reference
        nest's output order.
        """
        rows, index = self._execute(segment)
        start = time.perf_counter()
        objects = self._store.objects
        key_count = segment.key_count
        key_decoders = segment.decoders[:key_count]
        _, head_kind, head_tag = segment.decoders[key_count]
        monoid = lookup_monoid(segment.monoid_name)
        assert isinstance(monoid, CollectionMonoid)
        out_var = segment.out_var
        #: [first rank, key env, elements] per group, in key order.
        groups: list[list[Any]] = []
        previous: Any = None
        for row in rows:
            self.steps += 1
            key = row[:key_count]
            if not groups or key != previous:
                env: dict[str, Any] = {}
                for (var, kind, tag), value in zip(key_decoders, row):
                    if value is None:
                        env[var] = NULL
                    elif kind == "object":
                        env[var] = objects[value]
                    else:
                        env[var] = bool(value) if tag == "bool" else value
                groups.append([row[key_count + 2], env, []])
                previous = key
            if row[key_count]:  # the guarded contribution indicator
                value = row[key_count + 1]
                if value is None:
                    element = NULL
                elif head_kind == "object":
                    element = objects[value]
                else:
                    element = bool(value) if head_tag == "bool" else value
                groups[-1][2].append(element)
        groups.sort(key=lambda group: group[0])
        results = [
            {**env, out_var: monoid.fold_elements(elements)}
            for _, env, elements in groups
        ]
        self._add_decode_ms(index, (time.perf_counter() - start) * 1000.0)
        return iter(results)


def _compiled_options(compiled: Any) -> tuple[str | None, bool]:
    options = getattr(compiled, "options", None)
    db_path = getattr(options, "db_path", None)
    pushdown = getattr(options, "sqlite_pushdown", True)
    return db_path, pushdown


def execute_shredded(
    compiled: Any,
    database: Database,
    params: Mapping[str, Any] | None = None,
    governor: Any | None = None,
    flat_queries: list | None = None,
) -> Any:
    """Run a :class:`~repro.core.pipeline.CompiledQuery` on the SQLite
    backend; *flat_queries* (when given) collects
    (sql, rows, sql ms, decode ms) tuples."""
    if compiled.optimized is None:
        raise BackendUnsupportedError(
            "backend='sqlite' requires an unnested algebraic plan "
            "(compile with unnest=True)"
        )
    db_path, pushdown = _compiled_options(compiled)
    store = shredded_store(database, db_path=db_path)
    segments = store.cached_segments(compiled.optimized, pushdown)
    evaluator = _HybridEvaluator(store, segments, params, governor)
    result = evaluator.evaluate(compiled.optimized)
    if flat_queries is not None:
        flat_queries.extend(evaluator.flat_queries)
    return result


def explain_shredded(compiled: Any, database: Database) -> str:
    """An EXPLAIN rendering: the operator tree with each compiled subtree's
    generated flat SQL (``[sql:group]``/``[sql:agg]``/``[sql:merge]``
    markers show pushed-down aggregation), and ``[py]`` markers on residual
    operators."""
    if compiled.optimized is None:
        raise BackendUnsupportedError(
            "backend='sqlite' requires an unnested algebraic plan "
            "(compile with unnest=True)"
        )
    db_path, pushdown = _compiled_options(compiled)
    store = shredded_store(database, db_path=db_path)
    segments = store.cached_segments(compiled.optimized, pushdown)
    lines = ["backend: sqlite (query shredding over stdlib sqlite3)"]
    if store.db_path is not None:
        lines.append(
            f"store: file-backed at {store.db_path} "
            f"({'reused' if store.reused else 'shredded'})"
        )

    def visit(node: Operator, depth: int) -> None:
        indent = "  " * depth
        segment = segments.get(id(node))
        if segment is not None:
            marker = f"[{segment.label}]"
            lines.append(f"{indent}{marker} {type(node).__name__} subtree:")
            lines.append(f"{indent}{' ' * len(marker)} {segment.sql}")
            return
        lines.append(f"{indent}[py]  {type(node).__name__}")
        for child in node.children():
            visit(child, depth + 1)

    visit(compiled.optimized, 0)
    return "\n".join(lines)


def shredded_sql(
    database: Database, source: str, pushdown: bool = True
) -> list[str]:
    """The flat SQL statements the backend generates for *source*, in plan
    pre-order (the golden-SQL test surface)."""
    from repro.core.optimizer import OptimizerOptions
    from repro.core.pipeline import QueryPipeline

    pipeline = QueryPipeline(
        database,
        OptimizerOptions(backend="sqlite", sqlite_pushdown=pushdown),
    )
    compiled = pipeline.compile_oql(source)
    if compiled.optimized is None:  # pragma: no cover - unnest is on
        return []
    store = shredded_store(database)
    segments = compile_segments(compiled.optimized, store, pushdown=pushdown)
    statements: list[str] = []

    def visit(node: Operator) -> None:
        segment = segments.get(id(node))
        if segment is not None:
            statements.append(segment.sql)
            return
        for child in node.children():
            visit(child)

    visit(compiled.optimized)
    return statements
