"""The query-shredding SQLite backend (``OptimizerOptions.backend="sqlite"``).

Fegaras' unnesting algebra produces flat join/outer-join/unnest chains
separated by nest operators — exactly the shape *query shredding* (Cheney,
Lindley & Wadler, arXiv:1404.7078) translates to a bounded set of flat
relational queries plus a stitching step.  This module implements that
translation over the stdlib ``sqlite3`` engine in three layers:

**Shredded storage** (:class:`ShreddedStore`).  Every extent is flattened
into SQLite tables: one root table per extent keyed by the engine-assigned
``$oid`` (scalar attributes as columns, nested *records* flattened in place
with ``$``-joined column prefixes), and one child table per nested
collection (``Extent$path``) whose rows carry ``$parent`` (the owning row's
``$oid``) and ``$pos`` (the occurrence index — bag multiplicity and list
order survive shredding).  The catalog is **data-driven**: shapes are
inferred from the stored values, not the declared schema (the ``ab`` demo
database stores plain integers under a record-typed schema).  Anything the
flat encoding cannot represent faithfully — inheritance hierarchies,
NULL-valued collection attributes, heterogeneous record shapes, mixed-type
columns — raises :class:`~repro.errors.BackendUnsupportedError` instead of
risking silent divergence.  The store is also an ``ExtentProvider``:
:meth:`ShreddedStore.extent` re-stitches an extent's rows back into the
original nested values (same OIDs, same collection kinds), which both
proves the shredding lossless and feeds the residual evaluator below.

**SQL lowering** (:func:`compile_segments`).  Maximal chains of
scan/select/join/outer-join/unnest/outer-unnest/map operators are compiled
into **one flat ``SELECT`` per nesting level**: joins become parenthesized
join trees (inner predicates in ``ON``/``WHERE``, which are equivalent for
inner joins), outer-joins become ``LEFT JOIN`` with the right side's
residual filters lifted into the ``ON`` clause (the standard equivalence),
and (outer-)unnests become joins against the child tables on ``$parent``.
The translated predicates rely on SQLite's Kleene three-valued logic
matching the calculus: ``WHERE`` drops NULL predicates exactly as the
engine treats NULL predicates as false, ``AND``/``OR``/``NOT``/``CASE``
agree with the evaluator's 3VL, and object equality compares ``$oid``
columns — the same identity semantics as
:func:`~repro.data.values.identity_eq`.  Expressions the translation cannot
prove equivalent (division — SQLite truncates integers and yields NULL on
zero — parameters, string concatenation, collection-valued terms) are
simply *not* compiled: the operator stays residual.  Every segment orders
by the constituent ``$pos`` columns, reproducing the in-memory engine's
nested-loop enumeration order exactly.

**Stitching** (:class:`_HybridEvaluator`).  The flat result sets are
stitched back into nested values by the reference plan evaluator: the
segment rows are decoded into environments (``$oid`` → the rehydrated
object, so identity is preserved end to end) and every operator *above* a
segment — in particular ``Nest``, which groups on the paper's O5–O7 keys
and converts NULL padding to monoid zeros — runs the reference Python
semantics over them.  This is the shredding paper's stitching phase with
the repo's own nest operator as the stitcher, so 3VL, identity, and monoid
semantics match the in-memory engine *by construction*.
"""

from __future__ import annotations

import math
import sqlite3
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.algebra.evaluator import PlanEvaluator
from repro.algebra.operators import (
    Join,
    Map,
    Operator,
    OuterJoin,
    OuterUnnest,
    Scan,
    Select,
    Unnest,
)
from repro.calculus.evaluator import Evaluator as TermEvaluator
from repro.calculus.terms import (
    BinOp,
    Const,
    If,
    IsNull,
    Not,
    Null,
    Proj,
    Term,
    Var,
)
from repro.data.database import Database
from repro.data.values import (
    NULL,
    BagValue,
    CollectionValue,
    ListValue,
    Record,
    SetValue,
    is_null,
)
from repro.errors import BackendUnsupportedError, UnknownExtentError

__all__ = [
    "ShreddedStore",
    "shredded_store",
    "compile_segments",
    "execute_shredded",
    "explain_shredded",
    "shredded_sql",
]


def _q(name: str) -> str:
    """Quote a SQL identifier (``$oid``-style names and user attributes
    like ``oid`` both need it)."""
    return '"' + name.replace('"', '""') + '"'


# ---------------------------------------------------------------------------
# Shredded storage
# ---------------------------------------------------------------------------


_SCALAR_TAGS = {bool: "bool", int: "int", float: "float", str: "str"}


def _scalar_tag(value: Any) -> str | None:
    for cls, tag in _SCALAR_TAGS.items():
        if isinstance(value, bool):
            return "bool"
        break
    return _SCALAR_TAGS.get(type(value))


def _merge_tag(a: str | None, b: str) -> str:
    if a is None or a == b:
        return b
    if {a, b} <= {"int", "float", "num"}:
        return "num"
    raise BackendUnsupportedError(
        f"mixed value types in one column ({a} vs {b}) cannot be shredded "
        "faithfully (SQLite orders across storage classes; the engine "
        "raises a type error)"
    )


@dataclass
class _Table:
    """One flat SQLite table: an extent's root or a lifted nested collection.

    ``columns`` maps scalar attribute paths (``salary``,
    ``manager$name``) to their value tags; ``records`` is the set of
    nested-record paths ("" is the element itself for record-shaped
    tables, each contributing a ``path$oid`` column); ``children`` maps
    nested-collection paths to their child tables.
    """

    name: str
    extent: str  # root extent this table shreds (child tables inherit it)
    element: str  # "record" | "scalar"
    kind: str  # set | bag | list
    child: bool  # has $parent?
    columns: dict[str, str] = field(default_factory=dict)
    records: set[str] = field(default_factory=set)
    children: dict[str, "_Table"] = field(default_factory=dict)

    def oid_column(self, path: str = "") -> str:
        return "$oid" if path == "" else path + "$oid"

    def value_column(self, path: str) -> str:
        return "$value" if path == "" else path

    def payload_columns(self) -> list[str]:
        """The non-structural columns, in deterministic order."""
        cols = [self.value_column(p) for p in sorted(self.columns)]
        cols += [self.oid_column(p) for p in sorted(self.records) if p]
        return sorted(cols)

    def all_columns(self) -> list[str]:
        structural = ["$oid"] + (["$parent"] if self.child else []) + ["$pos"]
        return structural + self.payload_columns()


def _encode(value: Any) -> Any:
    if is_null(value):
        return None
    if isinstance(value, bool):
        return int(value)
    return value


def _decode(value: Any, tag: str) -> Any:
    if value is None:
        return NULL
    if tag == "bool":
        return bool(value)
    return value


class ShreddedStore:
    """A database's extents shredded into flat in-memory SQLite tables.

    Also an ``ExtentProvider``: :meth:`extent` stitches the flat rows back
    into the original nested collection values (rehydration), registering
    every record by OID in :attr:`objects` so SQL segment rows can resolve
    ``$oid`` columns to the very objects the residual operators iterate.
    """

    def __init__(self, database: Database):
        if database.schema.supertypes:
            raise BackendUnsupportedError(
                "the SQLite shredding backend does not support inheritance "
                "hierarchies (extent inclusion would shred objects into "
                "multiple root tables)"
            )
        self._database = database
        self.connection = sqlite3.connect(":memory:", check_same_thread=False)
        self.lock = threading.Lock()
        #: extent name -> root table (only extents that shredded cleanly).
        self.tables: dict[str, _Table] = {}
        #: extent name -> refusal reason (never silent: surfaced by extent()).
        self.refusals: dict[str, str] = {}
        #: oid -> rehydrated Record (filled lazily per extent).
        self.objects: dict[int, Record] = {}
        self._extent_cache: dict[str, CollectionValue] = {}
        self._next_surrogate = -1
        for name in database.extent_names():
            try:
                self._shred_extent(name)
            except BackendUnsupportedError as exc:
                self.refusals[name] = exc.message

    # -- shredding ----------------------------------------------------------

    def _surrogate(self) -> int:
        oid = self._next_surrogate
        self._next_surrogate -= 1
        return oid

    def _shred_extent(self, name: str) -> None:
        value = self._database.extent(name)
        kind = _collection_kind(value)
        table = self._describe(name, name, kind, list(value.elements()), False)
        self._create(table)
        self._insert(table, list(value.elements()), None)
        self.tables[name] = table

    def _describe(
        self,
        table_name: str,
        extent: str,
        kind: str,
        elements: list[Any],
        child: bool,
    ) -> _Table:
        table = _Table(table_name, extent, "record", kind, child)
        present = [e for e in elements if not is_null(e)]
        records = [e for e in present if isinstance(e, Record)]
        if records:
            if len(records) != len(elements):
                raise BackendUnsupportedError(
                    f"{table_name}: record-shaped collection mixes records "
                    "with other elements"
                )
            table.records.add("")
            self._describe_fields(table, "", records)
            return table
        scalars = [e for e in present if _scalar_tag(e) is not None]
        if len(scalars) != len(present):
            raise BackendUnsupportedError(
                f"{table_name}: elements are neither records nor scalars"
            )
        tag: str | None = None
        for e in scalars:
            tag = _merge_tag(tag, _scalar_tag(e))
        table.element = "scalar"
        table.columns[""] = tag or "any"
        return table

    def _describe_fields(
        self, table: _Table, prefix: str, records: list[Record]
    ) -> None:
        attrs = records[0].attributes()
        if any(r.attributes() != attrs for r in records):
            raise BackendUnsupportedError(
                f"{table.name}: heterogeneous record shapes at "
                f"{prefix or 'the element'!r}"
            )
        for attr in attrs:
            path = f"{prefix}${attr}" if prefix else attr
            values = [r[attr] for r in records]
            present = [v for v in values if not is_null(v)]
            if not present:
                table.columns[path] = "any"
                continue
            if all(_scalar_tag(v) is not None for v in present):
                tag: str | None = None
                for v in present:
                    tag = _merge_tag(tag, _scalar_tag(v))
                table.columns[path] = tag or "any"
            elif all(isinstance(v, Record) for v in present):
                table.records.add(path)
                self._describe_fields(table, path, present)
            elif all(isinstance(v, CollectionValue) for v in present):
                if len(present) != len(values):
                    raise BackendUnsupportedError(
                        f"{table.name}: NULL-valued collection attribute "
                        f"{path!r} (a missing child table cannot distinguish "
                        "NULL from empty)"
                    )
                kinds = {_collection_kind(v) for v in present}
                if len(kinds) != 1:
                    raise BackendUnsupportedError(
                        f"{table.name}: mixed collection kinds at {path!r}"
                    )
                nested = [e for v in present for e in v.elements()]
                table.children[path] = self._describe(
                    f"{table.name}${path}", table.extent, kinds.pop(), nested,
                    True,
                )
            else:
                raise BackendUnsupportedError(
                    f"{table.name}: attribute {path!r} mixes value categories"
                )

    def _create(self, table: _Table) -> None:
        cols = ", ".join(_q(c) for c in table.all_columns())
        self.connection.execute(f"CREATE TABLE {_q(table.name)} ({cols})")
        if table.child:
            self.connection.execute(
                f"CREATE INDEX {_q('ix$' + table.name)} "
                f"ON {_q(table.name)} ({_q('$parent')})"
            )
        for child in table.children.values():
            self._create(child)

    def _insert(
        self, table: _Table, elements: list[Any], parent: int | None
    ) -> None:
        columns = table.all_columns()
        sql = (
            f"INSERT INTO {_q(table.name)} "
            f"({', '.join(_q(c) for c in columns)}) "
            f"VALUES ({', '.join('?' for _ in columns)})"
        )
        for pos, element in enumerate(elements):
            row = {c: None for c in columns}
            row["$pos"] = pos
            if table.child:
                row["$parent"] = parent
            if table.element == "record":
                oid = element.oid if element.oid is not None else self._surrogate()
                row["$oid"] = oid
                self._flatten(table, "", element, row)
            else:
                row["$oid"] = self._surrogate()
                row["$value"] = _encode(element)
            self.connection.execute(sql, [row[c] for c in columns])
            for path, child in table.children.items():
                value = _walk_path(element, path)
                if value is None or is_null(value):
                    continue
                self._insert(child, list(value.elements()), row["$oid"])

    def _flatten(
        self, table: _Table, prefix: str, record: Record, row: dict
    ) -> None:
        for attr in record.attributes():
            path = f"{prefix}${attr}" if prefix else attr
            value = record[attr]
            if path in table.columns:
                row[table.value_column(path)] = _encode(value)
            elif path in table.records:
                if is_null(value):
                    continue  # the path$oid column stays NULL
                oid = value.oid if value.oid is not None else self._surrogate()
                row[table.oid_column(path)] = oid
                self._flatten(table, path, value, row)
            # collection paths are handled by the child-table inserts

    # -- rehydration (the ExtentProvider protocol) --------------------------

    def extent(self, name: str) -> CollectionValue:
        cached = self._extent_cache.get(name)
        if cached is not None:
            return cached
        if name in self.refusals:
            raise BackendUnsupportedError(
                f"extent {name!r} was not shredded: {self.refusals[name]}"
            )
        table = self.tables.get(name)
        if table is None:
            raise UnknownExtentError(
                f"unknown extent {name!r}; known extents: "
                f"{sorted(self.tables)}"
            )
        elements = self._load(table).get(None, [])
        value = _make_collection(table.kind, elements)
        self._extent_cache[name] = value
        return value

    def ensure_loaded(self, extents: Iterator[str] | tuple[str, ...]) -> None:
        """Rehydrate the given extents so ``objects`` can resolve their OIDs."""
        for name in extents:
            self.extent(name)

    def _load(self, table: _Table) -> dict[int | None, list[Any]]:
        """All of *table*'s elements, stitched, grouped by ``$parent``."""
        loaded_children = {
            path: self._load(child) for path, child in table.children.items()
        }
        columns = table.all_columns()
        order = '"$parent", "$pos"' if table.child else '"$pos"'
        sql = (
            f"SELECT {', '.join(_q(c) for c in columns)} "
            f"FROM {_q(table.name)} ORDER BY {order}"
        )
        grouped: dict[int | None, list[Any]] = {}
        with self.lock:
            rows = self.connection.execute(sql).fetchall()
        for values in rows:
            row = dict(zip(columns, values))
            parent = row.get("$parent")
            if table.element == "record":
                element = self._stitch_record(table, "", row, loaded_children)
            else:
                element = _decode(row["$value"], table.columns[""])
            grouped.setdefault(parent, []).append(element)
        return grouped

    def _stitch_record(
        self,
        table: _Table,
        prefix: str,
        row: dict,
        loaded_children: dict[str, dict[int | None, list[Any]]],
    ) -> Any:
        oid = row[table.oid_column(prefix)]
        if oid is None:
            return NULL
        fields: dict[str, Any] = {}
        for path, tag in table.columns.items():
            attr = _direct_attr(prefix, path)
            if attr is not None:
                fields[attr] = _decode(row[table.value_column(path)], tag)
        for path in table.records:
            attr = _direct_attr(prefix, path)
            if attr is not None:
                fields[attr] = self._stitch_record(
                    table, path, row, loaded_children
                )
        row_oid = row["$oid"]
        for path, child in table.children.items():
            attr = _direct_attr(prefix, path)
            if attr is not None:
                elements = loaded_children[path].get(row_oid, [])
                fields[attr] = _make_collection(child.kind, elements)
        record = Record(fields)
        if oid >= 0:
            record = record.with_oid(oid)
            self.objects[oid] = record
        return record


def _direct_attr(prefix: str, path: str) -> str | None:
    """The attribute name when *path* is a direct field of *prefix*."""
    if prefix:
        if not path.startswith(prefix + "$"):
            return None
        rest = path[len(prefix) + 1 :]
    else:
        rest = path
    return rest if rest and "$" not in rest else None


def _collection_kind(value: CollectionValue) -> str:
    if isinstance(value, SetValue):
        return "set"
    if isinstance(value, BagValue):
        return "bag"
    if isinstance(value, ListValue):
        return "list"
    raise BackendUnsupportedError(
        f"unknown collection kind {type(value).__name__}"
    )


def _make_collection(kind: str, elements: list[Any]) -> CollectionValue:
    if kind == "set":
        return SetValue(elements)
    if kind == "bag":
        return BagValue(elements)
    return ListValue(elements)


def _walk_path(element: Any, path: str) -> Any | None:
    """Navigate ``a$b$c`` through nested records; None when unreachable."""
    value = element
    for attr in path.split("$"):
        if is_null(value) or not isinstance(value, Record):
            return None
        value = value[attr]
    return value


#: One shredded store per database, invalidated on schema changes.  Weak so
#: a dropped database releases its SQLite image.
_STORES: "weakref.WeakKeyDictionary[Database, tuple[int, ShreddedStore]]" = (
    weakref.WeakKeyDictionary()
)
_STORES_LOCK = threading.Lock()


def shredded_store(database: Database) -> ShreddedStore:
    """The (cached) shredded image of *database*.

    Rebuilt whenever ``schema_version`` changes, mirroring the plan cache's
    staleness rule.
    """
    with _STORES_LOCK:
        entry = _STORES.get(database)
        if entry is not None and entry[0] == database.schema_version:
            return entry[1]
    store = ShreddedStore(database)
    with _STORES_LOCK:
        _STORES[database] = (database.schema_version, store)
    return store


# ---------------------------------------------------------------------------
# SQL lowering: expression translation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SqlExpr:
    """A translated scalar expression: SQL text plus a value tag.

    ``tag`` is a value-type tag (``int``/``float``/``num``/``str``/
    ``bool``/``any``/``null``) or ``object`` — in which case ``sql`` is the
    ``$oid`` column, the identity the engine's ``=`` compares.
    """

    sql: str
    tag: str


@dataclass
class _VarBind:
    """How one range variable is realized inside a SQL segment."""

    kind: str  # "record" | "scalar" | "expr"
    alias: str = ""
    table: _Table | None = None
    expr: _SqlExpr | None = None


_NUMERIC = frozenset(("int", "float", "num", "bool"))


def _comparable(a: str, b: str) -> bool:
    if "any" in (a, b) or "null" in (a, b):
        return True  # a NULL operand yields NULL on both backends
    return (a in _NUMERIC and b in _NUMERIC) or (a == "str" and b == "str")


def _literal(value: Any) -> _SqlExpr | None:
    if isinstance(value, bool):
        return _SqlExpr("1" if value else "0", "bool")
    if isinstance(value, int):
        return _SqlExpr(str(value), "int")
    if isinstance(value, float):
        if not math.isfinite(value):
            return None  # SQLite has no literal NaN/inf
        return _SqlExpr(repr(value), "float")
    if isinstance(value, str):
        if "\x00" in value:
            return None
        return _SqlExpr("'" + value.replace("'", "''") + "'", "str")
    return None


def _sql_expr(term: Term, binds: Mapping[str, _VarBind]) -> _SqlExpr | None:
    """Translate a calculus term to SQL, or None when no faithful
    translation exists (the caller falls back to residual Python).

    Deliberately untranslated: ``/`` and ``%`` (SQLite truncates integer
    division and yields NULL on zero where the engine raises a structured
    error), parameters (bound per execution, after segment compilation),
    string concatenation, and anything collection- or record-constructing.
    """
    if isinstance(term, Const):
        return _literal(term.value)
    if isinstance(term, Null):
        return _SqlExpr("NULL", "null")
    if isinstance(term, (Var, Proj)):
        return _resolve_path(term, binds)
    if isinstance(term, IsNull):
        inner = _sql_expr(term.expr, binds)
        if inner is None:
            return None
        return _SqlExpr(f"({inner.sql} IS NULL)", "bool")
    if isinstance(term, Not):
        inner = _sql_expr(term.expr, binds)
        if inner is None or inner.tag not in ("bool", "any", "null"):
            return None
        return _SqlExpr(f"(NOT {inner.sql})", "bool")
    if isinstance(term, If):
        cond = _sql_expr(term.cond, binds)
        then = _sql_expr(term.then, binds)
        orelse = _sql_expr(term.orelse, binds)
        if cond is None or then is None or orelse is None:
            return None
        if "object" in (cond.tag, then.tag, orelse.tag):
            return None
        # SQL CASE takes ELSE on a NULL condition, matching the calculus.
        return _SqlExpr(
            f"(CASE WHEN {cond.sql} THEN {then.sql} ELSE {orelse.sql} END)",
            _result_tag(then.tag, orelse.tag),
        )
    if isinstance(term, BinOp):
        return _sql_binop(term, binds)
    return None


def _result_tag(a: str, b: str) -> str:
    if a == b:
        return a
    if a in ("null", "any"):
        return b
    if b in ("null", "any"):
        return a
    if a in _NUMERIC and b in _NUMERIC:
        return "float" if "float" in (a, b) else "num"
    return "any"


def _sql_binop(term: BinOp, binds: Mapping[str, _VarBind]) -> _SqlExpr | None:
    left = _sql_expr(term.left, binds)
    right = _sql_expr(term.right, binds)
    if left is None or right is None:
        return None
    op = term.op
    if op in ("and", "or"):
        if left.tag not in ("bool", "any", "null"):
            return None
        if right.tag not in ("bool", "any", "null"):
            return None
        # The reference evaluator is *left-biased*, not Kleene: a NULL left
        # operand yields NULL even when the right operand would decide
        # (``NULL and False`` is NULL; SQLite's Kleene AND gives False, and
        # likewise ``NULL or True``).  The right-operand cases agree —
        # ``False and NULL`` short-circuits to False on both — so guarding
        # the left operand with a CASE restores exact parity.
        return _SqlExpr(
            f"(CASE WHEN ({left.sql}) IS NULL THEN NULL "
            f"ELSE {left.sql} {op.upper()} {right.sql} END)",
            "bool",
        )
    if op in ("==", "!="):
        sql_op = "=" if op == "==" else "<>"
        if left.tag == "object" or right.tag == "object":
            # Object equality is OID equality (identity semantics).  A
            # mixed object/scalar comparison is rejected by the typechecker;
            # don't guess at it here.
            if {left.tag, right.tag} <= {"object", "null"}:
                return _SqlExpr(f"({left.sql} {sql_op} {right.sql})", "bool")
            return None
        if not _comparable(left.tag, right.tag):
            return None
        return _SqlExpr(f"({left.sql} {sql_op} {right.sql})", "bool")
    if op in ("<", "<=", ">", ">="):
        if "object" in (left.tag, right.tag):
            return None
        if not _comparable(left.tag, right.tag):
            return None
        return _SqlExpr(f"({left.sql} {op} {right.sql})", "bool")
    if op in ("+", "-", "*"):
        if left.tag not in _NUMERIC and left.tag != "null":
            return None
        if right.tag not in _NUMERIC and right.tag != "null":
            return None
        return _SqlExpr(
            f"({left.sql} {op} {right.sql})", _result_tag(left.tag, right.tag)
        )
    return None  # "/" and "%" stay residual by design


def _resolve_path(term: Term, binds: Mapping[str, _VarBind]) -> _SqlExpr | None:
    """A variable or projection chain as a SQL column reference."""
    attrs: list[str] = []
    while isinstance(term, Proj):
        attrs.append(term.attr)
        term = term.expr
    if not isinstance(term, Var):
        return None
    bind = binds.get(term.name)
    if bind is None:
        return None
    if bind.kind == "expr":
        return bind.expr if not attrs else None
    table = bind.table
    assert table is not None
    if bind.kind == "scalar":
        if attrs:
            return None  # projecting a scalar is an engine-side error
        return _SqlExpr(
            f"{bind.alias}.{_q(table.value_column(''))}", table.columns[""]
        )
    if not attrs:
        return _SqlExpr(f"{bind.alias}.{_q(table.oid_column())}", "object")
    path = "$".join(reversed(attrs))
    if path in table.columns:
        return _SqlExpr(
            f"{bind.alias}.{_q(table.value_column(path))}", table.columns[path]
        )
    if path in table.records:
        return _SqlExpr(f"{bind.alias}.{_q(table.oid_column(path))}", "object")
    return None  # a collection path or an attribute the catalog lacks


# ---------------------------------------------------------------------------
# SQL lowering: operator chains
# ---------------------------------------------------------------------------


@dataclass
class _Chain:
    """A partially built flat SELECT: FROM tree, filters, and bindings."""

    from_sql: str
    where: list[str]
    binds: dict[str, _VarBind]
    tables: list[tuple[str, _Table]]  # (alias, table) in enumeration order
    uses_table: bool = True


@dataclass
class _Segment:
    """One compiled flat query covering a subtree of the logical plan."""

    sql: str
    #: Per-output-column decode instructions: (var, kind, tag).
    decoders: tuple[tuple[str, str, str], ...]
    #: Root extents whose objects the decoded rows reference.
    extents: tuple[str, ...]


class _SegmentBuilder:
    """Compiles maximal operator subtrees into flat SELECT statements."""

    def __init__(self, store: ShreddedStore):
        self._store = store

    def build(self, plan: Operator) -> _Segment | None:
        counter = [0]
        chain = self._chain(plan, counter)
        if chain is None or not chain.uses_table:
            return None
        return self._finalize(plan, chain)

    # -- chain construction --------------------------------------------------

    def _alias(self, counter: list[int]) -> str:
        alias = f"t{counter[0]}"
        counter[0] += 1
        return alias

    def _chain(self, plan: Operator, counter: list[int]) -> _Chain | None:
        if isinstance(plan, Scan):
            return self._chain_scan(plan, counter)
        if isinstance(plan, Select):
            return self._chain_select(plan, counter)
        if isinstance(plan, Map):
            return self._chain_map(plan, counter)
        if isinstance(plan, (Join, OuterJoin)):
            return self._chain_join(plan, counter)
        if isinstance(plan, (Unnest, OuterUnnest)):
            return self._chain_unnest(plan, counter)
        return None

    def _chain_scan(self, plan: Scan, counter: list[int]) -> _Chain | None:
        table = self._store.tables.get(plan.extent)
        if table is None:
            return None
        alias = self._alias(counter)
        kind = "record" if table.element == "record" else "scalar"
        return _Chain(
            from_sql=f"{_q(table.name)} {alias}",
            where=[],
            binds={plan.var: _VarBind(kind, alias, table)},
            tables=[(alias, table)],
        )

    def _chain_select(self, plan: Select, counter: list[int]) -> _Chain | None:
        chain = self._chain(plan.child, counter)
        if chain is None:
            return None
        pred = _sql_expr(plan.pred, chain.binds)
        if pred is None:
            return None
        chain.where.append(pred.sql)
        return chain

    def _chain_map(self, plan: Map, counter: list[int]) -> _Chain | None:
        chain = self._chain(plan.child, counter)
        if chain is None:
            return None
        for name, expr in plan.bindings:
            compiled = _sql_expr(expr, chain.binds)
            if compiled is None:
                return None
            chain.binds[name] = _VarBind("expr", expr=compiled)
        return chain

    def _chain_join(
        self, plan: Join | OuterJoin, counter: list[int]
    ) -> _Chain | None:
        left = self._chain(plan.left, counter)
        if left is None:
            return None
        right = self._chain(plan.right, counter)
        if right is None:
            return None
        binds = {**left.binds, **right.binds}
        on: list[str] = []
        if plan.pred != Const(True):
            pred = _sql_expr(plan.pred, binds)
            if pred is None:
                return None
            on.append(pred.sql)
        if isinstance(plan, OuterJoin):
            # The right side's filters must join the ON clause: a LEFT JOIN
            # pads left rows whose partners fail them, exactly as O5 pads
            # when the predicate fails.
            on.extend(right.where)
            where = left.where
            keyword = "LEFT JOIN"
        else:
            where = left.where + right.where
            keyword = "JOIN"
        condition = " AND ".join(on) if on else "1"
        return _Chain(
            from_sql=(
                f"({left.from_sql} {keyword} {right.from_sql} ON {condition})"
            ),
            where=where,
            binds=binds,
            tables=left.tables + right.tables,
        )

    def _chain_unnest(
        self, plan: Unnest | OuterUnnest, counter: list[int]
    ) -> _Chain | None:
        chain = self._chain(plan.child, counter)
        if chain is None:
            return None
        resolved = self._collection(plan.path, chain.binds)
        if resolved is None:
            return None
        parent_alias, parent_table, child = resolved
        alias = self._alias(counter)
        kind = "record" if child.element == "record" else "scalar"
        binds = dict(chain.binds)
        binds[plan.var] = _VarBind(kind, alias, child)
        on = [
            f"{alias}.{_q('$parent')} = "
            f"{parent_alias}.{_q(parent_table.oid_column())}"
        ]
        if plan.pred != Const(True):
            pred = _sql_expr(plan.pred, binds)
            if pred is None:
                return None
            # O6 pads when no element *satisfies the predicate*, which is
            # precisely LEFT JOIN with the predicate in the ON clause.
            on.append(pred.sql)
        keyword = "LEFT JOIN" if isinstance(plan, OuterUnnest) else "JOIN"
        return _Chain(
            from_sql=(
                f"({chain.from_sql} {keyword} {_q(child.name)} {alias} "
                f"ON {' AND '.join(on)})"
            ),
            where=chain.where,
            binds=binds,
            tables=chain.tables + [(alias, child)],
        )

    def _collection(
        self, path: Term, binds: Mapping[str, _VarBind]
    ) -> tuple[str, _Table, _Table] | None:
        """Resolve an unnest path to (parent alias, parent table, child)."""
        attrs: list[str] = []
        while isinstance(path, Proj):
            attrs.append(path.attr)
            path = path.expr
        if not isinstance(path, Var) or not attrs:
            return None
        bind = binds.get(path.name)
        if bind is None or bind.kind != "record":
            return None
        assert bind.table is not None
        child = bind.table.children.get("$".join(reversed(attrs)))
        if child is None:
            return None
        return bind.alias, bind.table, child

    # -- SELECT assembly -----------------------------------------------------

    def _finalize(self, plan: Operator, chain: _Chain) -> _Segment:
        select: list[str] = []
        decoders: list[tuple[str, str, str]] = []
        for position, var in enumerate(plan.columns()):
            bind = chain.binds[var]
            if bind.kind == "record":
                assert bind.table is not None
                expr = f"{bind.alias}.{_q(bind.table.oid_column())}"
                decoders.append((var, "object", ""))
            elif bind.kind == "scalar":
                assert bind.table is not None
                expr = f"{bind.alias}.{_q(bind.table.value_column(''))}"
                decoders.append((var, "scalar", bind.table.columns[""]))
            else:
                assert bind.expr is not None
                expr = bind.expr.sql
                decoders.append((var, "scalar", bind.expr.tag))
            select.append(f"{expr} AS c{position}")
        # Ordering by every constituent $pos reproduces the in-memory
        # engine's nested-loop enumeration order (padded rows sort first
        # within their left row, which is also the only row it has).
        order = ", ".join(
            f"{alias}.{_q('$pos')}" for alias, _ in chain.tables
        )
        sql = f"SELECT {', '.join(select)} FROM {chain.from_sql}"
        if chain.where:
            sql += f" WHERE {' AND '.join(chain.where)}"
        sql += f" ORDER BY {order}"
        extents = tuple(
            dict.fromkeys(table.extent for _, table in chain.tables)
        )
        return _Segment(sql, tuple(decoders), extents)


def compile_segments(
    plan: Operator, store: ShreddedStore
) -> dict[int, _Segment]:
    """Maximal SQL-translatable subtrees of *plan*, keyed by node ``id``.

    The walk is top-down greedy: the largest subtree that fully translates
    becomes one flat SELECT; anything that refuses (nest operators, residual
    expressions, refused extents) stays Python, and the search recurses into
    its children — so a plan degrades gracefully from "one flat query per
    nesting level" down to per-scan queries, never failing outright.
    """
    builder = _SegmentBuilder(store)
    segments: dict[int, _Segment] = {}

    def visit(node: Operator) -> None:
        if isinstance(
            node, (Scan, Select, Map, Join, OuterJoin, Unnest, OuterUnnest)
        ):
            segment = builder.build(node)
            if segment is not None:
                segments[id(node)] = segment
                return
        for child in node.children():
            visit(child)

    visit(plan)
    return segments


# ---------------------------------------------------------------------------
# Execution: SQL segments + residual reference semantics
# ---------------------------------------------------------------------------


class _HybridEvaluator(PlanEvaluator):
    """The stitching evaluator: SQL segments below, reference Python above.

    Operators covered by a compiled segment stream decoded SQLite rows;
    every other operator — ``Nest`` (the stitcher), ``Reduce``, and any
    operator whose expressions stayed residual — runs the inherited
    reference semantics over the shredded store's rehydrated extents.
    Identity, 3VL, and monoid behavior therefore match the in-memory
    engine by construction.
    """

    def __init__(
        self,
        store: ShreddedStore,
        segments: Mapping[int, _Segment],
        params: Mapping[str, Any] | None = None,
        governor: Any | None = None,
    ):
        super().__init__(store)
        # Residual terms need parameter values and governor ticks; the
        # base class builds its term evaluator with neither.
        self._terms = TermEvaluator(store, params, governor)
        self._store = store
        self._segments = segments
        self._governor = governor
        #: (sql, rows, milliseconds) per executed flat query.
        self.flat_queries: list[tuple[str, int, float]] = []

    def stream(self, plan: Operator) -> Iterator[dict[str, Any]]:
        segment = self._segments.get(id(plan))
        if segment is None:
            return super().stream(plan)
        return self._stream_segment(segment)

    def _stream_segment(self, segment: _Segment) -> Iterator[dict[str, Any]]:
        store = self._store
        store.ensure_loaded(segment.extents)
        start = time.perf_counter()
        with store.lock:
            rows = store.connection.execute(segment.sql).fetchall()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.flat_queries.append((segment.sql, len(rows), elapsed_ms))
        governor = self._governor
        tick = governor.tick if governor is not None else None
        objects = store.objects
        decoders = segment.decoders
        for row in rows:
            self.steps += 1
            if tick is not None:
                tick()
            env: dict[str, Any] = {}
            for (var, kind, tag), value in zip(decoders, row):
                if value is None:
                    env[var] = NULL
                elif kind == "object":
                    env[var] = objects[value]
                else:
                    env[var] = bool(value) if tag == "bool" else value
            yield env


def execute_shredded(
    compiled: Any,
    database: Database,
    params: Mapping[str, Any] | None = None,
    governor: Any | None = None,
    flat_queries: list | None = None,
) -> Any:
    """Run a :class:`~repro.core.pipeline.CompiledQuery` on the SQLite
    backend; *flat_queries* (when given) collects (sql, rows, ms) tuples."""
    if compiled.optimized is None:
        raise BackendUnsupportedError(
            "backend='sqlite' requires an unnested algebraic plan "
            "(compile with unnest=True)"
        )
    store = shredded_store(database)
    segments = compile_segments(compiled.optimized, store)
    evaluator = _HybridEvaluator(store, segments, params, governor)
    result = evaluator.evaluate(compiled.optimized)
    if flat_queries is not None:
        flat_queries.extend(evaluator.flat_queries)
    return result


def explain_shredded(compiled: Any, database: Database) -> str:
    """An EXPLAIN rendering: the operator tree with each compiled subtree's
    generated flat SQL, and ``[py]`` markers on residual operators."""
    if compiled.optimized is None:
        raise BackendUnsupportedError(
            "backend='sqlite' requires an unnested algebraic plan "
            "(compile with unnest=True)"
        )
    store = shredded_store(database)
    segments = compile_segments(compiled.optimized, store)
    lines = ["backend: sqlite (query shredding over stdlib sqlite3)"]

    def visit(node: Operator, depth: int) -> None:
        indent = "  " * depth
        segment = segments.get(id(node))
        if segment is not None:
            lines.append(f"{indent}[sql] {type(node).__name__} subtree:")
            lines.append(f"{indent}      {segment.sql}")
            return
        lines.append(f"{indent}[py]  {type(node).__name__}")
        for child in node.children():
            visit(child, depth + 1)

    visit(compiled.optimized, 0)
    return "\n".join(lines)


def shredded_sql(database: Database, source: str) -> list[str]:
    """The flat SQL statements the backend generates for *source*, in plan
    pre-order (the golden-SQL test surface)."""
    from repro.core.optimizer import OptimizerOptions
    from repro.core.pipeline import QueryPipeline

    pipeline = QueryPipeline(database, OptimizerOptions(backend="sqlite"))
    compiled = pipeline.compile_oql(source)
    if compiled.optimized is None:  # pragma: no cover - unnest is on
        return []
    store = shredded_store(database)
    segments = compile_segments(compiled.optimized, store)
    statements: list[str] = []

    def visit(node: Operator) -> None:
        segment = segments.get(id(node))
        if segment is not None:
            statements.append(segment.sql)
            return
        for child in node.children():
            visit(child)

    visit(compiled.optimized)
    return statements
