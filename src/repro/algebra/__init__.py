"""The nested relational algebra (paper Section 3, Figures 5 and 6).

:mod:`repro.algebra.semantics` additionally provides each operator's
*defining calculus equation* (O1-O7) as an executable comprehension.
"""

from repro.algebra.evaluator import PlanEvaluator, evaluate_plan
from repro.algebra.operators import (
    Eval,
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
    operators,
    transform_plan,
)
from repro.algebra.pretty import plan_signature, pretty_plan

__all__ = [
    "Eval",
    "Join",
    "Map",
    "Nest",
    "Operator",
    "OuterJoin",
    "OuterUnnest",
    "PlanEvaluator",
    "Reduce",
    "Scan",
    "Seed",
    "Select",
    "Unnest",
    "evaluate_plan",
    "operators",
    "plan_signature",
    "pretty_plan",
    "transform_plan",
]
