"""The nested relational algebra of Section 3 (Figures 5 and 6).

Operators: join (O1), selection (O2), unnest (O3), reduce (O4), left
outer-join (O5), outer-unnest (O6), and nest (O7).  ``Scan`` (the paper's
``Get``/extent leaf) and ``Seed`` (the unit input stream ``{()}`` used by
the unnesting algorithm's seed, Figure 7 rule C1) complete the set.

The paper passes nested pairs ``(w, v)`` between operators; we pass
*environments* — mappings from range-variable names to values — which is the
same information keyed by name instead of by position.  Every operator other
than ``Reduce`` produces a stream of environments; ``Reduce`` produces a
single value and is always the root.

Operator parameters (predicates, heads, paths) are calculus terms whose free
variables refer to the environment's columns.  ``columns()`` reports which
variables an operator's output stream binds — the unnesting algorithm's
``w`` is exactly ``plan.columns()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.calculus.monoids import MONOID_SYMBOLS, Monoid, monoid as lookup_monoid
from repro.calculus.terms import Const, Term


class Operator:
    """Base class for all algebra operators."""

    __slots__ = ()

    def columns(self) -> tuple[str, ...]:
        """The range variables bound by this operator's output stream."""
        raise NotImplementedError

    def children(self) -> tuple["Operator", ...]:
        return ()

    def __str__(self) -> str:
        from repro.algebra.pretty import pretty_plan

        return pretty_plan(self)


def _check_monoid(name: str) -> Monoid:
    return lookup_monoid(name)


@dataclass(frozen=True)
class Seed(Operator):
    """The unit input stream ``{()}``: exactly one empty environment.

    This is the seed of the translation (Figure 7, the ``{()}``
    superscript of rule C1): boxes with no enclosing generators are spliced
    onto it.
    """

    def columns(self) -> tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class Scan(Operator):
    """A class-extent leaf: binds *var* to each object of extent *extent*."""

    extent: str
    var: str

    def columns(self) -> tuple[str, ...]:
        return (self.var,)


@dataclass(frozen=True)
class Select(Operator):
    """Selection σ_p (O2): keeps environments whose predicate is true."""

    child: Operator
    pred: Term

    def columns(self) -> tuple[str, ...]:
        return self.child.columns()

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Join(Operator):
    """Join ⋈_p (O1): all pairs of left/right environments satisfying p."""

    left: Operator
    right: Operator
    pred: Term

    def __post_init__(self) -> None:
        overlap = set(self.left.columns()) & set(self.right.columns())
        if overlap:
            raise ValueError(f"join sides share columns {sorted(overlap)}")

    def columns(self) -> tuple[str, ...]:
        return self.left.columns() + self.right.columns()

    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Unnest(Operator):
    """Unnest μ^path_p (O3): binds *var* to each element of *path*.

    *path* is a calculus term over the input columns evaluating to a
    collection; environments whose collection is empty produce nothing.
    """

    child: Operator
    path: Term
    var: str
    pred: Term = Const(True)

    def columns(self) -> tuple[str, ...]:
        return self.child.columns() + (self.var,)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)


@dataclass(frozen=True)
class OuterJoin(Operator):
    """Left outer-join ⟕_p (O5).

    Like ``Join`` but a left environment with no qualifying right partner is
    padded with NULL for every right column, so the left stream is never
    blocked — the key property the unnesting algorithm relies on.
    """

    left: Operator
    right: Operator
    pred: Term

    def __post_init__(self) -> None:
        overlap = set(self.left.columns()) & set(self.right.columns())
        if overlap:
            raise ValueError(f"outer-join sides share columns {sorted(overlap)}")

    def columns(self) -> tuple[str, ...]:
        return self.left.columns() + self.right.columns()

    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class OuterUnnest(Operator):
    """Outer-unnest =μ^path_p (O6).

    Like ``Unnest`` but an environment whose collection is empty, NULL, or
    has no element satisfying the predicate is padded with ``var = NULL``.
    """

    child: Operator
    path: Term
    var: str
    pred: Term = Const(True)

    def columns(self) -> tuple[str, ...]:
        return self.child.columns() + (self.var,)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Reduce(Operator):
    """Reduce Δ^{⊕/e}_p (O4): the root of every plan.

    Merges ``e(env)`` over all qualifying environments with the accumulator
    ⊕ — a generalized projection that also covers aggregation (⊕ = sum, …)
    and quantification (⊕ = all/some), exactly as in the paper.
    """

    child: Operator
    monoid_name: str
    head: Term
    pred: Term = Const(True)

    def __post_init__(self) -> None:
        _check_monoid(self.monoid_name)

    @property
    def monoid(self) -> Monoid:
        return lookup_monoid(self.monoid_name)

    @property
    def symbol(self) -> str:
        return MONOID_SYMBOLS[self.monoid_name]

    def columns(self) -> tuple[str, ...]:
        return ()  # produces a value, not a stream

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Nest(Operator):
    """Nest Γ^{⊕/e/g}_{p/f} (O7): grouping with accumulation.

    Groups the input by the *group_by* columns (the paper's group-by
    function ``f = w\\u``), reduces each group's ``head`` values with ⊕, and
    emits one environment per group binding *out_var* to the group's result.
    Environments in which any *null_vars* column (the paper's ``g``, i.e.
    the variables introduced inside the spliced box by outer-joins and
    outer-unnests) is NULL contribute nothing, so a group consisting only of
    NULL-padding reduces to the monoid's zero — the null-to-zero conversion
    of the paper.
    """

    child: Operator
    monoid_name: str
    head: Term
    group_by: tuple[str, ...]
    null_vars: tuple[str, ...]
    out_var: str
    pred: Term = Const(True)

    def __post_init__(self) -> None:
        _check_monoid(self.monoid_name)
        missing = set(self.group_by) | set(self.null_vars)
        missing -= set(self.child.columns())
        if missing:
            raise ValueError(
                f"nest references columns {sorted(missing)} not produced by its "
                f"input ({self.child.columns()})"
            )

    @property
    def monoid(self) -> Monoid:
        return lookup_monoid(self.monoid_name)

    @property
    def symbol(self) -> str:
        return MONOID_SYMBOLS[self.monoid_name]

    def columns(self) -> tuple[str, ...]:
        return self.group_by + (self.out_var,)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Map(Operator):
    """Extend each environment with computed columns.

    Not one of the paper's Figure 5 operators; it is the standard
    materialize-a-projection step the Section 5 simplification uses to turn
    grouping *by an expression* (Figure 8.B groups by ``e.dno``) into
    grouping by a column.
    """

    child: Operator
    bindings: tuple[tuple[str, Term], ...]

    def __post_init__(self) -> None:
        clash = {name for name, _ in self.bindings} & set(self.child.columns())
        if clash:
            raise ValueError(f"map rebinds existing columns {sorted(clash)}")

    def columns(self) -> tuple[str, ...]:
        return self.child.columns() + tuple(name for name, _ in self.bindings)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Eval(Operator):
    """Evaluate an expression over a singleton stream and return its value.

    Not one of the paper's operators: it is the root used for top-level
    queries that are not themselves comprehensions (e.g. a merge of two
    comprehensions produced by normalization rule N3).  Its child must
    produce exactly one environment — which splices onto ``Seed`` guarantee.
    """

    child: Operator
    expr: Term

    def columns(self) -> tuple[str, ...]:
        return ()

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)


def operators(plan: Operator) -> Iterator[Operator]:
    """All operators in *plan*, pre-order."""
    yield plan
    for child in plan.children():
        yield from operators(child)


def rebuild(plan: Operator, children: tuple[Operator, ...]) -> Operator:
    """Reconstruct *plan* with new children (in ``children()`` order)."""
    if isinstance(plan, (Seed, Scan)):
        return plan
    if isinstance(plan, Select):
        return Select(children[0], plan.pred)
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.pred)
    if isinstance(plan, OuterJoin):
        return OuterJoin(children[0], children[1], plan.pred)
    if isinstance(plan, Unnest):
        return Unnest(children[0], plan.path, plan.var, plan.pred)
    if isinstance(plan, OuterUnnest):
        return OuterUnnest(children[0], plan.path, plan.var, plan.pred)
    if isinstance(plan, Reduce):
        return Reduce(children[0], plan.monoid_name, plan.head, plan.pred)
    if isinstance(plan, Eval):
        return Eval(children[0], plan.expr)
    if isinstance(plan, Map):
        return Map(children[0], plan.bindings)
    if isinstance(plan, Nest):
        return Nest(
            children[0],
            plan.monoid_name,
            plan.head,
            plan.group_by,
            plan.null_vars,
            plan.out_var,
            plan.pred,
        )
    raise TypeError(f"unknown operator {type(plan).__name__}")


def transform_plan(plan: Operator, fn) -> Operator:
    """Rebuild *plan* bottom-up, applying *fn* at every node."""
    new_children = tuple(transform_plan(c, fn) for c in plan.children())
    return fn(rebuild(plan, new_children))
