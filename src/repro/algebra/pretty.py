"""Rendering algebra plans as the paper's operator trees (Figures 1, 2, 8).

``pretty_plan`` produces an indented tree with the paper's operator glyphs:

    reduce[U / ( C=c.name, E=e.name )]
      unnest[c <- e.children]
        scan[e <- Employees]

which is the textual form of Figure 1.A.  ``plan_signature`` produces a
compact one-line skeleton (operator names only) that the figure-reproduction
tests assert against.
"""

from __future__ import annotations

from repro.algebra.operators import (
    Eval,
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.pretty import pretty
from repro.calculus.terms import Const


def _label(plan: Operator) -> str:
    if isinstance(plan, Seed):
        return "seed[{()}]"
    if isinstance(plan, Scan):
        return f"scan[{plan.var} <- {plan.extent}]"
    if isinstance(plan, Select):
        return f"select[{pretty(plan.pred)}]"
    if isinstance(plan, Join):
        return f"join[{pretty(plan.pred)}]"
    if isinstance(plan, OuterJoin):
        return f"outer-join[{pretty(plan.pred)}]"
    if isinstance(plan, Unnest):
        label = f"unnest[{plan.var} <- {pretty(plan.path)}]"
        return _with_pred(label, plan.pred)
    if isinstance(plan, OuterUnnest):
        label = f"outer-unnest[{plan.var} <- {pretty(plan.path)}]"
        return _with_pred(label, plan.pred)
    if isinstance(plan, Reduce):
        label = f"reduce[{plan.symbol} / {pretty(plan.head)}]"
        return _with_pred(label, plan.pred)
    if isinstance(plan, Map):
        inner = ", ".join(f"{n}={pretty(e)}" for n, e in plan.bindings)
        return f"map[{inner}]"
    if isinstance(plan, Eval):
        return f"eval[{pretty(plan.expr)}]"
    if isinstance(plan, Nest):
        group = ",".join(plan.group_by) or "()"
        nulls = ",".join(plan.null_vars) or "-"
        label = (
            f"nest[{plan.symbol} / {plan.out_var}={pretty(plan.head)} "
            f"group_by({group}) nulls({nulls})]"
        )
        return _with_pred(label, plan.pred)
    raise TypeError(f"unknown operator {type(plan).__name__}")


def _with_pred(label: str, pred) -> str:
    if pred == Const(True):
        return label
    return f"{label} where {pretty(pred)}"


def pretty_plan(plan: Operator, indent: int = 0) -> str:
    """Render *plan* as an indented operator tree (root first)."""
    lines = [("  " * indent) + _label(plan)]
    for child in plan.children():
        lines.append(pretty_plan(child, indent + 1))
    return "\n".join(lines)


_SHORT_NAMES = {
    Eval: "eval",
    Map: "map",
    Seed: "seed",
    Scan: "scan",
    Select: "select",
    Join: "join",
    OuterJoin: "outer-join",
    Unnest: "unnest",
    OuterUnnest: "outer-unnest",
    Reduce: "reduce",
    Nest: "nest",
}


def plan_signature(plan: Operator) -> str:
    """A compact skeleton, e.g. ``reduce(nest(outer-join(scan, scan)))``.

    Used by the figure tests: the paper's figures fix the operator skeleton
    of each plan, and this string is what we compare against.
    """
    name = _SHORT_NAMES[type(plan)]
    children = plan.children()
    if not children:
        return name
    inner = ", ".join(plan_signature(c) for c in children)
    return f"{name}({inner})"
