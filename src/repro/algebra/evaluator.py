"""Reference semantics for the nested relational algebra (Figure 5).

This evaluator interprets logical plans directly, tuple-at-a-time, with no
physical tricks (no hashing, no indexes): it is the executable form of the
definitional equations O1–O7 and serves as the middle point of the
correctness triangle

    calculus evaluator  ==  algebra evaluator  ==  physical engine

exercised by the integration tests.  The optimized execution lives in
:mod:`repro.engine`.

NULL policy (shared with the calculus evaluator): predicates that evaluate
to NULL are false; head values that evaluate to NULL contribute nothing to
*primitive* accumulators (a NULL cannot be summed or conjoined) but are kept
as elements of collection accumulators.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.algebra.operators import (
    Eval,
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.evaluator import EvaluationError, Evaluator as TermEvaluator, ExtentProvider
from repro.calculus.monoids import CollectionMonoid, Monoid
from repro.calculus.terms import Term
from repro.data.values import NULL, CollectionValue, identity_key, is_null

Env = dict[str, Any]


class PlanEvaluator:
    """Evaluates algebra plans against an extent provider."""

    def __init__(self, database: ExtentProvider):
        self._terms = TermEvaluator(database)
        self._database = database
        self.steps = 0

    # -- public entry points -------------------------------------------------

    def evaluate(self, plan: Operator) -> Any:
        """Evaluate a plan rooted at a Reduce or Eval; returns its value."""
        if isinstance(plan, Reduce):
            return self._reduce(plan)
        if isinstance(plan, Eval):
            return self._eval_root(plan)
        raise TypeError(
            f"a complete plan must be rooted at Reduce or Eval, got "
            f"{type(plan).__name__}"
        )

    def _eval_root(self, plan: Eval) -> Any:
        envs = list(self.stream(plan.child))
        if len(envs) != 1:
            raise EvaluationError(
                f"Eval root expected exactly one environment, got {len(envs)}"
            )
        return self._value(plan.expr, envs[0])

    def stream(self, plan: Operator) -> Iterator[Env]:
        """The stream of environments produced by a non-root operator."""
        if isinstance(plan, Seed):
            yield {}
        elif isinstance(plan, Scan):
            yield from self._scan(plan)
        elif isinstance(plan, Select):
            yield from self._select(plan)
        elif isinstance(plan, Map):
            yield from self._map(plan)
        elif isinstance(plan, Join):
            yield from self._join(plan)
        elif isinstance(plan, OuterJoin):
            yield from self._outer_join(plan)
        elif isinstance(plan, Unnest):
            yield from self._unnest(plan)
        elif isinstance(plan, OuterUnnest):
            yield from self._outer_unnest(plan)
        elif isinstance(plan, Nest):
            yield from self._nest(plan)
        else:
            raise TypeError(f"cannot stream {type(plan).__name__}")

    # -- term helpers ---------------------------------------------------------

    def _value(self, term: Term, env: Env) -> Any:
        return self._terms.evaluate(term, env)

    def _holds(self, pred: Term, env: Env) -> bool:
        value = self._value(pred, env)
        if value is True:
            return True
        if value is False or is_null(value):
            return False
        raise EvaluationError("operator predicate did not evaluate to a boolean")

    # -- operators -------------------------------------------------------------

    def _scan(self, plan: Scan) -> Iterator[Env]:
        for obj in self._database.extent(plan.extent):
            self.steps += 1
            yield {plan.var: obj}

    def _select(self, plan: Select) -> Iterator[Env]:
        for env in self.stream(plan.child):
            if self._holds(plan.pred, env):
                yield env

    def _map(self, plan: Map) -> Iterator[Env]:
        for env in self.stream(plan.child):
            extended = dict(env)
            for name, expr in plan.bindings:
                extended[name] = self._value(expr, extended)
            yield extended

    def _join(self, plan: Join) -> Iterator[Env]:
        right = list(self.stream(plan.right))
        for left_env in self.stream(plan.left):
            for right_env in right:
                self.steps += 1
                env = {**left_env, **right_env}
                if self._holds(plan.pred, env):
                    yield env

    def _outer_join(self, plan: OuterJoin) -> Iterator[Env]:
        right = list(self.stream(plan.right))
        right_columns = plan.right.columns()
        for left_env in self.stream(plan.left):
            matched = False
            for right_env in right:
                self.steps += 1
                env = {**left_env, **right_env}
                if self._holds(plan.pred, env):
                    matched = True
                    yield env
            if not matched:
                yield {**left_env, **{col: NULL for col in right_columns}}

    def _elements(self, path: Term, env: Env) -> list[Any]:
        value = self._value(path, env)
        if is_null(value):
            return []
        if not isinstance(value, CollectionValue):
            raise EvaluationError(
                f"unnest path evaluated to {type(value).__name__}, "
                "expected a collection"
            )
        return list(value.elements())

    def _unnest(self, plan: Unnest) -> Iterator[Env]:
        for env in self.stream(plan.child):
            for element in self._elements(plan.path, env):
                self.steps += 1
                extended = {**env, plan.var: element}
                if self._holds(plan.pred, extended):
                    yield extended

    def _outer_unnest(self, plan: OuterUnnest) -> Iterator[Env]:
        for env in self.stream(plan.child):
            matched = False
            for element in self._elements(plan.path, env):
                self.steps += 1
                extended = {**env, plan.var: element}
                if self._holds(plan.pred, extended):
                    matched = True
                    yield extended
            if not matched:
                yield {**env, plan.var: NULL}

    def _contribution(self, monoid: Monoid, head: Term, env: Env) -> Any | None:
        """The value an environment contributes to a reduction, or None."""
        value = self._value(head, env)
        if isinstance(monoid, CollectionMonoid):
            return monoid.unit(value)
        if is_null(value):
            return None  # NULL contributes nothing to a primitive accumulator
        return monoid.lift(value)

    def _reduce(self, plan: Reduce) -> Any:
        monoid = plan.monoid
        result = monoid.zero
        for env in self.stream(plan.child):
            if not self._holds(plan.pred, env):
                continue
            contribution = self._contribution(monoid, plan.head, env)
            if contribution is not None:
                result = monoid.merge(result, contribution)
        if isinstance(monoid, CollectionMonoid):
            return result
        return monoid.finalize(result)

    def _nest(self, plan: Nest) -> Iterator[Env]:
        monoid = plan.monoid
        groups: dict[tuple[Any, ...], Any] = {}
        order: list[tuple[Any, ...]] = []
        keys_to_env: dict[tuple[Any, ...], Env] = {}
        for env in self.stream(plan.child):
            self.steps += 1
            # Group by object identity, not value: the unnesting translation
            # (rule C5) groups by the outer range variables assuming bindings
            # are distinguishable, and two stored objects with equal state
            # are still distinct objects.  identity_key degrades to the plain
            # value for identity-free bindings.
            key = tuple(identity_key(env[col]) for col in plan.group_by)
            if key not in groups:
                groups[key] = monoid.zero
                order.append(key)
                keys_to_env[key] = {col: env[col] for col in plan.group_by}
            if any(is_null(env[col]) for col in plan.null_vars):
                continue  # NULL padding converts to the monoid's zero
            if not self._holds(plan.pred, env):
                continue
            contribution = self._contribution(monoid, plan.head, env)
            if contribution is not None:
                groups[key] = monoid.merge(groups[key], contribution)
        finalize = (
            (lambda v: v) if isinstance(monoid, CollectionMonoid) else monoid.finalize
        )
        for key in order:
            yield {**keys_to_env[key], plan.out_var: finalize(groups[key])}


def evaluate_plan(plan: Operator, database: ExtentProvider) -> Any:
    """Convenience wrapper: evaluate *plan* against *database*."""
    return PlanEvaluator(database).evaluate(plan)
