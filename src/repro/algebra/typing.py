"""Typing rules for the nested relational algebra (paper Figure 6).

``infer_plan_type`` checks an algebra plan against a schema: every operator
must consume the environment its child produces, predicates must be boolean,
unnest paths must be collections, and the root reduce's type is the monoid's
carrier (a set of the head type for the set monoid, bool for quantifiers,
numeric for aggregates) — exactly the judgements of Figure 6.

Environment types are mappings from column names to data-model types; the
paper's nested-pair types ``set(t1 × t2)`` are these environments keyed by
name.
"""

from __future__ import annotations

from repro.algebra.operators import (
    Eval,
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.terms import Term
from repro.calculus.typing import CalculusTypeError, TypeChecker
from repro.data.schema import (
    ANY,
    AnyType,
    BoolType,
    CollectionType,
    Schema,
    Type,
)
from repro.errors import TypeCheckError

EnvType = dict[str, Type]


class AlgebraTypeError(TypeCheckError, TypeError):
    """A plan violates the typing rules of Figure 6.

    Both a :class:`~repro.errors.TypeCheckError` (the structured taxonomy)
    and a ``TypeError`` (the historical base, for existing callers).
    """


def infer_plan_type(plan: Operator, schema: Schema | None = None) -> Type:
    """The result type of a complete plan (rooted at Reduce or Eval)."""
    checker = PlanTypeChecker(schema)
    if isinstance(plan, Reduce):
        env = checker.stream_type(plan.child)
        checker.check_bool(plan.pred, env, "reduce predicate")
        return checker.reduction_type(plan.monoid_name, plan.head, env)
    if isinstance(plan, Eval):
        env = checker.stream_type(plan.child)
        return checker.infer(plan.expr, env)
    raise AlgebraTypeError(
        f"a complete plan must be rooted at Reduce or Eval, got "
        f"{type(plan).__name__}"
    )


class PlanTypeChecker:
    """Infers the environment type of every operator's output stream."""

    def __init__(self, schema: Schema | None = None):
        self._schema = schema
        self._terms = TypeChecker(schema)

    # -- term-level helpers ------------------------------------------------------

    def infer(self, term: Term, env: EnvType) -> Type:
        try:
            return self._terms.infer(term, dict(env))
        except CalculusTypeError as exc:
            raise AlgebraTypeError(str(exc)) from exc

    def check_bool(self, term: Term, env: EnvType, what: str) -> None:
        inferred = self.infer(term, env)
        if not isinstance(inferred, (BoolType, AnyType)):
            raise AlgebraTypeError(f"{what} has type {inferred}, expected bool")

    def reduction_type(self, monoid_name: str, head: Term, env: EnvType) -> Type:
        from repro.calculus.typing import _PRIMITIVE_MONOID_TYPES

        head_type = self.infer(head, env)
        if monoid_name in _PRIMITIVE_MONOID_TYPES:
            return _PRIMITIVE_MONOID_TYPES[monoid_name]
        return CollectionType(monoid_name, head_type)

    # -- operator rules -------------------------------------------------------------

    def stream_type(self, plan: Operator) -> EnvType:
        if isinstance(plan, Seed):
            return {}
        if isinstance(plan, Scan):
            return self._scan_type(plan)
        if isinstance(plan, Select):
            env = self.stream_type(plan.child)
            self.check_bool(plan.pred, env, "selection predicate")
            return env
        if isinstance(plan, Map):
            env = dict(self.stream_type(plan.child))
            for name, expr in plan.bindings:
                env[name] = self.infer(expr, env)
            return env
        if isinstance(plan, (Join, OuterJoin)):
            left = self.stream_type(plan.left)
            right = self.stream_type(plan.right)
            merged = {**left, **right}
            self.check_bool(plan.pred, merged, "join predicate")
            return merged
        if isinstance(plan, (Unnest, OuterUnnest)):
            env = dict(self.stream_type(plan.child))
            domain = self.infer(plan.path, env)
            if isinstance(domain, AnyType):
                element: Type = ANY
            elif isinstance(domain, CollectionType):
                element = domain.element
            else:
                raise AlgebraTypeError(
                    f"unnest path has non-collection type {domain}"
                )
            env[plan.var] = element
            self.check_bool(plan.pred, env, "unnest predicate")
            return env
        if isinstance(plan, Nest):
            env = self.stream_type(plan.child)
            missing = (set(plan.group_by) | set(plan.null_vars)) - set(env)
            if missing:
                raise AlgebraTypeError(
                    f"nest references unknown columns {sorted(missing)}"
                )
            self.check_bool(plan.pred, env, "nest predicate")
            out: EnvType = {col: env[col] for col in plan.group_by}
            out[plan.out_var] = self.reduction_type(plan.monoid_name, plan.head, env)
            return out
        raise AlgebraTypeError(f"cannot type operator {type(plan).__name__}")

    def _scan_type(self, plan: Scan) -> EnvType:
        if self._schema is not None and self._schema.has_extent(plan.extent):
            extent_type = self._schema.extent_type(plan.extent)
            return {plan.var: extent_type.element}
        return {plan.var: ANY}
