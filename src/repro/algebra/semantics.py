"""The definitional semantics of Figure 5, as executable calculus terms.

The paper defines every algebraic operator *by a monoid-calculus equation*
(O1–O7), e.g.::

    X ⋈_p Y          =  { (v, w) | v <- X, w <- Y, p(v, w) }          (O1)
    X =⨝_p Y         =  { (v, w) | v <- X,
                          w <- if all{ ¬p(v, w') | w' <- Y } then {NULL}
                               else { w' | w' <- Y, p(v, w') } }      (O5)
    Γ^{⊕/e/g}_{p/f}(X) = { ( f(v), ⊕{ e(w) | w <- X, g(w) ≠ NULL,
                            f(w) = f(v), p(w) } ) | v <- X }          (O7)

This module constructs those defining terms for concrete operator
instances, over *materialized* input streams (each environment reified as a
record value).  Evaluating the defining term with the reference calculus
evaluator and comparing against the operator's own evaluator output is the
executable form of "the semantics of these operations is given in terms of
the monoid calculus" — the test suite does exactly that for every operator.
"""

from __future__ import annotations

from typing import Iterable

from repro.calculus.evaluator import Evaluator
from repro.calculus.terms import (
    BinOp,
    Comprehension,
    Filter,
    Generator,
    IsNull,
    Not,
    Null,
    Proj,
    RecordCons,
    Singleton,
    Term,
    Var,
    substitute,
)
from repro.data.database import Database
from repro.data.values import Record, SetValue

Env = dict


def materialize(envs: Iterable[Env]) -> SetValue:
    """Reify a stream of environments as a set of records.

    The paper's streams carry (nested pairs of) range-variable bindings;
    records keyed by variable name are the same data.
    """
    return SetValue(Record(dict(env)) for env in envs)


def _open_env(columns: tuple[str, ...], tuple_var: str, term: Term) -> Term:
    """Rewrite free column variables into projections of *tuple_var*.

    Turns an operator parameter (free variables = columns) into a function
    of one reified stream record, i.e. the paper's λw.e(w).
    """
    mapping = {col: Proj(Var(tuple_var), col) for col in columns}
    return substitute(term, mapping)


def _pair(columns_left: tuple[str, ...], left_var: str, right: tuple[str, Term]) -> Term:
    """Build the output record ``(v, w)``: left columns + one new binding."""
    fields = [(col, Proj(Var(left_var), col)) for col in columns_left]
    fields.append(right)
    return RecordCons(tuple(sorted(fields)))


def join_semantics(
    left_columns: tuple[str, ...],
    right_var: str,
    pred: Term,
) -> Comprehension:
    """O1: X ⋈_p Y = { (v, w) | v <- X, w <- Y, p(v, w) }.

    The defining term is over two free collection variables ``__X`` and
    ``__Y`` (bind them via the evaluation environment).
    """
    pred_vw = substitute(
        _open_env(left_columns, "__v", pred), {right_var: Var("__w")}
    )
    head = _pair(left_columns, "__v", (right_var, Var("__w")))
    return Comprehension(
        "set",
        head,
        (
            Generator("__v", Var("__X")),
            Generator("__w", Var("__Y")),
            Filter(pred_vw),
        ),
    )


def select_semantics(columns: tuple[str, ...], pred: Term) -> Comprehension:
    """O2: σ_p(X) = { v | v <- X, p(v) }."""
    return Comprehension(
        "set",
        Var("__v"),
        (
            Generator("__v", Var("__X")),
            Filter(_open_env(columns, "__v", pred)),
        ),
    )


def unnest_semantics(
    columns: tuple[str, ...], path: Term, var: str, pred: Term
) -> Comprehension:
    """O3: μ^path_p(X) = { (v, w) | v <- X, w <- path(v), p(v, w) }."""
    path_v = _open_env(columns, "__v", path)
    pred_vw = substitute(_open_env(columns, "__v", pred), {var: Var("__w")})
    head = _pair(columns, "__v", (var, Var("__w")))
    return Comprehension(
        "set",
        head,
        (
            Generator("__v", Var("__X")),
            Generator("__w", path_v),
            Filter(pred_vw),
        ),
    )


def reduce_semantics(
    columns: tuple[str, ...], monoid_name: str, head: Term, pred: Term
) -> Comprehension:
    """O4: Δ^{⊕/e}_p(X) = ⊕{ e(v) | v <- X, p(v) }."""
    return Comprehension(
        monoid_name,
        _open_env(columns, "__v", head),
        (
            Generator("__v", Var("__X")),
            Filter(_open_env(columns, "__v", pred)),
        ),
    )


def outer_join_semantics(
    left_columns: tuple[str, ...],
    right_var: str,
    pred: Term,
) -> Comprehension:
    """O5: the left outer-join.

    ``w`` ranges over {NULL} when no element of Y joins with v, else over
    the qualifying elements of Y.
    """
    from repro.calculus.terms import If

    pred_of = lambda w: substitute(  # noqa: E731 - local shorthand
        _open_env(left_columns, "__v", pred), {right_var: w}
    )
    no_match = Comprehension(
        "all",
        Not(pred_of(Var("__w1"))),
        (Generator("__w1", Var("__Y")),),
    )
    qualifying = Comprehension(
        "set",
        Var("__w2"),
        (Generator("__w2", Var("__Y")), Filter(pred_of(Var("__w2")))),
    )
    domain = If(no_match, Singleton("set", Null()), qualifying)
    head = _pair(left_columns, "__v", (right_var, Var("__w")))
    return Comprehension(
        "set",
        head,
        (Generator("__v", Var("__X")), Generator("__w", domain)),
    )


def outer_unnest_semantics(
    columns: tuple[str, ...], path: Term, var: str, pred: Term
) -> Comprehension:
    """O6: the outer-unnest, by the same {NULL}-domain construction."""
    from repro.calculus.terms import If

    path_v = _open_env(columns, "__v", path)
    pred_of = lambda w: substitute(  # noqa: E731 - local shorthand
        _open_env(columns, "__v", pred), {var: w}
    )
    no_match = Comprehension(
        "all",
        Not(pred_of(Var("__w1"))),
        (Generator("__w1", path_v),),
    )
    qualifying = Comprehension(
        "set",
        Var("__w2"),
        (Generator("__w2", path_v), Filter(pred_of(Var("__w2")))),
    )
    domain = If(no_match, Singleton("set", Null()), qualifying)
    head = _pair(columns, "__v", (var, Var("__w")))
    return Comprehension(
        "set",
        head,
        (Generator("__v", Var("__X")), Generator("__w", domain)),
    )


def nest_semantics(
    columns: tuple[str, ...],
    monoid_name: str,
    head: Term,
    group_by: tuple[str, ...],
    null_vars: tuple[str, ...],
    out_var: str,
    pred: Term,
) -> Comprehension:
    """O7: Γ^{⊕/e/g}_{p/f}(X) — group by f, null-test g, reduce with ⊕."""
    group_eq = [
        BinOp("==", Proj(Var("__w"), col), Proj(Var("__v"), col))
        for col in group_by
    ]
    not_null = [Not(IsNull(Proj(Var("__w"), col))) for col in null_vars]
    inner_quals: list = [Generator("__w", Var("__X"))]
    for cond in not_null + group_eq:
        inner_quals.append(Filter(cond))
    inner_quals.append(Filter(_open_env(columns, "__w", pred)))
    inner = Comprehension(
        monoid_name,
        _open_env(columns, "__w", head),
        tuple(inner_quals),
    )
    out_fields = [(col, Proj(Var("__v"), col)) for col in group_by]
    out_fields.append((out_var, inner))
    return Comprehension(
        "set",
        RecordCons(tuple(sorted(out_fields))),
        (Generator("__v", Var("__X")),),
    )


def evaluate_definition(
    term: Comprehension,
    database: Database,
    X: SetValue,
    Y: SetValue | None = None,
):
    """Evaluate a defining term with its stream variables bound."""
    env = {"__X": X}
    if Y is not None:
        env["__Y"] = Y
    return Evaluator(database).evaluate(term, env)
