"""Command-line interface: run OQL against the built-in demo databases.

Usage::

    python -m repro "select distinct e.name from e in Employees"
    python -m repro --db university --explain "select distinct s from s in Student"
    python -m repro --trace --plan "for all a in A: exists b in B: a = b" --db ab
    python -m repro            # interactive shell

The interactive shell accepts OQL queries terminated by a semicolon and the
meta-commands ``\\plan``, ``\\explain``, ``\\trace``, ``\\calculus``,
``\\stages`` (toggle per-query output), ``\\cache`` (plan-cache statistics),
``\\compile`` (toggle expression codegen), ``\\batch`` (toggle batch
execution; ``\\batch N`` sets the rows-per-chunk), ``\\parallel`` (toggle
partitioned parallel execution; ``\\parallel N`` sets the worker count),
``\\backend``
(switch between the in-memory engine and the SQLite shredding backend;
``\\backend sqlite`` or, file-backed/out-of-core,
``\\backend sqlite /tmp/store.db``), ``\\limits``
(show/set per-query governor limits, e.g.
``\\limits timeout=1.0 max_rows=100000``),
``\\db <name>`` (switch database), and ``\\quit``.

Prepared-statement placeholders (``:name``) take their values from repeated
``--param name=value`` flags::

    python -m repro --param d=4 "select e.name from e in Employees where e.dno = :d"
"""

from __future__ import annotations

import argparse
import ast as python_ast
import sys
import time
from typing import Any, Callable

from repro.algebra.pretty import pretty_plan
from repro.calculus.pretty import pretty
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.data.database import Database
from repro.data.datagen import (
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)

DATABASES: dict[str, Callable[[], Database]] = {
    "company": lambda: company_database(num_employees=60, num_departments=8),
    "university": lambda: university_database(num_students=40, num_courses=12),
    "travel": lambda: travel_database(),
    "ab": lambda: ab_database(size_a=20, size_b=30),
    "auction": lambda: auction_database(num_users=30, num_items=20),
}


def build_parser() -> argparse.ArgumentParser:
    """The command-line argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run OQL queries through the Fegaras SIGMOD'98 unnesting "
            "optimizer against an in-memory demo database."
        ),
    )
    parser.add_argument("query", nargs="?", help="OQL query (omit for a REPL)")
    parser.add_argument(
        "--db",
        choices=sorted(DATABASES),
        default="company",
        help="demo database (default: company)",
    )
    parser.add_argument(
        "--plan", action="store_true", help="print the unnested algebraic plan"
    )
    parser.add_argument(
        "--explain", action="store_true", help="print the physical plan"
    )
    parser.add_argument(
        "--trace", action="store_true", help="print the unnesting rule trace"
    )
    parser.add_argument(
        "--calculus", action="store_true", help="print the calculus translation"
    )
    parser.add_argument(
        "--stages",
        action="store_true",
        help="print every pipeline stage's intermediate form and wall time",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help=(
            "bind a :name prepared-statement parameter (repeatable); the "
            "value is parsed as a Python literal, falling back to a string"
        ),
    )
    parser.add_argument(
        "--naive",
        action="store_true",
        help="also run the naive nested-loop strategy and compare times",
    )
    parser.add_argument(
        "--no-unnest",
        action="store_true",
        help="evaluate by direct calculus interpretation only",
    )
    parser.add_argument(
        "--no-compile",
        action="store_true",
        help=(
            "interpret expression ASTs per row instead of compiling them "
            "to native closures (the escape hatch for codegen issues)"
        ),
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help=(
            "stream one row at a time between operators instead of "
            "columnar chunks (the batch-execution escape hatch)"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="rows per chunk on the batch path (default 1024)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help=(
            "partition the driving extent scan and execute partition-local "
            "pipelines in a worker pool, merging deterministically at the "
            "root (plans that do not partition run serially)"
        ),
    )
    parser.add_argument(
        "-j",
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "worker/partition count for --parallel (default 0: one per "
            "visible core, capped at 8); implies --parallel when > 0"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
        help=(
            "execution backend: the in-memory reference engine, or query "
            "shredding over stdlib sqlite3 (flat SELECTs + stitching)"
        ),
    )
    parser.add_argument(
        "--db-path",
        default=None,
        metavar="FILE",
        help=(
            "with --backend sqlite: shred into (and reuse) a file-backed "
            "store at FILE instead of :memory:, so extents larger than RAM "
            "execute out of core; a manifest decides reuse vs. re-shred"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per query; exceeding it raises QueryTimeout",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=None,
        metavar="N",
        help=(
            "work-unit budget per query (rows emitted + join pairs "
            "considered); exceeding it raises BudgetExceeded"
        ),
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "estimated-memory budget for blocking operators (hash/merge "
            "join builds, grouping); exceeding it raises BudgetExceeded"
        ),
    )
    return parser


def format_result(result: Any, limit: int = 20) -> str:
    """Render a query result: record collections become aligned tables."""
    from repro.data.values import ListValue

    if not hasattr(result, "elements"):
        return f"  {result!r}"
    elements = list(result.elements())
    if not isinstance(result, ListValue):
        elements.sort(key=repr)
    count = len(elements)
    if count == 0:
        return "  (empty)\n(0 rows)"
    table = _format_table(elements[:limit])
    if table is None:
        table = "\n".join(f"  {element!r}" for element in elements[:limit])
    suffix = "" if count <= limit else f"\n  ... ({count} rows total)"
    return f"{table}{suffix}\n({count} rows)"


def _format_table(elements: list) -> str | None:
    """Aligned columns for homogeneous record rows; None when not tabular."""
    from repro.data.values import Record

    if not elements or not all(isinstance(e, Record) for e in elements):
        return None
    attributes = elements[0].attributes()
    if any(e.attributes() != attributes for e in elements):
        return None
    rows = [[_cell(element[attr]) for attr in attributes] for element in elements]
    widths = [
        max(len(attr), *(len(row[i]) for row in rows))
        for i, attr in enumerate(attributes)
    ]
    header = "  " + " | ".join(a.ljust(w) for a, w in zip(attributes, widths))
    rule = "  " + "-+-".join("-" * w for w in widths)
    body = [
        "  " + " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    return "\n".join([header, rule, *body])


def _cell(value: Any, max_width: int = 36) -> str:
    text = str(value) if isinstance(value, str) else repr(value)
    if len(text) > max_width:
        return text[: max_width - 1] + "…"
    return text


def parse_param(text: str) -> tuple[str, Any]:
    """Parse a ``name=value`` CLI binding; the value is a Python literal
    when it parses as one (``4``, ``1.5``, ``None``, ``[1, 2]``) and a plain
    string otherwise."""
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise ValueError(f"--param expects NAME=VALUE, got {text!r}")
    try:
        value = python_ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return name, value


def run_query(
    source: str,
    db: Database,
    *,
    show_plan: bool = False,
    show_explain: bool = False,
    show_trace: bool = False,
    show_calculus: bool = False,
    show_stages: bool = False,
    compare_naive: bool = False,
    unnest: bool = True,
    compiled_exprs: bool = True,
    batched_exec: bool = True,
    batch_size: int | None = None,
    parallel: bool = False,
    num_workers: int = 0,
    timeout: float | None = None,
    max_rows: int | None = None,
    max_bytes: int | None = None,
    backend: str = "memory",
    db_path: str | None = None,
    optimizer: Optimizer | None = None,
    params: dict[str, Any] | None = None,
    out=None,
) -> None:
    """Compile and run one OQL query, printing the requested artifacts."""
    out = out if out is not None else sys.stdout
    params = params or {}
    if optimizer is None:
        options = OptimizerOptions(
            unnest=unnest,
            compiled_exprs=compiled_exprs,
            batched_exec=batched_exec,
            parallel=parallel or num_workers > 0,
            num_workers=max(0, num_workers),
            timeout=timeout,
            max_rows=max_rows,
            max_bytes=max_bytes,
            backend=backend,
            db_path=db_path,
        )
        if batch_size is not None:
            from dataclasses import replace as _replace

            options = _replace(options, batch_size=max(1, batch_size))
        optimizer = Optimizer(db, options)
    compiled = optimizer.compile_oql(source)
    # The REPL keeps one \set binding table across queries; only forward the
    # names this query actually declares.
    params = {k: v for k, v in params.items() if k in compiled.param_names}
    if show_calculus:
        print("calculus:", pretty(compiled.term), file=out)
    if show_stages:
        print(compiled.explain_stages(), file=out)
    if show_trace and compiled.trace is not None:
        print("unnesting trace:", file=out)
        for entry in compiled.trace.entries:
            print(f"  ({entry.rule}) {entry.detail}", file=out)
    if show_plan and compiled.optimized is not None:
        print("plan:", file=out)
        print(pretty_plan(compiled.optimized), file=out)
    if show_explain and compiled.optimized is not None:
        label = (
            "shredded plan:"
            if compiled.options.backend == "sqlite"
            else "physical plan:"
        )
        print(label, file=out)
        print(compiled.explain(db), file=out)

    start = time.perf_counter()
    result = compiled.execute(db, **params)
    elapsed = (time.perf_counter() - start) * 1000
    print(format_result(result), file=out)
    print(f"({elapsed:.2f} ms)", file=out)

    if compare_naive and unnest:
        naive = Optimizer(db, OptimizerOptions(unnest=False)).compile_oql(source)
        start = time.perf_counter()
        naive_result = naive.execute(db, **params)
        naive_ms = (time.perf_counter() - start) * 1000
        agree = "results agree" if naive_result == result else "RESULTS DIFFER!"
        print(
            f"naive nested-loop: {naive_ms:.2f} ms "
            f"({naive_ms / max(elapsed, 1e-9):.1f}x slower; {agree})",
            file=out,
        )


def _repl_limits(optimizer: Optimizer, argument: str, out) -> None:
    """The REPL ``\\limits`` command: show, set, or clear governor limits.

    ``\\limits`` shows the current limits, ``\\limits off`` clears them, and
    ``\\limits timeout=0.5 max_rows=10000 max_bytes=1000000`` sets any subset
    (each key optional).  Changing limits clears the plan cache: cached
    CompiledQuery objects carry their options snapshot.
    """
    from dataclasses import replace as _replace

    options = optimizer.options
    if not argument.strip():
        print(
            f"  timeout={options.timeout!r} max_rows={options.max_rows!r} "
            f"max_bytes={options.max_bytes!r}",
            file=out,
        )
        return
    if argument.strip().lower() == "off":
        optimizer.options = _replace(
            options, timeout=None, max_rows=None, max_bytes=None
        )
        optimizer.plan_cache.clear()
        print("  limits cleared", file=out)
        return
    updates: dict[str, Any] = {}
    for piece in argument.split():
        try:
            name, value = parse_param(piece)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return
        if name not in ("timeout", "max_rows", "max_bytes"):
            print(
                f"error: unknown limit {name!r} "
                "(expected timeout, max_rows, or max_bytes)",
                file=out,
            )
            return
        updates[name] = value
    optimizer.options = _replace(options, **updates)
    optimizer.plan_cache.clear()
    set_to = " ".join(f"{k}={v!r}" for k, v in updates.items())
    print(f"  limits set: {set_to}", file=out)


def repl(db_name: str, out=None) -> None:
    """The interactive OQL shell (see the module docstring for commands)."""
    out = out if out is not None else sys.stdout
    db = DATABASES[db_name]()
    optimizer = Optimizer(db)
    flags = {
        "plan": False,
        "explain": False,
        "trace": False,
        "calculus": False,
        "stages": False,
    }
    params: dict[str, Any] = {}
    print(
        f"repro OQL shell — database '{db_name}' ({db!r}).\n"
        "End queries with ';' (views: 'define <name> as <query>;').\n"
        "Meta: \\plan \\explain \\trace \\calculus \\stages \\cache "
        "\\compile \\batch \\parallel \\backend \\limits \\set name=value "
        "\\params \\views \\db <name> \\quit",
        file=out,
    )
    buffer: list[str] = []
    while True:
        try:
            prompt = "oql> " if not buffer else "...> "
            line = input(prompt)
        except EOFError:
            print(file=out)
            return
        stripped = line.strip()
        if not buffer and stripped.startswith("\\"):
            command, _, argument = stripped[1:].partition(" ")
            if command in ("quit", "q", "exit"):
                return
            if command == "db":
                if argument in DATABASES:
                    db = DATABASES[argument]()
                    optimizer = Optimizer(db)
                    print(f"switched to '{argument}' ({db!r})", file=out)
                else:
                    print(f"unknown database; choose from {sorted(DATABASES)}", file=out)
                continue
            if command in flags:
                flags[command] = not flags[command]
                print(f"\\{command} {'on' if flags[command] else 'off'}", file=out)
                continue
            if command == "compile":
                from dataclasses import replace as _replace

                optimizer.options = _replace(
                    optimizer.options,
                    compiled_exprs=not optimizer.options.compiled_exprs,
                )
                state = "on" if optimizer.options.compiled_exprs else "off"
                print(f"\\compile {state} (expression codegen)", file=out)
                continue
            if command == "batch":
                from dataclasses import replace as _replace

                if argument:
                    # ``\batch N`` sets the chunk size (and turns batching
                    # on); a bare ``\batch`` toggles the mode.
                    try:
                        size = int(argument)
                        if size < 1:
                            raise ValueError
                    except ValueError:
                        print(
                            "usage: \\batch (toggle) or \\batch N "
                            "(rows per chunk, N >= 1)",
                            file=out,
                        )
                        continue
                    optimizer.options = _replace(
                        optimizer.options, batched_exec=True, batch_size=size
                    )
                    print(
                        f"\\batch on ({size} rows per chunk)", file=out
                    )
                    continue
                optimizer.options = _replace(
                    optimizer.options,
                    batched_exec=not optimizer.options.batched_exec,
                )
                state = "on" if optimizer.options.batched_exec else "off"
                print(f"\\batch {state} (batch execution)", file=out)
                continue
            if command == "parallel":
                from dataclasses import replace as _replace

                if argument:
                    # ``\parallel N`` sets the worker count (and turns
                    # parallel execution on); a bare ``\parallel`` toggles.
                    try:
                        workers = int(argument)
                        if workers < 0:
                            raise ValueError
                    except ValueError:
                        print(
                            "usage: \\parallel (toggle) or \\parallel N "
                            "(workers, N >= 0; 0 = one per core)",
                            file=out,
                        )
                        continue
                    optimizer.options = _replace(
                        optimizer.options, parallel=True, num_workers=workers
                    )
                    label = str(workers) if workers else "auto"
                    print(f"\\parallel on ({label} workers)", file=out)
                    continue
                optimizer.options = _replace(
                    optimizer.options, parallel=not optimizer.options.parallel
                )
                state = "on" if optimizer.options.parallel else "off"
                print(f"\\parallel {state} (partitioned execution)", file=out)
                continue
            if command == "backend":
                from dataclasses import replace as _replace

                db_path = None
                if argument:
                    # ``\backend NAME [PATH]`` selects it (PATH: a
                    # file-backed sqlite store); a bare ``\backend``
                    # toggles between memory and sqlite.
                    pieces = argument.split(None, 1)
                    name = pieces[0].strip().lower()
                    if len(pieces) > 1:
                        db_path = pieces[1].strip() or None
                    if name not in ("memory", "sqlite") or (
                        db_path and name != "sqlite"
                    ):
                        print(
                            "usage: \\backend (toggle) or "
                            "\\backend memory|sqlite [db-path]",
                            file=out,
                        )
                        continue
                else:
                    name = (
                        "sqlite"
                        if optimizer.options.backend == "memory"
                        else "memory"
                    )
                optimizer.options = _replace(
                    optimizer.options, backend=name, db_path=db_path
                )
                # Options are part of the plan-cache key, but clear anyway
                # so stale CompiledQuery snapshots (and their store
                # bindings) do not linger after a backend/store switch.
                optimizer.plan_cache.clear()
                suffix = f" (file: {db_path})" if db_path else ""
                print(f"\\backend {name}{suffix}", file=out)
                continue
            if command == "limits":
                _repl_limits(optimizer, argument, out)
                continue
            if command == "views":
                if optimizer.views:
                    for view_name in sorted(optimizer.views):
                        print(f"  {view_name}", file=out)
                else:
                    print("  (no views defined)", file=out)
                continue
            if command == "cache":
                print(f"  {optimizer.plan_cache!r}", file=out)
                counts = optimizer.stage_counts
                if counts:
                    ran = ", ".join(
                        f"{name}: {counts[name]}"
                        for name in sorted(counts, key=counts.get, reverse=True)
                    )
                    print(f"  stage runs — {ran}", file=out)
                continue
            if command == "set":
                try:
                    name, value = parse_param(argument)
                except ValueError as exc:
                    print(f"error: {exc}", file=out)
                    continue
                params[name] = value
                print(f"  :{name} = {value!r}", file=out)
                continue
            if command == "params":
                if params:
                    for name in sorted(params):
                        print(f"  :{name} = {params[name]!r}", file=out)
                else:
                    print("  (no parameters set)", file=out)
                continue
            print(f"unknown meta-command \\{command}", file=out)
            continue
        buffer.append(line)
        if not stripped.endswith(";"):
            continue
        source = "\n".join(buffer).rstrip().rstrip(";")
        buffer = []
        if not source.strip():
            continue
        try:
            if source.lstrip().lower().startswith("define"):
                name = optimizer.define_view(source)
                print(f"view {name!r} defined", file=out)
            else:
                run_query(
                    source,
                    db,
                    show_plan=flags["plan"],
                    show_explain=flags["explain"],
                    show_trace=flags["trace"],
                    show_calculus=flags["calculus"],
                    show_stages=flags["stages"],
                    optimizer=optimizer,
                    params=params,
                    out=out,
                )
        except Exception as exc:  # noqa: BLE001 - REPL survives bad queries
            print(f"error: {exc}", file=out)


def build_fuzz_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro fuzz``."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description=(
            "Differential fuzzing: random OQL over random schemas, every "
            "execution path cross-checked (see repro.testing)."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default: 0)"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=100,
        help="number of (database, query) samples to check (default: 100)",
    )
    parser.add_argument(
        "--save-repros",
        metavar="DIR",
        default=None,
        help="write a JSON repro artifact for every finding into DIR",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report findings unminimized (skip delta debugging)",
    )
    parser.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the structural pipeline invariant checks",
    )
    parser.add_argument(
        "--duplicate-probability",
        type=float,
        default=None,
        metavar="P",
        help=(
            "chance of generating value-equal duplicate objects "
            "(default: schemagen default; exercises the object-identity "
            "layer)"
        ),
    )
    parser.add_argument(
        "--synthetic-oids",
        action="store_true",
        help=(
            "back-compat: stamp a unique 'oid' attribute on every generated "
            "object (the pre-identity-layer scheme; disables duplicates)"
        ),
    )
    parser.add_argument(
        "--fault-injection",
        action="store_true",
        help=(
            "also run every sample under a tiny deterministic governor "
            "budget: failures must be structured GovernorErrors and the "
            "engine must stay clean afterwards"
        ),
    )
    return parser


def run_fuzz_command(argv: list[str], out=None) -> int:
    """Run the ``repro fuzz`` subcommand; returns a process exit code."""
    from repro.testing.fuzz import FuzzConfig, FuzzReport, run_fuzz

    out = out if out is not None else sys.stdout
    args = build_fuzz_parser().parse_args(argv)
    from repro.testing.schemagen import SchemaGenConfig

    schema_config = SchemaGenConfig(synthetic_oids=args.synthetic_oids)
    if args.duplicate_probability is not None:
        schema_config.duplicate_probability = args.duplicate_probability
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        save_repros=args.save_repros,
        shrink=not args.no_shrink,
        invariants=not args.no_invariants,
        fault_injection=args.fault_injection,
        schema_config=schema_config,
    )
    start = time.perf_counter()

    def progress(iteration: int, report: FuzzReport) -> None:
        if iteration % 100 == 0 or iteration == config.iterations:
            elapsed = time.perf_counter() - start
            print(
                f"  {iteration}/{config.iterations} samples, "
                f"{len(report.findings)} finding(s), {elapsed:.1f}s",
                file=out,
            )

    print(
        f"fuzzing: seed={config.seed}, {config.iterations} iterations",
        file=out,
    )
    report = run_fuzz(config, progress)
    print(report.summary(), file=out)
    return 0 if report.ok else 1


def build_serve_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve OQL queries over TCP: newline-delimited JSON requests "
            "(plus a thin HTTP/1.1 POST endpoint on the same port), "
            "sessions with prepared statements, admission control, and "
            "per-tenant budgets (see repro.server)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=7683, help="TCP port (default: 7683)"
    )
    parser.add_argument(
        "--db",
        choices=sorted(DATABASES),
        default="company",
        help="demo database to serve (default: company)",
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
        help="default execution backend for sessions (default: memory)",
    )
    parser.add_argument(
        "--db-path",
        default=None,
        metavar="FILE",
        help="with --backend sqlite: file-backed shredded store at FILE",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        metavar="N",
        help="query worker threads (default: 8)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission control: concurrent queries (default: --workers)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission control: queued queries beyond the in-flight limit "
            "before typed rejection (default: 2x --max-inflight)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-query wall-clock budget for every session",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=None,
        metavar="N",
        help="default per-query work-unit budget for every session",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="default per-query memory budget for every session",
    )
    parser.add_argument(
        "--tenant-max-queries",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant serving budget: total queries",
    )
    parser.add_argument(
        "--tenant-max-wall-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-tenant serving budget: total execution wall-clock ms",
    )
    parser.add_argument(
        "--tenant-max-rows",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant serving budget: total rows returned",
    )
    parser.add_argument(
        "--tenant-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant serving budget: total encoded result bytes",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print a metrics summary line every --metrics-interval seconds",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="seconds between --metrics summary lines (default: 10)",
    )
    return parser


def run_serve_command(argv: list[str], out=None) -> int:
    """Run the ``repro serve`` subcommand; returns a process exit code."""
    import asyncio

    from repro.server import ReproServer, ServerConfig, TenantBudget

    out = out if out is not None else sys.stdout
    args = build_serve_parser().parse_args(argv)
    db = DATABASES[args.db]()
    options = OptimizerOptions(
        timeout=args.timeout,
        max_rows=args.max_rows,
        max_bytes=args.max_bytes,
        backend=args.backend,
        db_path=args.db_path,
    )
    config = ServerConfig(
        database=db,
        options=options,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        tenant_budget=TenantBudget(
            max_queries=args.tenant_max_queries,
            max_wall_ms=args.tenant_max_wall_ms,
            max_rows=args.tenant_max_rows,
            max_bytes=args.tenant_max_bytes,
        ),
    )

    async def serve() -> None:
        server = ReproServer(config)
        host, port = await server.start()
        print(
            f"repro serve: database '{args.db}' on {host}:{port} "
            f"(workers={config.workers}, max_inflight={server.max_inflight}, "
            f"queue_depth={server.queue_depth}, backend={args.backend})",
            file=out,
            flush=True,
        )

        async def print_metrics() -> None:
            while True:
                await asyncio.sleep(args.metrics_interval)
                print(server.metrics.summary_line(), file=out, flush=True)

        metrics_task = (
            asyncio.ensure_future(print_metrics()) if args.metrics else None
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if metrics_task is not None:
                metrics_task.cancel()
            await server.close()
            if args.metrics:
                print(server.metrics.summary_line(), file=out, flush=True)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("repro serve: shut down", file=out, flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "fuzz":
        return run_fuzz_command(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve_command(argv[1:])
    args = build_parser().parse_args(argv)
    if args.query is None:
        repl(args.db)
        return 0
    db = DATABASES[args.db]()
    try:
        params = dict(parse_param(binding) for binding in args.param)
        run_query(
            args.query,
            db,
            show_plan=args.plan,
            show_explain=args.explain,
            show_trace=args.trace,
            show_calculus=args.calculus,
            show_stages=args.stages,
            compare_naive=args.naive,
            unnest=not args.no_unnest,
            compiled_exprs=not args.no_compile,
            batched_exec=not args.no_batch,
            batch_size=args.batch_size,
            parallel=args.parallel,
            num_workers=args.workers,
            timeout=args.timeout,
            max_rows=args.max_rows,
            max_bytes=args.max_bytes,
            backend=args.backend,
            db_path=args.db_path,
            params=params,
        )
    except Exception as exc:  # noqa: BLE001 - CLI reports, not crashes
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
