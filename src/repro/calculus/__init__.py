"""The monoid comprehension calculus (paper Section 2).

Submodules: :mod:`repro.calculus.monoids` (the monoid algebra),
:mod:`repro.calculus.terms` (the term language and a construction DSL),
:mod:`repro.calculus.typing` (Figure 3's typing rules),
:mod:`repro.calculus.pretty` (the paper's surface notation), and
:mod:`repro.calculus.evaluator` (the reference nested-loop semantics).
"""

from repro.calculus.monoids import MONOIDS, Monoid, monoid
from repro.calculus.terms import (
    BinOp,
    Comprehension,
    Const,
    Extent,
    Filter,
    Generator,
    Merge,
    Not,
    Null,
    Proj,
    RecordCons,
    Singleton,
    Term,
    Var,
    Zero,
    comprehension,
    conj,
    const,
    path,
    record,
    var,
)

__all__ = [
    "MONOIDS",
    "BinOp",
    "Comprehension",
    "Const",
    "Extent",
    "Filter",
    "Generator",
    "Merge",
    "Monoid",
    "Not",
    "Null",
    "Proj",
    "RecordCons",
    "Singleton",
    "Term",
    "Var",
    "Zero",
    "comprehension",
    "conj",
    "const",
    "monoid",
    "path",
    "record",
    "var",
]
