"""Reference (naive nested-loop) semantics for the monoid calculus.

This evaluator implements the comprehension reduction semantics of Section 2
(rules D1–D7) by direct iteration: every generator is a loop, every filter a
test, and the head values are merged with the comprehension's accumulator.
For a nested query this is exactly the "naive nested-loop method" the paper
ascribes to current OODB systems — for each step of the outer query all the
steps of the inner query are re-executed — which makes this module both the
ground truth for correctness testing *and* the baseline for the benchmarks.

NULL handling is strict: primitive operations propagate NULL, filters treat
a NULL predicate as false, and generators over NULL produce no bindings
(matching the outer-unnest/nest composition of the algebra).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from repro.calculus.monoids import CollectionMonoid
from repro.calculus.terms import (
    Apply,
    BinOp,
    Comprehension,
    Const,
    Extent,
    Filter,
    Generator,
    If,
    IsNull,
    Lambda,
    Let,
    Merge,
    Not,
    Null,
    Param,
    Proj,
    RecordCons,
    Singleton,
    Term,
    Var,
    Zero,
)
from repro.data.values import NULL, CollectionValue, Record, identity_eq, is_null
from repro.errors import ExecutionError


class EvaluationError(ExecutionError):
    """Raised when a term cannot be evaluated (bad types, unbound names)."""


class DivisionByZeroError(EvaluationError):
    """Division or modulo by zero.

    The repo pins the typed-error semantics (not SQL's silent NULL): the
    T1–T9 rules cannot see the divisor's *value*, so a zero divisor is a
    runtime fault — but a structured one, raised identically by the
    interpreter, the closure tier, and the source-generation tier (the
    differential oracle sweeps all three).
    """


class UnboundParameterError(EvaluationError):
    """A :class:`~repro.calculus.terms.Param` has no bound value.

    Raised when a prepared statement is executed without supplying every
    ``:name`` placeholder (see ``CompiledQuery.bind``).
    """


class ExtentProvider:
    """Anything that can resolve a class extent name to a collection.

    :class:`repro.data.database.Database` implements this protocol.
    """

    def extent(self, name: str) -> CollectionValue:
        raise NotImplementedError


class Evaluator:
    """Evaluates calculus terms against an extent provider.

    The evaluator also counts *tuple steps* (generator iterations), which the
    benchmarks use as a machine-independent cost measure alongside wall time.
    """

    def __init__(
        self,
        database: ExtentProvider,
        params: Mapping[str, Any] | None = None,
        governor: Any | None = None,
    ):
        self._database = database
        self.params = dict(params) if params else {}
        self.steps = 0
        #: Optional :class:`repro.engine.governor.Governor`; ticked per
        #: generator iteration so ``unnest=False`` runs are bounded too.
        self.governor = governor

    def evaluate(self, term: Term, env: Mapping[str, Any] | None = None) -> Any:
        """Evaluate *term* in environment *env* (variable name → value)."""
        return self._eval(term, dict(env) if env else {})

    # -- dispatch -----------------------------------------------------------

    def _eval(self, term: Term, env: dict[str, Any]) -> Any:
        method = self._DISPATCH.get(type(term))
        if method is None:
            raise EvaluationError(f"cannot evaluate {type(term).__name__}")
        return method(self, term, env)

    def _eval_var(self, term: Var, env: dict[str, Any]) -> Any:
        try:
            return env[term.name]
        except KeyError:
            raise EvaluationError(
                f"unbound variable {term.name!r}; in scope: {sorted(env)}"
            ) from None

    def _eval_const(self, term: Const, env: dict[str, Any]) -> Any:
        return term.value

    def _eval_null(self, term: Null, env: dict[str, Any]) -> Any:
        return NULL

    def _eval_param(self, term: Param, env: dict[str, Any]) -> Any:
        try:
            return self.params[term.name]
        except KeyError:
            raise UnboundParameterError(
                f"parameter :{term.name} has no bound value; bound: "
                f"{sorted(self.params)}"
            ) from None

    def _eval_extent(self, term: Extent, env: dict[str, Any]) -> Any:
        return self._database.extent(term.name)

    def _eval_record(self, term: RecordCons, env: dict[str, Any]) -> Any:
        return Record({name: self._eval(expr, env) for name, expr in term.fields})

    def _eval_proj(self, term: Proj, env: dict[str, Any]) -> Any:
        value = self._eval(term.expr, env)
        if is_null(value):
            return NULL
        if not isinstance(value, Record):
            raise EvaluationError(
                f"projection .{term.attr} applied to non-record "
                f"{type(value).__name__}"
            )
        return value[term.attr]

    def _eval_lambda(self, term: Lambda, env: dict[str, Any]) -> Any:
        captured = dict(env)

        def closure(arg: Any) -> Any:
            inner = dict(captured)
            inner[term.param] = arg
            return self._eval(term.body, inner)

        return closure

    def _eval_apply(self, term: Apply, env: dict[str, Any]) -> Any:
        fn = self._eval(term.fn, env)
        if not callable(fn):
            raise EvaluationError("application of a non-function value")
        return fn(self._eval(term.arg, env))

    def _eval_if(self, term: If, env: dict[str, Any]) -> Any:
        cond = self._eval(term.cond, env)
        if is_null(cond):
            return self._eval(term.orelse, env)
        if not isinstance(cond, bool):
            raise EvaluationError("if condition is not a boolean")
        return self._eval(term.then if cond else term.orelse, env)

    def _eval_let(self, term: Let, env: dict[str, Any]) -> Any:
        inner = dict(env)
        inner[term.var] = self._eval(term.value, env)
        return self._eval(term.body, inner)

    def _eval_binop(self, term: BinOp, env: dict[str, Any]) -> Any:
        # 'and'/'or' are short-circuiting; everything else is strict in NULL.
        if term.op == "and":
            left = self._eval(term.left, env)
            if left is False:
                return False
            right = self._eval(term.right, env)
            if is_null(left) or is_null(right):
                return NULL
            return left and right
        if term.op == "or":
            left = self._eval(term.left, env)
            if left is True:
                return True
            right = self._eval(term.right, env)
            if is_null(left) or is_null(right):
                return NULL
            return left or right
        left = self._eval(term.left, env)
        right = self._eval(term.right, env)
        if is_null(left) or is_null(right):
            return NULL
        return apply_binop(term.op, left, right)

    def _eval_not(self, term: Not, env: dict[str, Any]) -> Any:
        value = self._eval(term.expr, env)
        if is_null(value):
            return NULL
        if not isinstance(value, bool):
            raise EvaluationError("'not' applied to a non-boolean")
        return not value

    def _eval_isnull(self, term: IsNull, env: dict[str, Any]) -> Any:
        return is_null(self._eval(term.expr, env))

    def _eval_zero(self, term: Zero, env: dict[str, Any]) -> Any:
        return term.monoid.zero

    def _eval_singleton(self, term: Singleton, env: dict[str, Any]) -> Any:
        monoid = term.monoid
        if not isinstance(monoid, CollectionMonoid):
            raise EvaluationError(f"singleton of primitive monoid {monoid.name}")
        return monoid.unit(self._eval(term.expr, env))

    def _eval_merge(self, term: Merge, env: dict[str, Any]) -> Any:
        left = self._eval(term.left, env)
        right = self._eval(term.right, env)
        return term.monoid.merge(left, right)

    def _eval_comprehension(self, term: Comprehension, env: dict[str, Any]) -> Any:
        monoid = term.monoid
        result = monoid.zero
        for binding in self._bindings(term.qualifiers, env):
            value = self._eval(term.head, binding)
            if isinstance(monoid, CollectionMonoid):
                result = monoid.merge(result, monoid.unit(value))
                continue
            if is_null(value):
                # A NULL contributes nothing to a primitive accumulator (a
                # NULL cannot be summed or conjoined) — the same policy the
                # algebra evaluators follow, so both semantics agree.
                continue
            result = monoid.merge(result, monoid.lift(value))
            # Short-circuit quantifiers: once a conjunction is false or a
            # disjunction true, further iteration cannot change the result.
            if monoid.name == "all" and result is False:
                return False
            if monoid.name == "some" and result is True:
                return True
        if isinstance(monoid, CollectionMonoid):
            return result
        return monoid.finalize(result)

    def _bindings(
        self, qualifiers: tuple, env: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        """Stream the environments produced by a qualifier sequence."""
        if not qualifiers:
            yield env
            return
        first, rest = qualifiers[0], qualifiers[1:]
        if isinstance(first, Filter):
            pred = self._eval(first.pred, env)
            if pred is True:
                yield from self._bindings(rest, env)
            elif pred is False or is_null(pred):
                return
            else:
                raise EvaluationError("filter predicate is not a boolean")
            return
        assert isinstance(first, Generator)
        domain = self._eval(first.domain, env)
        if is_null(domain):
            return
        if not isinstance(domain, CollectionValue):
            raise EvaluationError(
                f"generator domain for {first.var!r} is not a collection "
                f"({type(domain).__name__})"
            )
        governor = self.governor
        tick = governor.tick if governor is not None else None
        for element in domain.elements():
            self.steps += 1
            if tick is not None:
                tick()
            inner = dict(env)
            inner[first.var] = element
            yield from self._bindings(rest, inner)

    _DISPATCH: dict[type, Callable[..., Any]] = {}


Evaluator._DISPATCH = {
    Var: Evaluator._eval_var,
    Const: Evaluator._eval_const,
    Null: Evaluator._eval_null,
    Param: Evaluator._eval_param,
    Extent: Evaluator._eval_extent,
    RecordCons: Evaluator._eval_record,
    Proj: Evaluator._eval_proj,
    Lambda: Evaluator._eval_lambda,
    Apply: Evaluator._eval_apply,
    If: Evaluator._eval_if,
    Let: Evaluator._eval_let,
    BinOp: Evaluator._eval_binop,
    Not: Evaluator._eval_not,
    IsNull: Evaluator._eval_isnull,
    Zero: Evaluator._eval_zero,
    Singleton: Evaluator._eval_singleton,
    Merge: Evaluator._eval_merge,
    Comprehension: Evaluator._eval_comprehension,
}


def apply_binop(op: str, left: Any, right: Any) -> Any:
    """Apply a strict primitive binary operator to two non-NULL values.

    Equality follows the OO model: scalars and plain values compare by
    value, stored objects by identity (see
    :func:`repro.data.values.identity_eq`).  Every evaluator in the system
    — calculus, definitional algebra semantics, physical operators — routes
    ``=`` through this single function, so no execution path can disagree
    about what object equality means.
    """
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise DivisionByZeroError("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise DivisionByZeroError("modulo by zero")
            return left % right
        if op == "==":
            return identity_eq(left, right)
        if op == "!=":
            return not identity_eq(left, right)
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        # A well-typed plan cannot get here (the T1–T9 checker rejects
        # e.g. string + float at plan time); with typechecking disabled
        # the fault still surfaces as a structured error.
        raise EvaluationError(
            f"operator {op!r} applied to incompatible values "
            f"{type(left).__name__} and {type(right).__name__}: {exc}"
        ) from exc
    raise EvaluationError(f"unknown operator {op!r}")


def evaluate(
    term: Term,
    database: ExtentProvider,
    env: Mapping[str, Any] | None = None,
    params: Mapping[str, Any] | None = None,
) -> Any:
    """Convenience wrapper: evaluate *term* against *database*."""
    return Evaluator(database, params).evaluate(term, env)
