"""Monoids — the algebraic backbone of the comprehension calculus.

Section 2 of the paper: a monoid of type T is a pair (⊕, Z⊕) of an
associative accumulator ⊕ : T × T → T and a zero element Z⊕ that is a left
and right identity of ⊕.  Collection monoids (set, bag, list) additionally
carry a *unit* function that lifts an element into a singleton collection.
Primitive monoids (sum, prod, max, min, all, some) construct values of a
primitive type.

The properties *commutative* and *idempotent* drive both the normalization
algorithm (rule N7/N8 side conditions) and the semantics of comprehensions
over mixed monoids (rule D7's duplicate guard).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.data.values import BagValue, ListValue, SetValue


def _identity(value: Any) -> Any:
    return value


@dataclass(frozen=True)
class Monoid:
    """A primitive monoid (⊕, zero) with its algebraic properties.

    ``merge`` must be associative; ``zero`` its two-sided identity.

    ``lift``/``finalize`` support accumulators that are monoids only on an
    internal carrier: ``avg`` accumulates (sum, count) pairs — ``lift``
    injects each contribution into the carrier and ``finalize`` maps the
    merged carrier back to the user-visible value.  For true monoids both
    are the identity.
    """

    name: str
    zero: Any
    merge: Callable[[Any, Any], Any] = field(compare=False)
    commutative: bool = True
    idempotent: bool = False
    lift: Callable[[Any], Any] = field(compare=False, default=_identity)
    finalize: Callable[[Any], Any] = field(compare=False, default=_identity)

    @property
    def is_collection(self) -> bool:
        return isinstance(self, CollectionMonoid)

    def fold(self, values: Any) -> Any:
        """Merge an iterable of values, starting from the zero element."""
        result = self.zero
        for value in values:
            result = self.merge(result, value)
        return result

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CollectionMonoid(Monoid):
    """A collection monoid: additionally knows how to build singletons."""

    unit: Callable[[Any], Any] = field(compare=False, default=None)  # type: ignore[assignment]
    #: Bulk constructor: build the collection from an iterable of elements
    #: in one pass.  Must equal folding singleton units (it is the same
    #: constructor the unit uses), but is O(n) where the fold's repeated
    #: immutable merges are O(n²) — the engine's accumulation loops
    #: (PReduce, PHashNest) go through this.
    from_elements: Callable[[Any], Any] = field(compare=False, default=None)  # type: ignore[assignment]

    def fold_elements(self, values: Any) -> Any:
        """Build a collection from an iterable of *elements* (not collections)."""
        if self.from_elements is not None:
            return self.from_elements(values)
        return self.fold(self.unit(v) for v in values)


def _set_merge(a: SetValue, b: SetValue) -> SetValue:
    return a.union(b)


def _bag_merge(a: BagValue, b: BagValue) -> BagValue:
    return a.additive_union(b)


def _list_merge(a: ListValue, b: ListValue) -> ListValue:
    return a.concat(b)


SET = CollectionMonoid(
    name="set",
    zero=SetValue(),
    merge=_set_merge,
    commutative=True,
    idempotent=True,
    unit=lambda v: SetValue([v]),
    from_elements=SetValue,
)

BAG = CollectionMonoid(
    name="bag",
    zero=BagValue(),
    merge=_bag_merge,
    commutative=True,
    idempotent=False,
    unit=lambda v: BagValue([v]),
    from_elements=BagValue,
)

LIST = CollectionMonoid(
    name="list",
    zero=ListValue(),
    merge=_list_merge,
    commutative=False,
    idempotent=False,
    unit=lambda v: ListValue([v]),
    from_elements=ListValue,
)

SUM = Monoid(name="sum", zero=0, merge=lambda a, b: a + b)
PROD = Monoid(name="prod", zero=1, merge=lambda a, b: a * b)
# The paper uses (max, 0); we use the usual identity-free formulation with a
# floor of 0 to match the paper's (max, 0) monoid on non-negative numbers.
MAX = Monoid(name="max", zero=0, merge=lambda a, b: a if a >= b else b, idempotent=True)
MIN = Monoid(
    name="min",
    zero=float("inf"),
    merge=lambda a, b: a if a <= b else b,
    idempotent=True,
)
ALL = Monoid(name="all", zero=True, merge=lambda a, b: a and b, idempotent=True)
SOME = Monoid(name="some", zero=False, merge=lambda a, b: a or b, idempotent=True)


def _avg_finalize(carrier: tuple[float, int]) -> Any:
    from repro.data.values import NULL

    total, count = carrier
    if count == 0:
        return NULL
    return total / count


# avg is the paper's Section 5 accumulator: a monoid on (sum, count) pairs
# finalized by division (NULL on an empty input, like SQL's AVG).
AVG = Monoid(
    name="avg",
    zero=(0.0, 0),
    merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
    lift=lambda v: (v, 1),
    finalize=_avg_finalize,
)

#: Every monoid known to the calculus, by name.
MONOIDS: dict[str, Monoid] = {
    m.name: m for m in (SET, BAG, LIST, SUM, PROD, MAX, MIN, ALL, SOME, AVG)
}

#: Pretty accumulator symbols used by the plan printers (paper notation).
MONOID_SYMBOLS: dict[str, str] = {
    "set": "U",
    "bag": "U+",
    "list": "++",
    "sum": "+",
    "prod": "*",
    "max": "max",
    "min": "min",
    "all": "&",
    "some": "|",
    "avg": "avg",
}


def monoid(name: str) -> Monoid:
    """Look up a monoid by name, raising a helpful error when unknown."""
    try:
        return MONOIDS[name]
    except KeyError:
        known = ", ".join(sorted(MONOIDS))
        raise KeyError(f"unknown monoid {name!r}; known monoids: {known}") from None


def leq(inner: Monoid, outer: Monoid) -> bool:
    """The monoid well-formedness order ⊑ of the calculus.

    A comprehension ``⊕{ e | ..., v <- X, ... }`` is well formed when the
    monoid of each generator domain X can be *coerced* into ⊕.  Iterating a
    commutative collection (set, bag) into a non-commutative monoid (list)
    has no deterministic meaning, so that combination is rejected.  An
    idempotent domain feeding a non-idempotent monoid (e.g. summing over a
    set) *is* allowed: rule D7 of the comprehension semantics inserts an
    explicit duplicate-elimination guard for exactly this case, avoiding the
    paper's Section 2 inconsistency example.
    """
    if inner.commutative and not outer.commutative:
        return False
    return True
