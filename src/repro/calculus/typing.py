"""Type inference for the monoid calculus (paper Figure 3, rules T1–T9).

``infer_type`` assigns a :mod:`repro.data.schema` type to every calculus
term given a schema (for extents) and a typing environment σ (for free
variables).  Besides the paper's rules it enforces the monoid
well-formedness order: a generator whose domain is a commutative collection
cannot feed a non-commutative comprehension (see
:func:`repro.calculus.monoids.leq`).
"""

from __future__ import annotations

from typing import Mapping

from repro.calculus.monoids import leq, monoid as lookup_monoid
from repro.calculus.terms import (
    ARITHMETIC_OPS,
    BOOLEAN_OPS,
    COMPARISON_OPS,
    Apply,
    BinOp,
    Comprehension,
    Const,
    Extent,
    Filter,
    Generator,
    If,
    IsNull,
    Lambda,
    Let,
    Merge,
    Not,
    Null,
    Param,
    Proj,
    RecordCons,
    Singleton,
    Term,
    Var,
    Zero,
)
from repro.data.schema import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    AnyType,
    BoolType,
    CollectionType,
    FunctionType,
    RecordType,
    Schema,
    StringType,
    Type,
    is_numeric,
    unify,
)
from repro.errors import TypeCheckError

#: Carrier types of the primitive monoids.
_PRIMITIVE_MONOID_TYPES: dict[str, Type] = {
    "sum": FLOAT,
    "prod": FLOAT,
    "max": FLOAT,
    "min": FLOAT,
    "all": BOOL,
    "some": BOOL,
    "avg": FLOAT,
}


class CalculusTypeError(TypeCheckError, TypeError):
    """A term violates the typing rules of Figure 3.

    Both a :class:`~repro.errors.TypeCheckError` (the structured taxonomy)
    and a ``TypeError`` (the historical base, for existing callers).  The
    message names the offending subterm.
    """

    def __init__(self, message: str, term: Term | None = None):
        if term is not None:
            message = f"{message}\n  in term: {term}"
        super().__init__(message)
        self.term = term


def infer_type(
    term: Term,
    schema: Schema | None = None,
    env: Mapping[str, Type] | None = None,
) -> Type:
    """Infer the type of *term* under substitution *env* (rule notation σ ⊢ e : t)."""
    checker = TypeChecker(schema)
    return checker.infer(term, dict(env) if env else {})


class TypeChecker:
    """Implements the typing rules; one instance per inference run."""

    def __init__(self, schema: Schema | None = None):
        self._schema = schema

    def infer(self, term: Term, env: dict[str, Type]) -> Type:
        if isinstance(term, Var):
            try:
                return env[term.name]  # (T1)
            except KeyError:
                raise CalculusTypeError(f"unbound variable {term.name!r}", term) from None
        if isinstance(term, Const):
            return self._const_type(term)
        if isinstance(term, Null):
            return ANY  # NULL inhabits every type domain
        if isinstance(term, Param):
            # A placeholder's value arrives at bind time; like NULL it may
            # inhabit any type domain at compile time.
            return ANY
        if isinstance(term, Extent):
            if self._schema is not None and self._schema.has_extent(term.name):
                return self._schema.extent_type(term.name)
            return CollectionType("set", ANY)
        if isinstance(term, RecordCons):
            fields = tuple((n, self.infer(e, env)) for n, e in term.fields)
            return RecordType(fields)  # (T3)
        if isinstance(term, Proj):
            return self._infer_proj(term, env)  # (T2)
        if isinstance(term, Lambda):
            inner = dict(env)
            inner[term.param] = ANY
            return FunctionType(ANY, self.infer(term.body, inner))  # (T6)
        if isinstance(term, Apply):
            return self._infer_apply(term, env)  # (T7)
        if isinstance(term, If):
            return self._infer_if(term, env)  # (T5)
        if isinstance(term, Let):
            inner = dict(env)
            inner[term.var] = self.infer(term.value, env)
            return self.infer(term.body, inner)
        if isinstance(term, BinOp):
            return self._infer_binop(term, env)
        if isinstance(term, Not):
            self._expect(term.expr, env, BOOL, "operand of 'not'")
            return BOOL
        if isinstance(term, IsNull):
            self.infer(term.expr, env)
            return BOOL
        if isinstance(term, Zero):
            return self._monoid_type(term.monoid_name, ANY)
        if isinstance(term, Singleton):
            element = self.infer(term.expr, env)
            return self._monoid_type(term.monoid_name, element)  # (T8)
        if isinstance(term, Merge):
            left = self.infer(term.left, env)
            right = self.infer(term.right, env)
            try:
                return unify(left, right)
            except TypeError as exc:
                raise CalculusTypeError(str(exc), term) from None
        if isinstance(term, Comprehension):
            return self._infer_comprehension(term, env)  # (T9)
        raise CalculusTypeError(f"cannot type {type(term).__name__}", term)

    # -- helpers -------------------------------------------------------------

    def _const_type(self, term: Const) -> Type:
        value = term.value
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLOAT
        if isinstance(value, str):
            return STRING
        raise CalculusTypeError(f"unsupported constant {value!r}", term)

    def _infer_proj(self, term: Proj, env: dict[str, Type]) -> Type:
        base = self.infer(term.expr, env)
        if isinstance(base, AnyType):
            return ANY
        if isinstance(base, RecordType):
            try:
                return base.attribute(term.attr)
            except KeyError as exc:
                raise CalculusTypeError(str(exc), term) from None
        raise CalculusTypeError(
            f"projection .{term.attr} applied to non-record type {base}", term
        )

    def _infer_apply(self, term: Apply, env: dict[str, Type]) -> Type:
        fn_type = self.infer(term.fn, env)
        arg_type = self.infer(term.arg, env)
        if isinstance(fn_type, AnyType):
            return ANY
        if not isinstance(fn_type, FunctionType):
            raise CalculusTypeError(f"applied a non-function of type {fn_type}", term)
        try:
            unify(fn_type.param, arg_type)
        except TypeError as exc:
            raise CalculusTypeError(str(exc), term) from None
        return fn_type.result

    def _infer_if(self, term: If, env: dict[str, Type]) -> Type:
        self._expect(term.cond, env, BOOL, "if condition")
        then_type = self.infer(term.then, env)
        else_type = self.infer(term.orelse, env)
        try:
            return unify(then_type, else_type)
        except TypeError as exc:
            raise CalculusTypeError(f"if branches disagree: {exc}", term) from None

    def _infer_binop(self, term: BinOp, env: dict[str, Type]) -> Type:
        left = self.infer(term.left, env)
        right = self.infer(term.right, env)
        if term.op in ARITHMETIC_OPS:
            if term.op == "+" and (
                isinstance(left, StringType) or isinstance(right, StringType)
            ):
                # ``+`` doubles as string concatenation — but only
                # string + string; string + number is the classic leak
                # this checker exists to reject (T4 hole).
                if isinstance(left, (StringType, AnyType)) and isinstance(
                    right, (StringType, AnyType)
                ):
                    return STRING
                raise CalculusTypeError(
                    f"arithmetic + over incompatible types {left}, {right} "
                    "(string concatenation needs string on both sides)",
                    term,
                )
            if not (is_numeric(left) and is_numeric(right)):
                raise CalculusTypeError(
                    f"arithmetic {term.op} over non-numeric types {left}, {right}",
                    term,
                )
            if term.op == "/":
                return FLOAT
            try:
                return unify(left, right)
            except TypeError as exc:  # pragma: no cover - is_numeric guards this
                raise CalculusTypeError(str(exc), term) from None
        if term.op in COMPARISON_OPS:
            try:
                unify(left, right)
            except TypeError as exc:
                raise CalculusTypeError(
                    f"comparison {term.op} over incompatible types: {exc}", term
                ) from None
            return BOOL
        if term.op in BOOLEAN_OPS:
            for side, side_type in (("left", left), ("right", right)):
                if not isinstance(side_type, (BoolType, AnyType)):
                    raise CalculusTypeError(
                        f"{side} operand of {term.op!r} is {side_type}, not bool",
                        term,
                    )
            return BOOL
        raise CalculusTypeError(f"unknown operator {term.op!r}", term)

    def _monoid_type(self, monoid_name: str, element: Type) -> Type:
        if monoid_name in _PRIMITIVE_MONOID_TYPES:
            return _PRIMITIVE_MONOID_TYPES[monoid_name]
        return CollectionType(monoid_name, element)

    def _infer_comprehension(self, term: Comprehension, env: dict[str, Type]) -> Type:
        outer = term.monoid
        inner_env = dict(env)
        for qualifier in term.qualifiers:
            if isinstance(qualifier, Generator):
                domain = self.infer(qualifier.domain, inner_env)
                if isinstance(domain, AnyType):
                    inner_env[qualifier.var] = ANY
                    continue
                if not isinstance(domain, CollectionType):
                    raise CalculusTypeError(
                        f"generator domain of {qualifier.var!r} has non-collection "
                        f"type {domain}",
                        term,
                    )
                domain_monoid = lookup_monoid(domain.monoid_name)
                if not leq(domain_monoid, outer):
                    raise CalculusTypeError(
                        f"ill-formed comprehension: {domain.monoid_name} generator "
                        f"cannot feed non-commutative monoid {outer.name}",
                        term,
                    )
                inner_env[qualifier.var] = domain.element
            else:
                assert isinstance(qualifier, Filter)
                self._expect(qualifier.pred, inner_env, BOOL, "filter predicate")
        head = self.infer(term.head, inner_env)
        if outer.name in _PRIMITIVE_MONOID_TYPES:
            expected = _PRIMITIVE_MONOID_TYPES[outer.name]
            if isinstance(expected, BoolType):
                if not isinstance(head, (BoolType, AnyType)):
                    raise CalculusTypeError(
                        f"head of {outer.name} comprehension is {head}, not bool",
                        term,
                    )
                return BOOL
            if not is_numeric(head):
                raise CalculusTypeError(
                    f"head of {outer.name} comprehension is {head}, not numeric",
                    term,
                )
            return expected
        return CollectionType(outer.name, head)

    def _expect(self, term: Term, env: dict[str, Type], expected: Type, what: str) -> None:
        actual = self.infer(term, env)
        if isinstance(actual, AnyType) or actual == expected:
            return
        raise CalculusTypeError(f"{what} has type {actual}, expected {expected}", term)
