"""Pretty-printing of calculus terms in the paper's surface notation.

``U{ ( E=e.name, C=c.name ) | e <- Employees, c <- e.children }`` — the
printer is used by error messages, the examples, and the figure-reproduction
benchmarks.  ``pretty`` output is designed to be re-parseable by eye, not by
machine; the machine-facing form is the term structure itself.
"""

from __future__ import annotations

from repro.calculus.terms import (
    Apply,
    BinOp,
    Comprehension,
    Const,
    Extent,
    Filter,
    Generator,
    If,
    IsNull,
    Lambda,
    Let,
    Merge,
    Not,
    Null,
    Param,
    Proj,
    RecordCons,
    Singleton,
    Term,
    Var,
    Zero,
)

_MONOID_BRACES = {
    "set": ("{", "}"),
    "bag": ("{{", "}}"),
    "list": ("[", "]"),
}


def pretty(term: Term) -> str:
    """Render *term* in the paper's comprehension notation."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        if isinstance(term.value, str):
            return f'"{term.value}"'
        if isinstance(term.value, bool):
            return "true" if term.value else "false"
        return str(term.value)
    if isinstance(term, Null):
        return "NULL"
    if isinstance(term, Param):
        return f":{term.name}"
    if isinstance(term, Extent):
        return term.name
    if isinstance(term, RecordCons):
        inner = ", ".join(f"{name}={pretty(expr)}" for name, expr in term.fields)
        return f"( {inner} )"
    if isinstance(term, Proj):
        return f"{_atom(term.expr)}.{term.attr}"
    if isinstance(term, Lambda):
        return f"\\{term.param}. {pretty(term.body)}"
    if isinstance(term, Apply):
        return f"{_atom(term.fn)}({pretty(term.arg)})"
    if isinstance(term, If):
        return (
            f"if {pretty(term.cond)} then {pretty(term.then)} "
            f"else {pretty(term.orelse)}"
        )
    if isinstance(term, Let):
        return f"let {term.var} = {pretty(term.value)} in {pretty(term.body)}"
    if isinstance(term, BinOp):
        op = "=" if term.op == "==" else term.op
        return f"{_atom(term.left)} {op} {_atom(term.right)}"
    if isinstance(term, Not):
        return f"not {_atom(term.expr)}"
    if isinstance(term, IsNull):
        return f"{_atom(term.expr)} is NULL"
    if isinstance(term, Zero):
        open_b, close_b = _MONOID_BRACES.get(term.monoid_name, ("", ""))
        if open_b:
            return f"{open_b}{close_b}"
        return f"zero[{term.monoid_name}]"
    if isinstance(term, Singleton):
        open_b, close_b = _MONOID_BRACES.get(term.monoid_name, ("{", "}"))
        return f"{open_b} {pretty(term.expr)} {close_b}"
    if isinstance(term, Merge):
        from repro.calculus.monoids import MONOID_SYMBOLS

        symbol = MONOID_SYMBOLS[term.monoid_name]
        return f"{_atom(term.left)} {symbol} {_atom(term.right)}"
    if isinstance(term, Comprehension):
        return _pretty_comprehension(term)
    raise TypeError(f"cannot pretty-print {type(term).__name__}")


def _pretty_comprehension(comp: Comprehension) -> str:
    quals = []
    for qualifier in comp.qualifiers:
        if isinstance(qualifier, Generator):
            quals.append(f"{qualifier.var} <- {pretty(qualifier.domain)}")
        elif isinstance(qualifier, Filter):
            quals.append(pretty(qualifier.pred))
    body = pretty(comp.head)
    symbol = "" if comp.monoid_name == "set" else comp.symbol
    if quals:
        return f"{symbol}{{ {body} | {', '.join(quals)} }}"
    return f"{symbol}{{ {body} | }}"


def _atom(term: Term) -> str:
    """Parenthesize non-atomic operands."""
    text = pretty(term)
    if isinstance(term, (BinOp, If, Lambda, Let, Merge, Not)):
        return f"({text})"
    return text
