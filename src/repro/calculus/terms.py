"""Terms of the monoid comprehension calculus (paper Section 2, Figure 3).

The calculus is the intermediate form OODB queries are translated into.  Its
terms are variables, constants, NULL, record construction and projection,
lambda abstraction/application, conditionals, primitive operations, class
extents, collection constructors (zero / singleton / merge), and — centrally —
monoid comprehensions ``⊕{ e | q1, ..., qn }`` whose qualifiers are
generators ``v <- e`` and filters ``p``.

All terms are immutable (frozen dataclasses) and compare structurally, which
makes the rewrite systems (normalization, unnesting, simplification) simple
term-to-term functions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.calculus.monoids import MONOID_SYMBOLS, Monoid, monoid as lookup_monoid


class Term:
    """Base class for every calculus term."""

    __slots__ = ()

    def children(self) -> tuple["Term", ...]:
        """Direct sub-terms, in syntactic order."""
        return ()

    def __str__(self) -> str:
        from repro.calculus.pretty import pretty

        return pretty(self)


# ---------------------------------------------------------------------------
# Atomic terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var(Term):
    """A variable reference."""

    name: str

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Const(Term):
    """A literal constant (bool, int, float, or string)."""

    value: Any

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Null(Term):
    """The NULL literal (Section 2: every type domain contains NULL)."""


@dataclass(frozen=True)
class Extent(Term):
    """A reference to a class extent (a named top-level set of objects)."""

    name: str


@dataclass(frozen=True)
class Param(Term):
    """A prepared-statement placeholder (OQL ``:name``).

    A parameter behaves like a constant whose value is supplied at execution
    time (:meth:`repro.core.pipeline.CompiledQuery.bind`): it has no free
    variables, so normalization, unnesting, and physical planning treat it
    exactly like a literal — the same plan serves every binding.
    """

    name: str

    def __repr__(self) -> str:
        return f"Param({self.name!r})"


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecordCons(Term):
    """Record construction ``( A1 = e1, ..., An = en )``."""

    fields: tuple[tuple[str, Term], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate record attributes in {names}")

    def children(self) -> tuple[Term, ...]:
        return tuple(expr for _, expr in self.fields)

    def field_expr(self, name: str) -> Term:
        for field_name, expr in self.fields:
            if field_name == name:
                return expr
        raise KeyError(name)


@dataclass(frozen=True)
class Proj(Term):
    """Record projection ``e.A`` (typing rule T2)."""

    expr: Term
    attr: str

    def children(self) -> tuple[Term, ...]:
        return (self.expr,)


# ---------------------------------------------------------------------------
# Functions and control
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lambda(Term):
    """Function abstraction ``λv. e`` (typing rule T6)."""

    param: str
    body: Term

    def children(self) -> tuple[Term, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Apply(Term):
    """Function application ``e1(e2)`` (typing rule T7)."""

    fn: Term
    arg: Term

    def children(self) -> tuple[Term, ...]:
        return (self.fn, self.arg)


@dataclass(frozen=True)
class If(Term):
    """Conditional ``if e1 then e2 else e3`` (typing rule T5)."""

    cond: Term
    then: Term
    orelse: Term

    def children(self) -> tuple[Term, ...]:
        return (self.cond, self.then, self.orelse)


@dataclass(frozen=True)
class Let(Term):
    """``let v = e1 in e2`` — used by reduction rule D6 and by CSE."""

    var: str
    value: Term
    body: Term

    def children(self) -> tuple[Term, ...]:
        return (self.value, self.body)


#: Binary operators supported by the calculus, with their printed form.
BINARY_OPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "==": "=",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "and": "and",
    "or": "or",
}

COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
BOOLEAN_OPS = frozenset({"and", "or"})


@dataclass(frozen=True)
class BinOp(Term):
    """A primitive binary operation (arithmetic, comparison, or boolean)."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Not(Term):
    """Boolean negation."""

    expr: Term

    def children(self) -> tuple[Term, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class IsNull(Term):
    """The null test — the only observation permitted on NULL."""

    expr: Term

    def children(self) -> tuple[Term, ...]:
        return (self.expr,)


# ---------------------------------------------------------------------------
# Collections and comprehensions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Zero(Term):
    """The zero element of a monoid (e.g. ``{}`` for set, 0 for sum)."""

    monoid_name: str

    @property
    def monoid(self) -> Monoid:
        return lookup_monoid(self.monoid_name)


@dataclass(frozen=True)
class Singleton(Term):
    """The unit injection of a collection monoid, e.g. ``{ e }``."""

    monoid_name: str
    expr: Term

    @property
    def monoid(self) -> Monoid:
        return lookup_monoid(self.monoid_name)

    def children(self) -> tuple[Term, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class Merge(Term):
    """The accumulator applied to two terms: ``e1 ⊕ e2``."""

    monoid_name: str
    left: Term
    right: Term

    @property
    def monoid(self) -> Monoid:
        return lookup_monoid(self.monoid_name)

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)


class Qualifier:
    """A comprehension qualifier: a generator or a filter."""

    __slots__ = ()


@dataclass(frozen=True)
class Generator(Qualifier):
    """A generator ``v <- e``: *v* ranges over the collection *e*."""

    var: str
    domain: Term

    def __str__(self) -> str:
        return f"{self.var} <- {self.domain}"


@dataclass(frozen=True)
class Filter(Qualifier):
    """A filter qualifier: a boolean predicate."""

    pred: Term

    def __str__(self) -> str:
        return str(self.pred)


@dataclass(frozen=True)
class Comprehension(Term):
    """A monoid comprehension ``⊕{ e | q1, ..., qn }``.

    ``monoid_name`` names the accumulator ⊕; ``head`` is the expression e;
    ``qualifiers`` is the (possibly empty) sequence of generators and
    filters, evaluated left to right.
    """

    monoid_name: str
    head: Term
    qualifiers: tuple[Qualifier, ...] = ()

    @property
    def monoid(self) -> Monoid:
        return lookup_monoid(self.monoid_name)

    def children(self) -> tuple[Term, ...]:
        parts: list[Term] = [self.head]
        for qualifier in self.qualifiers:
            if isinstance(qualifier, Generator):
                parts.append(qualifier.domain)
            else:
                parts.append(qualifier.pred)
        return tuple(parts)

    def generators(self) -> tuple[Generator, ...]:
        return tuple(q for q in self.qualifiers if isinstance(q, Generator))

    def filters(self) -> tuple[Filter, ...]:
        return tuple(q for q in self.qualifiers if isinstance(q, Filter))

    @property
    def symbol(self) -> str:
        return MONOID_SYMBOLS[self.monoid_name]


# ---------------------------------------------------------------------------
# Construction helpers (a tiny DSL so tests and examples stay readable)
# ---------------------------------------------------------------------------


def var(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def const(value: Any) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)


def record(**fields: Term) -> RecordCons:
    """Build a record constructor from keyword arguments."""
    return RecordCons(tuple(sorted(fields.items())))


def path(base: Term | str, *attrs: str) -> Term:
    """Build a projection chain ``base.a1.a2...`` from attribute names."""
    expr: Term = Var(base) if isinstance(base, str) else base
    for attr in attrs:
        expr = Proj(expr, attr)
    return expr


def comprehension(
    monoid_name: str, head: Term, *qualifiers: Qualifier | Term | tuple[str, Term]
) -> Comprehension:
    """Build a comprehension; bare terms become filters, pairs generators.

    >>> comprehension("set", var("e"), ("e", Extent("Employees")),
    ...               BinOp("==", path("e", "dno"), const(4)))
    """
    quals: list[Qualifier] = []
    for qualifier in qualifiers:
        if isinstance(qualifier, Qualifier):
            quals.append(qualifier)
        elif isinstance(qualifier, tuple):
            var_name, domain = qualifier
            quals.append(Generator(var_name, domain))
        elif isinstance(qualifier, Term):
            quals.append(Filter(qualifier))
        else:
            raise TypeError(f"bad qualifier {qualifier!r}")
    return Comprehension(monoid_name, head, tuple(quals))


def conj(*preds: Term) -> Term:
    """The conjunction of predicates; () becomes the constant true."""
    terms = [p for p in preds if p != Const(True)]
    if not terms:
        return Const(True)
    result = terms[0]
    for pred in terms[1:]:
        result = BinOp("and", result, pred)
    return result


def conjuncts(pred: Term) -> list[Term]:
    """Split a predicate into its top-level conjuncts."""
    if isinstance(pred, BinOp) and pred.op == "and":
        return conjuncts(pred.left) + conjuncts(pred.right)
    if pred == Const(True):
        return []
    return [pred]


# ---------------------------------------------------------------------------
# Structural traversal
# ---------------------------------------------------------------------------


def subterms(term: Term) -> Iterator[Term]:
    """All subterms of *term*, pre-order, including *term* itself."""
    yield term
    for child in term.children():
        yield from subterms(child)


def transform(term: Term, fn: Callable[[Term], Term]) -> Term:
    """Rebuild *term* bottom-up, applying *fn* to every node.

    *fn* receives each node after its children have been transformed and
    returns the (possibly unchanged) replacement.
    """
    rebuilt = _rebuild(term, tuple(transform(c, fn) for c in term.children()))
    return fn(rebuilt)


def _rebuild(term: Term, children: tuple[Term, ...]) -> Term:
    """Reconstruct a node with new children (in ``children()`` order)."""
    if not children:
        # Leaves (Var, Const, Null, Extent, Zero, and any extension node
        # that reports no children) are reused as-is.
        return term
    if isinstance(term, RecordCons):
        names = [name for name, _ in term.fields]
        return RecordCons(tuple(zip(names, children)))
    if isinstance(term, Proj):
        return Proj(children[0], term.attr)
    if isinstance(term, Lambda):
        return Lambda(term.param, children[0])
    if isinstance(term, Apply):
        return Apply(children[0], children[1])
    if isinstance(term, If):
        return If(children[0], children[1], children[2])
    if isinstance(term, Let):
        return Let(term.var, children[0], children[1])
    if isinstance(term, BinOp):
        return BinOp(term.op, children[0], children[1])
    if isinstance(term, Not):
        return Not(children[0])
    if isinstance(term, IsNull):
        return IsNull(children[0])
    if isinstance(term, Singleton):
        return Singleton(term.monoid_name, children[0])
    if isinstance(term, Merge):
        return Merge(term.monoid_name, children[0], children[1])
    if isinstance(term, Comprehension):
        head, rest = children[0], list(children[1:])
        quals: list[Qualifier] = []
        for qualifier in term.qualifiers:
            child = rest.pop(0)
            if isinstance(qualifier, Generator):
                quals.append(Generator(qualifier.var, child))
            else:
                quals.append(Filter(child))
        return Comprehension(term.monoid_name, head, tuple(quals))
    raise TypeError(f"unknown term type {type(term).__name__}")


# ---------------------------------------------------------------------------
# Variables: free variables, substitution, fresh names
# ---------------------------------------------------------------------------


def free_vars(term: Term) -> frozenset[str]:
    """The free variables of *term* (generators and lambdas bind)."""
    if isinstance(term, Var):
        return frozenset({term.name})
    if isinstance(term, Lambda):
        return free_vars(term.body) - {term.param}
    if isinstance(term, Let):
        return free_vars(term.value) | (free_vars(term.body) - {term.var})
    if isinstance(term, Comprehension):
        bound: set[str] = set()
        free: set[str] = set()
        for qualifier in term.qualifiers:
            if isinstance(qualifier, Generator):
                free |= free_vars(qualifier.domain) - bound
                bound.add(qualifier.var)
            else:
                free |= free_vars(qualifier.pred) - bound
        free |= free_vars(term.head) - bound
        return frozenset(free)
    result: frozenset[str] = frozenset()
    for child in term.children():
        result |= free_vars(child)
    return result


def param_names(term: Term) -> frozenset[str]:
    """The names of every :class:`Param` placeholder inside *term*."""
    return frozenset(
        sub.name for sub in subterms(term) if isinstance(sub, Param)
    )


def bound_vars(term: Term) -> frozenset[str]:
    """All variables bound anywhere inside *term*."""
    result: set[str] = set()
    for sub in subterms(term):
        if isinstance(sub, Lambda):
            result.add(sub.param)
        elif isinstance(sub, Let):
            result.add(sub.var)
        elif isinstance(sub, Comprehension):
            result.update(g.var for g in sub.generators())
    return frozenset(result)


_GLOBAL_FRESH = itertools.count(1)


def fresh_name(hint: str = "v") -> str:
    """A process-unique fresh variable name (used by the unnester)."""
    return f"_{hint}{next(_GLOBAL_FRESH)}"


def substitute(term: Term, mapping: dict[str, Term]) -> Term:
    """Capture-avoiding substitution of free variables.

    Bound variables that would capture a free variable of a substituted term
    are renamed first.
    """
    if not mapping:
        return term
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, Lambda):
        return _subst_binder(term, mapping)
    if isinstance(term, Let):
        return _subst_let(term, mapping)
    if isinstance(term, Comprehension):
        return _subst_comprehension(term, mapping)
    return _rebuild(term, tuple(substitute(c, mapping) for c in term.children()))


def _needs_rename(binder: str, mapping: dict[str, Term], body_free: frozenset[str]) -> bool:
    if binder in mapping:
        return False
    for name, replacement in mapping.items():
        if name in body_free and binder in free_vars(replacement):
            return True
    return False


def _subst_binder(term: Lambda, mapping: dict[str, Term]) -> Lambda:
    inner = {k: v for k, v in mapping.items() if k != term.param}
    if not inner:
        return term
    body_free = free_vars(term.body)
    param = term.param
    body = term.body
    if _needs_rename(param, inner, body_free):
        new_param = fresh_name(param)
        body = substitute(body, {param: Var(new_param)})
        param = new_param
    return Lambda(param, substitute(body, inner))


def _subst_let(term: Let, mapping: dict[str, Term]) -> Let:
    value = substitute(term.value, mapping)
    inner = {k: v for k, v in mapping.items() if k != term.var}
    var_name = term.var
    body = term.body
    if inner and _needs_rename(var_name, inner, free_vars(body)):
        new_var = fresh_name(var_name)
        body = substitute(body, {var_name: Var(new_var)})
        var_name = new_var
    return Let(var_name, value, substitute(body, inner))


def _subst_comprehension(term: Comprehension, mapping: dict[str, Term]) -> Comprehension:
    # Bound generator variables that collide with free variables of the
    # substituted terms are renamed *first*; the substitution is applied to
    # the renamed term (fresh names cannot be captured or re-substituted).
    current = dict(mapping)
    quals: list[Qualifier] = []
    renames: dict[str, Term] = {}
    replacement_free: frozenset[str] = frozenset()
    for replacement in mapping.values():
        replacement_free |= free_vars(replacement)

    def apply(sub: Term) -> Term:
        renamed = substitute(sub, renames) if renames else sub
        return substitute(renamed, current) if current else renamed

    for qualifier in term.qualifiers:
        if isinstance(qualifier, Filter):
            quals.append(Filter(apply(qualifier.pred)))
            continue
        domain = apply(qualifier.domain)
        var_name = qualifier.var
        current.pop(var_name, None)
        if var_name in replacement_free and current:
            new_name = fresh_name(var_name)
            renames[var_name] = Var(new_name)
            var_name = new_name
        else:
            renames.pop(var_name, None)
        quals.append(Generator(var_name, domain))
    head = apply(term.head)
    return Comprehension(term.monoid_name, head, tuple(quals))


def alpha_rename(comp: Comprehension, suffix: str) -> Comprehension:
    """Rename every generator variable of *comp* by appending *suffix*."""
    mapping: dict[str, Term] = {}
    quals: list[Qualifier] = []
    for qualifier in comp.qualifiers:
        if isinstance(qualifier, Generator):
            new_name = qualifier.var + suffix
            domain = substitute(qualifier.domain, mapping)
            mapping[qualifier.var] = Var(new_name)
            quals.append(Generator(new_name, domain))
        else:
            quals.append(Filter(substitute(qualifier.pred, mapping)))
    return Comprehension(comp.monoid_name, substitute(comp.head, mapping), tuple(quals))
