"""The OQL optimizer: algebraic rules, join permutation, and the facade.

The paper's prototype combines query unnesting with "other optimization
techniques, such as materialization of path expressions into joins,
performing selections as early as possible, rearranging join orders,
choosing access paths, assigning evaluation algorithms to operators".  The
stage cascade itself lives in :mod:`repro.core.pipeline`
(:class:`~repro.core.pipeline.QueryPipeline`):

    OQL text
      → parse → translate             (repro.oql)
      → normalize + canonicalize      (repro.core.normalization,  stage "normalize")
      → unnest C1–C9                  (repro.core.unnesting,      stage "unnest")
      → simplify §5                   (repro.core.simplification, stage "simplify")
      → algebraic rewrites            (this module,               stage "optimize")
      → join permutation              (this module + cost model,  stage "optimize")
      → physical planning             (repro.engine.planner,      stage "plan")

This module keeps what is genuinely the *optimizer's* substance — the
:data:`ALGEBRAIC_RULES` rule set ("performing selections as early as
possible") and the cost-based :func:`reorder_joins` — plus
:class:`Optimizer`, the backward-compatible name for the pipeline.

Every phase can be switched off through :class:`OptimizerOptions`; with
``unnest=False`` the query is executed by direct calculus interpretation —
the naive nested-loop strategy of un-optimizing OODB systems, which is the
baseline all benchmarks compare against.

Note on *path materialization*: the paper cites [1] for converting pointer
paths into joins against the referenced extent.  Our object store embeds
related objects by value (there are no inter-object references to chase), so
every path expression is already a direct navigation; the rewrite has no
work to do and is intentionally absent.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import (
    Join,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.terms import Term, conj, conjuncts, free_vars
from repro.core.pipeline import (
    CompiledQuery,
    PlanCache,
    QueryPipeline,
    StageResult,
)
from repro.core.rewrite import RuleSet
from repro.engine.cost import CostModel

__all__ = [
    "ALGEBRAIC_RULES",
    "CompiledQuery",
    "Optimizer",
    "OptimizerOptions",
    "PlanCache",
    "QueryPipeline",
    "StageResult",
    "reorder_joins",
]


@dataclass(frozen=True)
class OptimizerOptions:
    """Phase switches; the ablation benchmarks toggle these."""

    unnest: bool = True
    simplify: bool = True
    algebraic: bool = True
    reorder_joins: bool = True
    hash_joins: bool = True
    index_scans: bool = True
    merge_joins: bool = False
    #: Lower expression trees to native Python closures at plan time
    #: (repro.engine.compile) instead of interpreting the AST per row.
    compiled_exprs: bool = True
    #: Execute plans batch-at-a-time: operators exchange columnar chunks
    #: and expressions run as tier-3 batch kernels.  Requires
    #: ``compiled_exprs``; with it off, execution stays row-at-a-time.
    batched_exec: bool = True
    #: Rows per chunk on the batch path.
    batch_size: int = 1024
    #: Partition the driving extent scan and execute partition-local
    #: pipelines in a thread pool (repro.engine.exchange), merging at the
    #: root in deterministic partition order.  Plans whose shape does not
    #: partition (quantifier roots, Seed-driven plans) run serially.
    parallel: bool = False
    #: Worker/partition count when ``parallel``; 0 picks one worker per
    #: visible core, capped at 8.
    num_workers: int = 0
    #: Type-check the calculus translation (Figure 3) and the final plan
    #: (Figure 6) during compilation, failing fast on ill-typed queries.
    #: On by default: an ill-typed query should die at plan time with a
    #: TypeCheckError naming the subterm, not mid-execution.
    typecheck: bool = True
    #: Per-query governor limits (repro.engine.governor), all off by
    #: default.  ``timeout`` is a wall-clock budget in seconds; ``max_rows``
    #: bounds work units (rows emitted + join pairs considered);
    #: ``max_bytes`` bounds the estimated memory buffered by blocking
    #: operators.  Tripping any of them raises a structured GovernorError.
    timeout: float | None = None
    max_rows: int | None = None
    max_bytes: int | None = None
    #: Execution backend.  ``"memory"`` is the reference in-memory engine;
    #: ``"sqlite"`` shreds extents into flat SQLite tables and lowers
    #: join/unnest chains of the unnested plan to flat SELECTs
    #: (repro.backends.shred), stitching results back with the reference
    #: nest semantics.  Requires ``unnest=True``.
    backend: str = "memory"
    #: SQLite backend: shred into (and reuse) a file-backed store at this
    #: path instead of ``:memory:`` — extents larger than RAM execute out
    #: of core.  A manifest (schema version + per-extent content digest)
    #: decides whether an existing file can be reused or must be re-shred.
    db_path: str | None = None
    #: SQLite backend: lower Reduce/Nest aggregation into SQL GROUP BY +
    #: aggregate expressions (the fast path).  Off pins the original
    #: stitch-in-Python lowering, kept as an oracle path.
    sqlite_pushdown: bool = True


# ---------------------------------------------------------------------------
# The algebraic rule set ("performing selections as early as possible")
# ---------------------------------------------------------------------------

ALGEBRAIC_RULES = RuleSet("algebraic")


@ALGEBRAIC_RULES.rule(
    "select-true-elim", "drop selections whose predicate is constant true"
)
def _select_true(plan: Operator) -> Operator | None:
    from repro.calculus.terms import Const

    if isinstance(plan, Select) and plan.pred == Const(True):
        return plan.child
    return None


@ALGEBRAIC_RULES.rule("select-merge", "fuse adjacent selections")
def _select_merge(plan: Operator) -> Operator | None:
    if isinstance(plan, Select) and isinstance(plan.child, Select):
        return Select(plan.child.child, conj(plan.child.pred, plan.pred))
    return None


@ALGEBRAIC_RULES.rule(
    "join-pred-push-right",
    "move right-only join-predicate conjuncts into a selection on the right "
    "input (sound for outer-joins: a failing tuple pads either way)",
)
def _join_push_right(plan: Operator) -> Operator | None:
    if not isinstance(plan, (Join, OuterJoin)):
        return None
    right_cols = set(plan.right.columns())
    movable = [p for p in conjuncts(plan.pred) if free_vars(p) and free_vars(p) <= right_cols]
    if not movable:
        return None
    rest = [p for p in conjuncts(plan.pred) if p not in movable]
    new_right = Select(plan.right, conj(*movable))
    cls = type(plan)
    return cls(plan.left, new_right, conj(*rest))


@ALGEBRAIC_RULES.rule(
    "join-pred-push-left",
    "move left-only join-predicate conjuncts into a selection on the left "
    "input (inner joins only: an outer-join must keep padding such tuples)",
)
def _join_push_left(plan: Operator) -> Operator | None:
    if not isinstance(plan, Join):
        return None
    left_cols = set(plan.left.columns())
    movable = [p for p in conjuncts(plan.pred) if free_vars(p) and free_vars(p) <= left_cols]
    if not movable:
        return None
    rest = [p for p in conjuncts(plan.pred) if p not in movable]
    return Join(Select(plan.left, conj(*movable)), plan.right, conj(*rest))


@ALGEBRAIC_RULES.rule(
    "select-pushdown",
    "push a selection below a join / unnest when it only references one side",
)
def _select_pushdown(plan: Operator) -> Operator | None:
    if not isinstance(plan, Select):
        return None
    child = plan.child
    parts = conjuncts(plan.pred)
    if isinstance(child, (Join, OuterJoin)):
        left_cols = set(child.left.columns())
        down = [p for p in parts if free_vars(p) <= left_cols]
        if not down:
            return None
        keep = [p for p in parts if p not in down]
        cls = type(child)
        pushed = cls(Select(child.left, conj(*down)), child.right, child.pred)
        return Select(pushed, conj(*keep)) if keep else pushed
    if isinstance(child, (Unnest, OuterUnnest)):
        child_cols = set(child.child.columns())
        down = [p for p in parts if free_vars(p) <= child_cols]
        if not down:
            return None
        keep = [p for p in parts if p not in down]
        cls = type(child)
        pushed = cls(Select(child.child, conj(*down)), child.path, child.var, child.pred)
        return Select(pushed, conj(*keep)) if keep else pushed
    return None


@ALGEBRAIC_RULES.rule(
    "reduce-pred-to-select",
    "materialize a reduce's predicate as a selection so pushdown can move it",
)
def _reduce_pred_to_select(plan: Operator) -> Operator | None:
    from repro.calculus.terms import Const

    if isinstance(plan, Reduce) and plan.pred != Const(True):
        return Reduce(
            Select(plan.child, plan.pred), plan.monoid_name, plan.head
        )
    return None


@ALGEBRAIC_RULES.rule(
    "select-through-nest",
    "push selection conjuncts over the grouping columns below a nest "
    "(dropping a group's input rows and dropping the emitted group agree "
    "exactly when the predicate only reads the group-by columns)",
)
def _select_through_nest(plan: Operator) -> Operator | None:
    if not (isinstance(plan, Select) and isinstance(plan.child, Nest)):
        return None
    nest = plan.child
    group_cols = set(nest.group_by)
    parts = conjuncts(plan.pred)
    down = [p for p in parts if free_vars(p) <= group_cols]
    if not down:
        return None
    keep = [p for p in parts if p not in down]
    from repro.algebra.operators import rebuild

    pushed = rebuild(nest, (Select(nest.child, conj(*down)),))
    return Select(pushed, conj(*keep)) if keep else pushed


@ALGEBRAIC_RULES.rule(
    "seed-join-elim", "a join against the unit stream is the other input"
)
def _seed_join(plan: Operator) -> Operator | None:
    if isinstance(plan, Join):
        if isinstance(plan.left, Seed):
            return Select(plan.right, plan.pred)
        if isinstance(plan.right, Seed):
            return Select(plan.left, plan.pred)
    return None


# ---------------------------------------------------------------------------
# Join permutation (cost-based, Section 6's "rearranging join orders")
# ---------------------------------------------------------------------------


def reorder_joins(plan: Operator, cost_model: CostModel) -> Operator:
    """Greedily reorder maximal chains of inner joins by estimated size.

    Inner joins commute and associate, so a left-deep chain is flattened
    into its leaf inputs plus a pool of predicate conjuncts and rebuilt
    smallest-intermediate-first, attaching each conjunct at the lowest join
    where its columns are available.  Outer operators are never moved.
    """
    from repro.algebra.operators import transform_plan

    def visit(node: Operator) -> Operator:
        if isinstance(node, Join):
            leaves, preds = _flatten_joins(node)
            if len(leaves) > 2:
                return _rebuild_joins(leaves, preds, cost_model)
        return node

    return transform_plan(plan, visit)


def _flatten_joins(plan: Join) -> tuple[list[Operator], list[Term]]:
    leaves: list[Operator] = []
    preds: list[Term] = []

    def walk(node: Operator) -> None:
        if isinstance(node, Join):
            walk(node.left)
            walk(node.right)
            preds.extend(conjuncts(node.pred))
        else:
            leaves.append(node)

    walk(plan)
    return leaves, preds


def _rebuild_joins(
    leaves: list[Operator], preds: list[Term], cost_model: CostModel
) -> Operator:
    remaining = list(leaves)
    pool = list(preds)

    def applicable(cols: set[str]) -> list[Term]:
        return [p for p in pool if free_vars(p) <= cols]

    # Start from the smallest leaf.
    current = min(remaining, key=cost_model.cardinality)
    remaining.remove(current)
    current_cols = set(current.columns())

    while remaining:
        best = None
        best_card = float("inf")
        best_preds: list[Term] = []
        for leaf in remaining:
            cols = current_cols | set(leaf.columns())
            usable = applicable(cols)
            selectivity = cost_model.selectivity(conj(*usable)) if usable else 1.0
            card = (
                cost_model.cardinality(current)
                * cost_model.cardinality(leaf)
                * selectivity
            )
            # Strongly prefer joins with at least one predicate over cross
            # products.
            if not usable:
                card *= 1e6
            if card < best_card:
                best, best_card, best_preds = leaf, card, usable
        assert best is not None
        remaining.remove(best)
        for pred in best_preds:
            pool.remove(pred)
        current = Join(current, best, conj(*best_preds))
        current_cols |= set(best.columns())

    if pool:
        current = Select(current, conj(*pool))
    return current


# ---------------------------------------------------------------------------
# The optimizer facade
# ---------------------------------------------------------------------------


class Optimizer(QueryPipeline):
    """The end-to-end OQL optimizer (the pipeline's historical name).

    Since the staged-pipeline refactor this is exactly
    :class:`repro.core.pipeline.QueryPipeline` — same constructor, same
    entry points (``compile_oql``, ``compile_term``, ``run_oql``,
    ``run_statement``, ``define_view``), plus the plan cache and per-stage
    instrumentation — kept under the paper-era name so existing imports and
    documentation continue to work.
    """
