"""The full OQL optimizer pipeline (paper Section 6).

The paper's prototype combines query unnesting with "other optimization
techniques, such as materialization of path expressions into joins,
performing selections as early as possible, rearranging join orders,
choosing access paths, assigning evaluation algorithms to operators".  This
module is the corresponding driver:

    OQL text
      → parse → translate             (repro.oql)
      → normalize + canonicalize      (repro.core.normalization,  phase "normalization")
      → unnest C1–C9                  (repro.core.unnesting,      phase "unnesting")
      → simplify §5                   (repro.core.simplification, phase "simplification")
      → algebraic rewrites            (this module,               phase "algebraic")
      → join permutation              (this module + cost model,  phase "join-order")
      → physical planning             (repro.engine.planner,      phase "physical")

Every phase can be switched off through :class:`OptimizerOptions`; with
``unnest=False`` the query is executed by direct calculus interpretation —
the naive nested-loop strategy of un-optimizing OODB systems, which is the
baseline all benchmarks compare against.

Note on *path materialization*: the paper cites [1] for converting pointer
paths into joins against the referenced extent.  Our object store embeds
related objects by value (there are no inter-object references to chase), so
every path expression is already a direct navigation; the rewrite has no
work to do and is intentionally absent.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algebra.operators import (
    Join,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.evaluator import Evaluator
from repro.calculus.terms import Term, conj, conjuncts, free_vars
from repro.core.normalization import prepare
from repro.core.rewrite import RewriteEngine, RuleSet
from repro.core.simplification import simplify
from repro.core.unnesting import UnnestingTrace, unnest, _uniquify
from repro.data.database import Database
from repro.engine.cost import CostModel
from repro.engine.planner import PlannerOptions, plan_physical
from repro.engine.physical import PEval, PReduce, PhysicalOperator


@dataclass(frozen=True)
class OptimizerOptions:
    """Phase switches; the ablation benchmarks toggle these."""

    unnest: bool = True
    simplify: bool = True
    algebraic: bool = True
    reorder_joins: bool = True
    hash_joins: bool = True
    #: Type-check the calculus translation (Figure 3) and the final plan
    #: (Figure 6) during compilation, failing fast on ill-typed queries.
    typecheck: bool = False


# ---------------------------------------------------------------------------
# The algebraic rule set ("performing selections as early as possible")
# ---------------------------------------------------------------------------

ALGEBRAIC_RULES = RuleSet("algebraic")


@ALGEBRAIC_RULES.rule(
    "select-true-elim", "drop selections whose predicate is constant true"
)
def _select_true(plan: Operator) -> Operator | None:
    from repro.calculus.terms import Const

    if isinstance(plan, Select) and plan.pred == Const(True):
        return plan.child
    return None


@ALGEBRAIC_RULES.rule("select-merge", "fuse adjacent selections")
def _select_merge(plan: Operator) -> Operator | None:
    if isinstance(plan, Select) and isinstance(plan.child, Select):
        return Select(plan.child.child, conj(plan.child.pred, plan.pred))
    return None


@ALGEBRAIC_RULES.rule(
    "join-pred-push-right",
    "move right-only join-predicate conjuncts into a selection on the right "
    "input (sound for outer-joins: a failing tuple pads either way)",
)
def _join_push_right(plan: Operator) -> Operator | None:
    if not isinstance(plan, (Join, OuterJoin)):
        return None
    right_cols = set(plan.right.columns())
    movable = [p for p in conjuncts(plan.pred) if free_vars(p) and free_vars(p) <= right_cols]
    if not movable:
        return None
    rest = [p for p in conjuncts(plan.pred) if p not in movable]
    new_right = Select(plan.right, conj(*movable))
    cls = type(plan)
    return cls(plan.left, new_right, conj(*rest))


@ALGEBRAIC_RULES.rule(
    "join-pred-push-left",
    "move left-only join-predicate conjuncts into a selection on the left "
    "input (inner joins only: an outer-join must keep padding such tuples)",
)
def _join_push_left(plan: Operator) -> Operator | None:
    if not isinstance(plan, Join):
        return None
    left_cols = set(plan.left.columns())
    movable = [p for p in conjuncts(plan.pred) if free_vars(p) and free_vars(p) <= left_cols]
    if not movable:
        return None
    rest = [p for p in conjuncts(plan.pred) if p not in movable]
    return Join(Select(plan.left, conj(*movable)), plan.right, conj(*rest))


@ALGEBRAIC_RULES.rule(
    "select-pushdown",
    "push a selection below a join / unnest when it only references one side",
)
def _select_pushdown(plan: Operator) -> Operator | None:
    if not isinstance(plan, Select):
        return None
    child = plan.child
    parts = conjuncts(plan.pred)
    if isinstance(child, (Join, OuterJoin)):
        left_cols = set(child.left.columns())
        down = [p for p in parts if free_vars(p) <= left_cols]
        if not down:
            return None
        keep = [p for p in parts if p not in down]
        cls = type(child)
        pushed = cls(Select(child.left, conj(*down)), child.right, child.pred)
        return Select(pushed, conj(*keep)) if keep else pushed
    if isinstance(child, (Unnest, OuterUnnest)):
        child_cols = set(child.child.columns())
        down = [p for p in parts if free_vars(p) <= child_cols]
        if not down:
            return None
        keep = [p for p in parts if p not in down]
        cls = type(child)
        pushed = cls(Select(child.child, conj(*down)), child.path, child.var, child.pred)
        return Select(pushed, conj(*keep)) if keep else pushed
    return None


@ALGEBRAIC_RULES.rule(
    "reduce-pred-to-select",
    "materialize a reduce's predicate as a selection so pushdown can move it",
)
def _reduce_pred_to_select(plan: Operator) -> Operator | None:
    from repro.calculus.terms import Const

    if isinstance(plan, Reduce) and plan.pred != Const(True):
        return Reduce(
            Select(plan.child, plan.pred), plan.monoid_name, plan.head
        )
    return None


@ALGEBRAIC_RULES.rule(
    "select-through-nest",
    "push selection conjuncts over the grouping columns below a nest "
    "(dropping a group's input rows and dropping the emitted group agree "
    "exactly when the predicate only reads the group-by columns)",
)
def _select_through_nest(plan: Operator) -> Operator | None:
    if not (isinstance(plan, Select) and isinstance(plan.child, Nest)):
        return None
    nest = plan.child
    group_cols = set(nest.group_by)
    parts = conjuncts(plan.pred)
    down = [p for p in parts if free_vars(p) <= group_cols]
    if not down:
        return None
    keep = [p for p in parts if p not in down]
    from repro.algebra.operators import rebuild

    pushed = rebuild(nest, (Select(nest.child, conj(*down)),))
    return Select(pushed, conj(*keep)) if keep else pushed


@ALGEBRAIC_RULES.rule(
    "seed-join-elim", "a join against the unit stream is the other input"
)
def _seed_join(plan: Operator) -> Operator | None:
    if isinstance(plan, Join):
        if isinstance(plan.left, Seed):
            return Select(plan.right, plan.pred)
        if isinstance(plan.right, Seed):
            return Select(plan.left, plan.pred)
    return None


# ---------------------------------------------------------------------------
# Join permutation (cost-based, Section 6's "rearranging join orders")
# ---------------------------------------------------------------------------


def reorder_joins(plan: Operator, cost_model: CostModel) -> Operator:
    """Greedily reorder maximal chains of inner joins by estimated size.

    Inner joins commute and associate, so a left-deep chain is flattened
    into its leaf inputs plus a pool of predicate conjuncts and rebuilt
    smallest-intermediate-first, attaching each conjunct at the lowest join
    where its columns are available.  Outer operators are never moved.
    """
    from repro.algebra.operators import transform_plan

    def visit(node: Operator) -> Operator:
        if isinstance(node, Join):
            leaves, preds = _flatten_joins(node)
            if len(leaves) > 2:
                return _rebuild_joins(leaves, preds, cost_model)
        return node

    return transform_plan(plan, visit)


def _flatten_joins(plan: Join) -> tuple[list[Operator], list[Term]]:
    leaves: list[Operator] = []
    preds: list[Term] = []

    def walk(node: Operator) -> None:
        if isinstance(node, Join):
            walk(node.left)
            walk(node.right)
            preds.extend(conjuncts(node.pred))
        else:
            leaves.append(node)

    walk(plan)
    return leaves, preds


def _rebuild_joins(
    leaves: list[Operator], preds: list[Term], cost_model: CostModel
) -> Operator:
    remaining = list(leaves)
    pool = list(preds)

    def applicable(cols: set[str]) -> list[Term]:
        return [p for p in pool if free_vars(p) <= cols]

    # Start from the smallest leaf.
    current = min(remaining, key=cost_model.cardinality)
    remaining.remove(current)
    current_cols = set(current.columns())

    while remaining:
        best = None
        best_card = float("inf")
        best_preds: list[Term] = []
        for leaf in remaining:
            cols = current_cols | set(leaf.columns())
            usable = applicable(cols)
            selectivity = cost_model.selectivity(conj(*usable)) if usable else 1.0
            card = (
                cost_model.cardinality(current)
                * cost_model.cardinality(leaf)
                * selectivity
            )
            # Strongly prefer joins with at least one predicate over cross
            # products.
            if not usable:
                card *= 1e6
            if card < best_card:
                best, best_card, best_preds = leaf, card, usable
        assert best is not None
        remaining.remove(best)
        for pred in best_preds:
            pool.remove(pred)
        current = Join(current, best, conj(*best_preds))
        current_cols |= set(best.columns())

    if pool:
        current = Select(current, conj(*pool))
    return current


# ---------------------------------------------------------------------------
# The compiled query object and the optimizer driver
# ---------------------------------------------------------------------------


@dataclass
class CompiledQuery:
    """Everything the pipeline produced for one query."""

    source: str | None
    term: Term  # calculus translation (before normalization)
    prepared: Term  # normalized, canonicalized, alpha-unique
    logical: Operator | None  # unnested plan (None when unnesting is off)
    optimized: Operator | None  # after simplification + algebraic phases
    trace: UnnestingTrace | None
    options: OptimizerOptions
    rule_firings: list = field(default_factory=list)
    #: ORDER BY keys over the result element (engine extension; the paper
    #: defers list monoids).  Each entry is (key term, ascending).
    order_by: tuple = ()

    def execute(self, database: Database) -> Any:
        """Run the query against *database* using the compiled strategy."""
        if self.optimized is None:
            # Naive nested-loop evaluation of the calculus form.
            result = Evaluator(database).evaluate(self.prepared)
        else:
            physical = self.physical(database)
            assert isinstance(physical, (PReduce, PEval))
            result = physical.value()
        if self.order_by:
            result = _apply_order(result, self.order_by, database)
        return result

    def physical(self, database: Database) -> PhysicalOperator:
        if self.optimized is None:
            raise ValueError("no algebraic plan: query compiled with unnest=False")
        return plan_physical(
            self.optimized,
            database,
            PlannerOptions(hash_joins=self.options.hash_joins),
        )

    def explain(self, database: Database) -> str:
        """An EXPLAIN-style report of the physical plan."""
        return self.physical(database).explain()


def _apply_order(result: Any, order_by: tuple, database: Database) -> Any:
    """Sort a collection result into a list by the ORDER BY keys."""
    from repro.data.values import CollectionValue, ListValue, Record

    if not isinstance(result, CollectionValue):
        raise TypeError("ORDER BY applies to collection-valued queries only")
    evaluator = Evaluator(database)

    def env_of(element: Any) -> dict[str, Any]:
        env = {"value": element}
        if isinstance(element, Record):
            env.update(element)
        return env

    elements = list(result.elements())
    # Stable sorts applied from the least to the most significant key.
    for key_term, ascending in reversed(order_by):
        elements.sort(
            key=lambda element: evaluator.evaluate(key_term, env_of(element)),
            reverse=not ascending,
        )
    return ListValue(elements)


class Optimizer:
    """The end-to-end OQL optimizer."""

    def __init__(
        self,
        database: Database | None = None,
        options: OptimizerOptions | None = None,
    ):
        self.database = database
        self.options = options or OptimizerOptions()
        self.cost_model = CostModel(database)
        #: Named views (``define name as query``), inlined at translation.
        self.views: dict = {}

    def define_view(self, source: str) -> str:
        """Register a view from a ``define name as query`` statement.

        Returns the view's name.  The body may reference previously
        defined views.
        """
        from repro.oql import ast as oql_ast
        from repro.oql.parser import parse_statement

        statement = parse_statement(source)
        if not isinstance(statement, oql_ast.Define):
            raise ValueError("expected a 'define <name> as <query>' statement")
        self.views[statement.name] = statement.query
        return statement.name

    def compile_oql(self, source: str) -> CompiledQuery:
        """Compile an OQL query string."""
        from repro.oql import ast as oql_ast
        from repro.oql.parser import parse
        from repro.oql.translator import (
            peel_order_by,
            translate,
            translate_order_keys,
        )

        schema = self.database.schema if self.database is not None else None
        parsed = parse(source)
        stripped, order_items = peel_order_by(parsed)
        term = translate(stripped, schema, self.views)
        compiled = self.compile_term(term, source=source)
        if order_items:
            assert isinstance(stripped, oql_ast.Select)
            compiled.order_by = translate_order_keys(order_items, stripped, schema)
        return compiled

    def run_statement(self, source: str):
        """Execute a statement: a DEFINE registers a view (returns its
        name); anything else compiles and runs as a query."""
        stripped = source.lstrip().lower()
        if stripped.startswith("define"):
            return self.define_view(source)
        return self.run_oql(source)

    def compile_term(self, term: Term, source: str | None = None) -> CompiledQuery:
        """Compile a calculus term."""
        options = self.options
        if options.typecheck:
            from repro.calculus.typing import infer_type

            schema = self.database.schema if self.database is not None else None
            infer_type(term, schema)
        prepared = _uniquify(prepare(term))
        if not options.unnest:
            return CompiledQuery(
                source, term, prepared, None, None, None, options
            )
        trace = UnnestingTrace()
        logical = unnest(prepared, trace)
        optimized = logical
        engine = RewriteEngine()
        if options.simplify:
            optimized = simplify(optimized)
        if options.algebraic:
            optimized = engine.run_phase(ALGEBRAIC_RULES, optimized)
        if options.reorder_joins:
            optimized = reorder_joins(optimized, self.cost_model)
            if options.algebraic:
                # Reordering can expose new pushdown opportunities.
                optimized = engine.run_phase(ALGEBRAIC_RULES, optimized)
        if options.typecheck:
            from repro.algebra.typing import infer_plan_type

            schema = self.database.schema if self.database is not None else None
            infer_plan_type(optimized, schema)
        return CompiledQuery(
            source, term, prepared, logical, optimized, trace, options,
            rule_firings=engine.firings,
        )

    def run_oql(self, source: str) -> Any:
        """Compile and execute an OQL query in one call."""
        if self.database is None:
            raise ValueError("optimizer has no database to run against")
        return self.compile_oql(source).execute(self.database)
