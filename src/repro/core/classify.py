"""Nesting classification — Kim's taxonomy, as used by the paper.

Section 2 of the paper describes which nesting classes its normalization
handles ("our normalization algorithm unnests all type N and J nested
queries [16]") and which need the full unnesting machinery ("these cases
(which are types A and JA nested queries) require the use of outer-joins
and grouping").  This module classifies a calculus term accordingly:

* **flat** — no nested comprehension at all;
* **type N** — an uncorrelated nested collection query (no free range
  variables of the outer query inside the inner one);
* **type J** — a correlated nested collection query (join predicate links
  inner and outer);
* **type A** — an uncorrelated nested *aggregate* (primitive monoid);
* **type JA** — a correlated nested aggregate.

The classification is used by the benchmark harness to label workloads and
by tests to assert that normalization alone eliminates exactly the N/J
classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calculus.terms import (
    Comprehension,
    Generator,
    Term,
    free_vars,
)

#: Ordered from least to most demanding.
CLASS_ORDER = ("flat", "N", "J", "A", "JA")


@dataclass(frozen=True)
class NestingReport:
    """The nesting classes present in a query."""

    classes: frozenset[str]

    @property
    def dominant(self) -> str:
        """The most demanding class present (flat < N < J < A < JA)."""
        for name in reversed(CLASS_ORDER):
            if name in self.classes or (name == "flat" and not self.classes):
                return name
        return "flat"

    @property
    def needs_grouping(self) -> bool:
        """True when unnesting requires outer-joins and grouping (A/JA),
        i.e. normalization alone cannot remove the nesting."""
        return bool(self.classes & {"A", "JA"})

    def __str__(self) -> str:
        if not self.classes:
            return "flat"
        return "+".join(c for c in CLASS_ORDER if c in self.classes)


def classify(term: Term) -> NestingReport:
    """Classify the nesting of a calculus term (typically pre-normalization)."""
    classes: set[str] = set()
    _walk(term, outer_vars=frozenset(), classes=classes, position=None)
    return NestingReport(frozenset(classes))


def _walk(
    term: Term,
    outer_vars: frozenset[str],
    classes: set[str],
    position: str | None,  # None (top level), "domain", "pred", or "head"
) -> None:
    if isinstance(term, Comprehension):
        if position is not None:
            correlated = bool(free_vars(term) & outer_vars)
            # What needs grouping (types A/JA, per the paper's Section 2
            # discussion): true aggregates and universal quantifiers
            # anywhere, and ANY comprehension embedded in the head — "the
            # computed set must be embedded in the result of every
            # iteration of the outer comprehension".  Existential
            # quantification (rule N8) and nested generator domains
            # (rules N5/N7) are the normalizable N/J classes.
            aggregate = (
                not term.monoid.is_collection and term.monoid_name != "some"
            ) or position == "head"
            if aggregate:
                classes.add("JA" if correlated else "A")
            else:
                classes.add("J" if correlated else "N")
        bound = set(outer_vars)
        for qualifier in term.qualifiers:
            if isinstance(qualifier, Generator):
                _walk(qualifier.domain, frozenset(bound), classes, "domain")
                bound.add(qualifier.var)
            else:
                _walk(qualifier.pred, frozenset(bound), classes, "pred")
        _walk(term.head, frozenset(bound), classes, "head")
        return
    for child in term.children():
        _walk(child, outer_vars, classes, position)


def classify_oql(source: str, schema=None) -> NestingReport:
    """Parse, translate, and classify an OQL query."""
    from repro.oql.translator import parse_and_translate

    return classify(parse_and_translate(source, schema))
