"""The paper's primary contribution: normalization (N1-N9), the unnesting
algorithm (C1-C9), the Section 5 simplification, and the staged
optimizer pipeline."""

from repro.core.classify import NestingReport, classify, classify_oql
from repro.core.normalization import canonicalize, normalize, normalize_predicates, prepare
from repro.core.optimizer import CompiledQuery, Optimizer, OptimizerOptions
from repro.core.pipeline import (
    PIPELINE_STAGES,
    PlanCache,
    QueryPipeline,
    StageResult,
)
from repro.core.simplification import simplify
from repro.core.unnesting import UnnestingError, UnnestingTrace, unnest, unnest_query

__all__ = [
    "CompiledQuery",
    "NestingReport",
    "Optimizer",
    "OptimizerOptions",
    "PIPELINE_STAGES",
    "PlanCache",
    "QueryPipeline",
    "StageResult",
    "UnnestingError",
    "UnnestingTrace",
    "canonicalize",
    "classify",
    "classify_oql",
    "normalize",
    "normalize_predicates",
    "prepare",
    "simplify",
    "unnest",
    "unnest_query",
]
