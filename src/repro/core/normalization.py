"""The normalization algorithm for monoid comprehensions (paper Figure 4).

Normalization puts the calculus into a canonical form: beta-redexes and
record projections are reduced (N1, N2), generator domains built from
conditionals / zeros / singletons / merges are simplified away (N3–N6),
nested comprehension domains are flattened (N7), existential quantifications
in filters are unnested (N8), and same-monoid head nesting collapses (N9).

The paper proves these rules reduce every generator domain to a *path*
(``x.A1...An`` over a range variable or an extent).  Queries that still
contain nesting after normalization — nesting in the head, in aggregates, in
universal quantifiers — are exactly the ones the unnesting algorithm of
Section 4 (:mod:`repro.core.unnesting`) handles with outer-joins and
grouping.

The rules are expressed declaratively in the :data:`NORMALIZATION_RULES`
rule set (run by the generic :class:`~repro.core.rewrite.RewriteEngine`,
mirroring the paper's OPTL organization where "30 lines are for
normalization of comprehensions").

Soundness side conditions (made explicit here, they are implicit in the
paper's monoid well-formedness discussion):

* N6 (merge split) and N7 (flattening) may collapse duplicates when the
  generator domain is an *idempotent* collection (a set) feeding a
  *non-idempotent* accumulator (e.g. ``sum``).  In that configuration the
  rules are not meaning-preserving, so we keep the term nested and let the
  unnesting algorithm deal with it.
* N8 (existential unnesting) requires the outer accumulator to be
  idempotent, as stated in the paper.
"""

from __future__ import annotations

from repro.calculus.monoids import monoid as lookup_monoid
from repro.calculus.terms import (
    Apply,
    BinOp,
    Comprehension,
    Const,
    Filter,
    Generator,
    If,
    Lambda,
    Let,
    Merge,
    Not,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    Term,
    Zero,
    alpha_rename,
    bound_vars,
    conj,
    conjuncts,
    fresh_name,
    free_vars,
    substitute,
    transform,
)
from repro.core.rewrite import RewriteEngine, Rule, RuleSet

NORMALIZATION_RULES = RuleSet("normalization", transform=transform)


def normalize(term: Term) -> Term:
    """Normalize *term* to a fixpoint of rules N1–N9."""
    engine = RewriteEngine()
    return engine.run_phase(NORMALIZATION_RULES, term)


# ---------------------------------------------------------------------------
# Expression-level rules
# ---------------------------------------------------------------------------


@NORMALIZATION_RULES.rule("N1-beta", "(λv.e1) e2 → e1[e2/v]")
def _beta(term: Term) -> Term | None:
    if isinstance(term, Apply) and isinstance(term.fn, Lambda):
        return substitute(term.fn.body, {term.fn.param: term.arg})
    return None


@NORMALIZATION_RULES.rule(
    "let-inline", "let v = e1 in e2 → e2[e1/v] (reduction rule D6)"
)
def _let_inline(term: Term) -> Term | None:
    if isinstance(term, Let):
        return substitute(term.body, {term.var: term.value})
    return None


@NORMALIZATION_RULES.rule("N2-projection", "(…, A = e, …).A → e")
def _projection(term: Term) -> Term | None:
    if isinstance(term, Proj) and isinstance(term.expr, RecordCons):
        try:
            return term.expr.field_expr(term.attr)
        except KeyError:
            return None
    return None


@NORMALIZATION_RULES.rule("if-const", "fold conditionals on literal conditions")
def _if_const(term: Term) -> Term | None:
    if isinstance(term, If):
        if term.cond == Const(True):
            return term.then
        if term.cond == Const(False):
            return term.orelse
    return None


@NORMALIZATION_RULES.rule("not-const", "fold negations of literals")
def _not_const(term: Term) -> Term | None:
    if isinstance(term, Not):
        if term.expr == Const(True):
            return Const(False)
        if term.expr == Const(False):
            return Const(True)
    return None


@NORMALIZATION_RULES.rule("bool-simplify", "true/false identities of and/or")
def _bool_simplify(term: Term) -> Term | None:
    if not (isinstance(term, BinOp) and term.op in ("and", "or")):
        return None
    true, false = Const(True), Const(False)
    if term.op == "and":
        if term.left == true:
            return term.right
        if term.right == true:
            return term.left
        if false in (term.left, term.right):
            return false
    else:
        if term.left == false:
            return term.right
        if term.right == false:
            return term.left
        if true in (term.left, term.right):
            return true
    return None


@NORMALIZATION_RULES.rule("const-fold", "evaluate operations over two literals")
def _const_fold(term: Term) -> Term | None:
    if not isinstance(term, BinOp):
        return None
    if term.op in ("and", "or"):
        return None  # handled by bool-simplify
    if not (isinstance(term.left, Const) and isinstance(term.right, Const)):
        return None
    from repro.calculus.evaluator import EvaluationError, apply_binop

    try:
        value = apply_binop(term.op, term.left.value, term.right.value)
    except (EvaluationError, TypeError):
        return None  # e.g. division by zero stays a runtime error
    return Const(value)


# ---------------------------------------------------------------------------
# Comprehension rules
# ---------------------------------------------------------------------------


@NORMALIZATION_RULES.rule(
    "some-head-to-filter",
    "some{ p | q̄ } → some{ true | q̄, p } (the paper's two spellings of "
    "QUERY C's inner quantifier; the filter form feeds join predicates)",
)
def _some_head_to_filter(term: Term) -> Term | None:
    if (
        isinstance(term, Comprehension)
        and term.monoid_name == "some"
        and term.head != Const(True)
    ):
        return Comprehension(
            "some", Const(True), term.qualifiers + (Filter(term.head),)
        )
    return None


@NORMALIZATION_RULES.rule("filter-const", "D3/D4: constant filters")
def _filter_const(term: Term) -> Term | None:
    if not isinstance(term, Comprehension):
        return None
    if any(
        isinstance(q, Filter) and q.pred == Const(False) for q in term.qualifiers
    ):
        return Zero(term.monoid_name)
    if any(
        isinstance(q, Filter) and q.pred == Const(True) for q in term.qualifiers
    ):
        quals = tuple(
            q
            for q in term.qualifiers
            if not (isinstance(q, Filter) and q.pred == Const(True))
        )
        return Comprehension(term.monoid_name, term.head, quals)
    return None


def _generator_rule(matcher):
    """Build a rule body that applies *matcher* to the first matching
    generator of a comprehension."""

    def apply(term: Term) -> Term | None:
        if not isinstance(term, Comprehension):
            return None
        for index, qualifier in enumerate(term.qualifiers):
            if isinstance(qualifier, Generator):
                replacement = matcher(term, index, qualifier)
                if replacement is not None:
                    return replacement
        return None

    return apply


def _n4(comp: Comprehension, index: int, gen: Generator) -> Term | None:
    if isinstance(gen.domain, Zero):
        return Zero(comp.monoid_name)
    return None


def _n5(comp: Comprehension, index: int, gen: Generator) -> Term | None:
    if isinstance(gen.domain, Singleton):
        before = comp.qualifiers[:index]
        after = comp.qualifiers[index + 1 :]
        return _substitute_tail(comp, before, after, {gen.var: gen.domain.expr})
    return None


def _n3(comp: Comprehension, index: int, gen: Generator) -> Term | None:
    domain = gen.domain
    if not isinstance(domain, If):
        return None
    before = comp.qualifiers[:index]
    after = comp.qualifiers[index + 1 :]
    then_comp = Comprehension(
        comp.monoid_name,
        comp.head,
        before + (Filter(domain.cond), Generator(gen.var, domain.then)) + after,
    )
    else_comp = Comprehension(
        comp.monoid_name,
        comp.head,
        before + (Filter(Not(domain.cond)), Generator(gen.var, domain.orelse)) + after,
    )
    return Merge(comp.monoid_name, then_comp, else_comp)


def _n6(comp: Comprehension, index: int, gen: Generator) -> Term | None:
    domain = gen.domain
    if not isinstance(domain, Merge):
        return None
    domain_monoid = lookup_monoid(domain.monoid_name)
    # Sound unless an idempotent merge (set union) feeds a non-idempotent
    # accumulator (duplicates would be double-counted).
    if not (comp.monoid.idempotent or not domain_monoid.idempotent):
        return None
    before = comp.qualifiers[:index]
    after = comp.qualifiers[index + 1 :]
    left = Comprehension(
        comp.monoid_name, comp.head, before + (Generator(gen.var, domain.left),) + after
    )
    right = Comprehension(
        comp.monoid_name, comp.head, before + (Generator(gen.var, domain.right),) + after
    )
    return Merge(comp.monoid_name, left, right)


def _n7(comp: Comprehension, index: int, gen: Generator) -> Term | None:
    domain = gen.domain
    if not isinstance(domain, Comprehension):
        return None
    domain_monoid = domain.monoid
    if not domain_monoid.is_collection:
        raise TypeError(
            f"generator domain is a {domain.monoid_name} comprehension, "
            "which is not a collection"
        )
    if not (comp.monoid.idempotent or not domain_monoid.idempotent):
        return None
    inner = _avoid_capture(domain, comp)
    before = comp.qualifiers[:index]
    after = comp.qualifiers[index + 1 :]
    return Comprehension(
        comp.monoid_name,
        comp.head,
        before
        + inner.qualifiers
        + (Generator(gen.var, Singleton(inner.monoid_name, inner.head)),)
        + after,
    )


NORMALIZATION_RULES.rules.extend(
    [
        Rule("N4-zero-domain", _generator_rule(_n4),
             "⊕{e | …, v <- zero, …} → zero"),
        Rule("N5-singleton-domain", _generator_rule(_n5),
             "⊕{e | …, v <- {e'}, …} binds v to e'"),
        Rule("N3-conditional-domain", _generator_rule(_n3),
             "split a generator over if-then-else"),
        Rule("N6-merge-domain", _generator_rule(_n6),
             "split a generator over e1 ⊕ e2"),
        Rule("N7-flatten-domain", _generator_rule(_n7),
             "flatten a generator over a nested comprehension"),
    ]
)


@NORMALIZATION_RULES.rule(
    "N8-exists-filter",
    "⊕{e | …, some{p | r̄}, …} → ⊕{e | …, r̄, p, …} for idempotent ⊕",
)
def _n8(term: Term) -> Term | None:
    if not isinstance(term, Comprehension) or not term.monoid.idempotent:
        return None
    for index, qualifier in enumerate(term.qualifiers):
        if not isinstance(qualifier, Filter):
            continue
        pred = qualifier.pred
        if isinstance(pred, Comprehension) and pred.monoid_name == "some":
            inner = _avoid_capture(pred, term)
            new_quals = (
                term.qualifiers[:index]
                + inner.qualifiers
                + (Filter(inner.head),)
                + term.qualifiers[index + 1 :]
            )
            return Comprehension(term.monoid_name, term.head, new_quals)
    return None


@NORMALIZATION_RULES.rule(
    "N9-head-flatten", "⊕{ ⊕{e | r̄} | s̄ } → ⊕{ e | s̄, r̄ } for primitive ⊕"
)
def _n9(term: Term) -> Term | None:
    if (
        isinstance(term, Comprehension)
        and isinstance(term.head, Comprehension)
        and term.head.monoid_name == term.monoid_name
        and not term.monoid.is_collection
    ):
        inner = _avoid_capture(term.head, term)
        return Comprehension(
            term.monoid_name, inner.head, term.qualifiers + inner.qualifiers
        )
    return None


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _substitute_tail(
    comp: Comprehension,
    before: tuple[Qualifier, ...],
    after: tuple[Qualifier, ...],
    mapping: dict[str, Term],
) -> Comprehension:
    """Substitute in the qualifiers after a removed generator and the head."""
    new_after: list[Qualifier] = []
    current = dict(mapping)
    for qualifier in after:
        if isinstance(qualifier, Generator):
            new_after.append(
                Generator(qualifier.var, substitute(qualifier.domain, current))
            )
            current.pop(qualifier.var, None)
        else:
            new_after.append(Filter(substitute(qualifier.pred, current)))
    head = substitute(comp.head, current)
    return Comprehension(comp.monoid_name, head, before + tuple(new_after))


def _avoid_capture(inner: Comprehension, context: Term) -> Comprehension:
    """Rename *inner*'s generators when they clash with *context*'s names."""
    inner_vars = {g.var for g in inner.generators()}
    context_names = bound_vars(context) | free_vars(context)
    if inner_vars & context_names:
        return alpha_rename(inner, fresh_name("r"))
    return inner


# ---------------------------------------------------------------------------
# Predicate normalization (Section 6: "34 lines for normalization of
# predicates (using DeMorgan's laws)")
# ---------------------------------------------------------------------------

_NEGATED_COMPARISON = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def normalize_predicates(term: Term) -> Term:
    """Push negations inward (DeMorgan) and flip negated comparisons."""
    return transform(term, _predicate_step)


def _predicate_step(term: Term) -> Term:
    if not isinstance(term, Not):
        return term
    inner = term.expr
    if isinstance(inner, Not):
        return inner.expr
    if isinstance(inner, Const) and isinstance(inner.value, bool):
        return Const(not inner.value)
    if isinstance(inner, BinOp):
        if inner.op == "and":
            return BinOp(
                "or",
                normalize_predicates(Not(inner.left)),
                normalize_predicates(Not(inner.right)),
            )
        if inner.op == "or":
            return BinOp(
                "and",
                normalize_predicates(Not(inner.left)),
                normalize_predicates(Not(inner.right)),
            )
        if inner.op in _NEGATED_COMPARISON:
            return BinOp(_NEGATED_COMPARISON[inner.op], inner.left, inner.right)
    # ¬∃ → ∀¬ and ¬∀ → ∃¬ (quantifier duality of the all/some monoids).
    if isinstance(inner, Comprehension) and inner.monoid_name == "some":
        return Comprehension(
            "all", normalize_predicates(Not(inner.head)), inner.qualifiers
        )
    if isinstance(inner, Comprehension) and inner.monoid_name == "all":
        return Comprehension(
            "some", normalize_predicates(Not(inner.head)), inner.qualifiers
        )
    return term


# ---------------------------------------------------------------------------
# Canonical form for the unnesting algorithm
# ---------------------------------------------------------------------------


def canonicalize(term: Term) -> Term:
    """Rewrite every comprehension into ``⊕{ e | v1 <- path1, ..., pred }``.

    The unnesting algorithm (Figure 7) assumes generators come first and all
    filters are conjoined into a single trailing predicate.  Moving a filter
    later in the qualifier list never changes the produced bindings, so this
    is meaning-preserving for any monoid.
    """
    return transform(term, _canonical_step)


def _canonical_step(term: Term) -> Term:
    if not isinstance(term, Comprehension):
        return term
    generators = term.generators()
    preds = [f.pred for f in term.filters()]
    pred = conj(*preds)
    quals: tuple[Qualifier, ...] = tuple(generators)
    if conjuncts(pred):
        quals += (Filter(pred),)
    return Comprehension(term.monoid_name, term.head, quals)


def prepare(term: Term) -> Term:
    """The full front half of the pipeline: normalize, then canonicalize."""
    return canonicalize(normalize(normalize_predicates(term)))
