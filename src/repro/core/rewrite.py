"""A small declarative rewrite-rule engine — the OPTGEN/OPTL analogue.

The paper expresses its optimizer in OPTL, "a language for specifying query
optimizers ... [that] extends C++ with a number of term manipulation
constructs and with a rule language for specifying query transformations",
compiled by OPTGEN.  In Python the natural equivalent is first-class rule
objects: a :class:`Rule` is a named partial function on nodes, a
:class:`RuleSet` groups rules into an optimizer phase, and
:class:`RewriteEngine` drives them to a fixpoint bottom-up, recording every
firing.

The engine is generic over the node type: it only needs a *transform*
function ``transform(node, fn) -> node`` that rebuilds a tree bottom-up
applying ``fn`` at every node.  The calculus normalization phase runs it
with :func:`repro.calculus.terms.transform`; the algebraic phase with
:func:`repro.algebra.operators.transform_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Rule:
    """One rewrite rule: returns a replacement node or None when not applicable."""

    name: str
    apply: Callable[[Any], Any | None]
    description: str = ""

    def __call__(self, node: Any) -> Any | None:
        return self.apply(node)


@dataclass
class RuleSet:
    """A named optimizer phase: an ordered collection of rules.

    ``transform`` is the tree-walker the phase runs under; it defaults to
    the algebra's plan transformer and can be any function with the
    signature ``transform(node, fn) -> node``.
    """

    name: str
    rules: list[Rule] = field(default_factory=list)
    transform: Callable[[Any, Callable[[Any], Any]], Any] | None = None

    def rule(self, name: str, description: str = "") -> Callable:
        """Decorator registering a function as a rule of this set."""

        def register(fn: Callable[[Any], Any | None]) -> Rule:
            rule = Rule(name, fn, description)
            self.rules.append(rule)
            return rule

        return register

    def __len__(self) -> int:
        return len(self.rules)


@dataclass
class Firing:
    """A record of one rule application."""

    phase: str
    rule: str

    def __str__(self) -> str:
        return f"{self.phase}/{self.rule}"


def _default_transform(node: Any, fn: Callable[[Any], Any]) -> Any:
    from repro.algebra.operators import transform_plan

    return transform_plan(node, fn)


class RewriteEngine:
    """Applies rule sets to a tree, bottom-up, to a fixpoint per phase."""

    def __init__(self, max_passes: int = 500):
        self._max_passes = max_passes
        self.firings: list[Firing] = []

    def run_phase(self, phase: RuleSet, node: Any) -> Any:
        """Run one phase to a fixpoint; records firings."""
        transform = phase.transform or _default_transform
        for _ in range(self._max_passes):
            changed = False

            def attempt(current: Any) -> Any:
                nonlocal changed
                for rule in phase.rules:
                    replacement = rule(current)
                    if replacement is not None and replacement != current:
                        self.firings.append(Firing(phase.name, rule.name))
                        changed = True
                        return replacement
                return current

            node = transform(node, attempt)
            if not changed:
                return node
        raise RuntimeError(
            f"optimizer phase {phase.name!r} did not reach a fixpoint"
        )

    def run(self, phases: list[RuleSet], node: Any) -> Any:
        for phase in phases:
            node = self.run_phase(phase, node)
        return node
