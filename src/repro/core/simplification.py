"""The post-unnesting simplification rule of Section 5 (Figure 8).

The unnesting algorithm compiles group-by style queries — such as

    select e.dno, avg(e.salary) from Employees e
    where e.age > 30 group by e.dno

whose calculus translation is *implicitly nested* — into a self outer-join
followed by a nest (Figure 8.A).  Section 5's simplification rule

    Γ^{⊕/e/b}_{p/w}( g(a) =⨝_{a.M = b.M} g(b) )  →  Γ^{⊕}( σ_p(g(a)) )

recognizes that the outer-join joins a subplan *with a renamed copy of
itself* on equality of grouping expressions, and replaces the pair with a
direct grouping of the single subplan (Figure 8.B).

Matching details (all checked, the rewrite refuses otherwise):

* Each join side must be a Select/Scan tower over the same extent; the
  unnester may leave the right side's own predicate inside the outer-join
  predicate (rule C6 does that), so right-only conjuncts of the join
  predicate count as right-side selections.  After splitting those off, the
  remaining join predicate must be a conjunction of equalities
  ``f_i(a) = f_i(b)`` with the two towers equal under the renaming a→b.
* The rewritten nest groups by the *values* of the ``f_i``, so the rewrite
  inserts a :class:`~repro.algebra.operators.Map` that materializes them as
  columns (the paper's Γ groups by an arbitrary function, which subsumes
  this).
* The parent may then mention the old left variables only *through* the
  ``f_i``; the rewrite substitutes the new key columns there.
* Collapsing per-tuple groups into per-key groups drops duplicate
  (key, aggregate) pairs, so the parent accumulator must be idempotent
  (it is ``set`` in every group-by query the rule targets).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import (
    Map,
    Nest,
    Operator,
    OuterJoin,
    Reduce,
    Scan,
    Select,
    transform_plan,
)
from repro.calculus.terms import (
    BinOp,
    Term,
    Var,
    conjuncts,
    free_vars,
    fresh_name,
    substitute,
    transform,
)


def simplify(plan: Operator) -> Operator:
    """Apply the Section 5 simplification wherever it matches in *plan*."""
    return transform_plan(plan, _simplify_node)


def _simplify_node(plan: Operator) -> Operator:
    if isinstance(plan, Reduce) and plan.monoid.idempotent:
        child = plan.child
        if isinstance(child, Nest):
            rewritten = _try_rewrite(plan, child)
            if rewritten is not None:
                return rewritten
    return plan


@dataclass(frozen=True)
class _Tower:
    """A Select*/Scan tower decomposed into its scan and predicate set."""

    scan: Scan
    preds: tuple[Term, ...]


def _decompose(plan: Operator) -> _Tower | None:
    preds: list[Term] = []
    while isinstance(plan, Select):
        preds.extend(conjuncts(plan.pred))
        plan = plan.child
    if isinstance(plan, Scan):
        return _Tower(plan, tuple(preds))
    return None


def _try_rewrite(parent: Reduce, nest: Nest) -> Operator | None:
    join = nest.child
    if not isinstance(join, OuterJoin):
        return None

    left = _decompose(join.left)
    right = _decompose(join.right)
    if left is None or right is None or left.scan.extent != right.scan.extent:
        return None

    # The nest must group by exactly the left side and null-test the right.
    if tuple(nest.group_by) != tuple(join.left.columns()):
        return None
    if not set(nest.null_vars) <= set(join.right.columns()):
        return None

    a_var, b_var = left.scan.var, right.scan.var
    rename_ab = {a_var: Var(b_var)}
    rename_ba = {b_var: Var(a_var)}

    # Split the join predicate: equalities f(a) = f(b) versus right-only
    # conjuncts (which count as right-side selections).
    equalities: list[Term] = []
    right_preds: list[Term] = list(right.preds)
    for part in conjuncts(join.pred):
        names = free_vars(part)
        if names <= {b_var}:
            right_preds.append(part)
            continue
        expr = _equality_of_copies(part, a_var, b_var, rename_ab)
        if expr is None:
            return None
        equalities.append(expr)
    if not equalities:
        return None

    # The towers must be copies of each other under the renaming.
    left_set = {substitute(p, rename_ab) for p in left.preds}
    if left_set != set(right_preds):
        return None

    # Head and contribution predicate of the nest range over the right copy.
    if not (free_vars(nest.head) <= {b_var} and free_vars(nest.pred) <= {b_var}):
        return None

    key_columns = tuple(fresh_name("k") for _ in equalities)
    bindings = tuple(zip(key_columns, equalities))

    # The parent may reference the left variable only via the f_i.
    replacements = {expr: Var(col) for col, expr in bindings}
    new_head = _replace_exprs(parent.head, replacements)
    new_pred = _replace_exprs(parent.pred, replacements)
    allowed = set(key_columns) | {nest.out_var}
    if not (free_vars(new_head) <= allowed and free_vars(new_pred) <= allowed):
        return None

    # Null-test the key columns: in the outer-join form a NULL grouping key
    # matches nothing (not even its own copy — NULL = NULL is false), so its
    # group is padded to the monoid zero.  The direct grouping must preserve
    # that, or NULL-keyed rows would wrongly aggregate with themselves.
    grouped = Nest(
        Map(join.left, bindings),
        nest.monoid_name,
        substitute(nest.head, rename_ba),
        group_by=key_columns,
        null_vars=key_columns,
        out_var=nest.out_var,
        pred=substitute(nest.pred, rename_ba),
    )
    return Reduce(grouped, parent.monoid_name, new_head, new_pred)


def _equality_of_copies(
    part: Term, a_var: str, b_var: str, rename_ab: dict[str, Term]
) -> Term | None:
    """If *part* is ``f(a) = f(b)``, return ``f(a)``; otherwise None."""
    if not (isinstance(part, BinOp) and part.op == "=="):
        return None
    sides = [part.left, part.right]
    a_side = next((s for s in sides if free_vars(s) == {a_var}), None)
    b_side = next((s for s in sides if free_vars(s) == {b_var}), None)
    if a_side is None or b_side is None:
        return None
    if substitute(a_side, rename_ab) != b_side:
        return None
    return a_side


def _replace_exprs(term: Term, replacements: dict[Term, Term]) -> Term:
    """Replace occurrences of whole expressions (not just variables)."""
    return transform(term, lambda t: replacements.get(t, t))


def simplification_applies(plan: Operator) -> bool:
    """True when :func:`simplify` changes *plan* (used by reports/tests)."""
    return simplify(plan) != plan
