"""The query unnesting algorithm — Section 4 of the paper (Figure 7).

This is the paper's primary contribution: a *complete* translation of monoid
comprehensions into the nested relational algebra that removes every form of
query nesting, using only two genuinely new rewrite ideas (rules C8 and C9)
on top of a straightforward compositional translation.

The translation state mirrors the paper's judgement ``[[ ⊕{e | q̄} ]]ᵘ_w (E)``:

* ``E``  — the algebra plan built so far (``None`` before rule C1 fires);
* ``w``  — the variables in scope, i.e. exactly ``plan.columns()``;
* ``u``  — when compiling an *inner* comprehension (a "box" in the paper's
  Figure 2 terminology), the variables introduced inside the box by
  outer-joins/outer-unnests.  The paper encodes inner-ness as ``u ≠ ()``;
  we carry an explicit :class:`_Box` record holding the variables that were
  in scope at box entry (the group-by list ``w\\u``) and the null-test
  variables ``u``.

Rule map (Figure 7 → this module):

* C1  first outermost generator over an extent → ``Scan`` (+ pushed ``Select``)
* C2  outermost comprehension, generators exhausted → ``Reduce``
* C3  outermost generator over an extent → ``Join``
* C4  outermost generator over a path → ``Unnest``
* C5  inner comprehension, generators exhausted → ``Nest``
* C6  inner generator over an extent → ``OuterJoin``
* C7  inner generator over a path → ``OuterUnnest``
* C8  nested comprehension in the predicate, free variables covered by ``w``
      → splice the inner box onto the current stream (applied as early as
      possible, per the paper)
* C9  nested comprehension in the head once all generators are consumed →
      same splice

Completeness (the paper's Theorem 1) holds constructively here: after
normalization the only places nested comprehensions can remain are the
predicate and the head, C8/C9 eliminate each of those, and generator domains
that normalization could not flatten (a set comprehension feeding a
non-idempotent accumulator) are handled by splicing the domain as a box and
unnesting its output — so ``unnest`` is total on prepared terms.

Soundness (Theorem 2) is checked empirically by the test suite, which
compares plan evaluation against the direct calculus semantics over
randomized databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.operators import (
    Eval,
    Join,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.terms import (
    Comprehension,
    Extent,
    Filter,
    Generator,
    Lambda,
    Term,
    Var,
    conj,
    conjuncts,
    free_vars,
    fresh_name,
    substitute,
    transform,
)
from repro.core.normalization import prepare
from repro.errors import PlanningError


class UnnestingError(PlanningError):
    """The translator was given a term it cannot compile (internal bug)."""


@dataclass
class TraceEntry:
    """One rule firing, recorded for the Figure 2 style walkthrough."""

    rule: str
    detail: str
    plan: Operator | None = None

    def __str__(self) -> str:
        return f"({self.rule}) {self.detail}"


@dataclass
class UnnestingTrace:
    """The sequence of rule firings of one translation."""

    entries: list[TraceEntry] = field(default_factory=list)

    def record(self, rule: str, detail: str, plan: Operator | None = None) -> None:
        self.entries.append(TraceEntry(rule, detail, plan))

    def rules_fired(self) -> list[str]:
        return [entry.rule for entry in self.entries]

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self.entries)


@dataclass(frozen=True)
class _Box:
    """Inner-comprehension state: the paper's ``u``/``w\\u`` bookkeeping."""

    entry_vars: tuple[str, ...]  # variables in scope at box entry (group-by)
    out_var: str  # the variable the box binds its result to


def unnest(term: Term, trace: UnnestingTrace | None = None) -> Operator:
    """Translate a *prepared* calculus term into an unnested algebra plan.

    The input must already be normalized and canonicalized (see
    :func:`repro.core.normalization.prepare`); use :func:`unnest_query` for
    the one-call version.  Returns a plan rooted at ``Reduce`` (or ``Eval``
    for top-level terms that are not comprehensions).
    """
    translator = _Translator(trace or UnnestingTrace())
    return translator.translate_query(term)


def unnest_query(term: Term, trace: UnnestingTrace | None = None) -> Operator:
    """Prepare (normalize + canonicalize) and unnest *term*."""
    return unnest(_uniquify(prepare(term)), trace)


class _Translator:
    """One translation run; holds the trace and fresh-name state."""

    def __init__(self, trace: UnnestingTrace):
        self.trace = trace

    # -- entry points ---------------------------------------------------------

    def translate_query(self, term: Term) -> Operator:
        if isinstance(term, Comprehension):
            return self._compile(term, plan=None, box=None)
        # Top-level non-comprehension (e.g. a Merge produced by rule N3):
        # splice every nested comprehension onto a Seed and evaluate the
        # residual expression over the resulting singleton stream.
        plan: Operator = Seed()
        residual = term
        while True:
            nested = _find_spliceable(residual, set(plan.columns()))
            if nested is None:
                break
            out = fresh_name("m")
            plan = self._compile(
                nested, plan, box=_Box(plan.columns(), out)
            )
            residual = _replace(residual, nested, Var(out))
            self.trace.record("C9", f"spliced top-level box into {out}", plan)
        leftover = _any_comprehension(residual)
        if leftover is not None:
            raise UnnestingError(
                f"unspliceable comprehension remains at top level: {leftover}"
            )
        return Eval(plan, residual)

    # -- the main compilation loop (Figure 7) ---------------------------------

    def _compile(
        self,
        comp: Comprehension,
        plan: Operator | None,
        box: _Box | None,
    ) -> Operator:
        """Compile one (canonical) comprehension.

        *box* is None for the outermost comprehension (rules C1–C4, C2) and
        a :class:`_Box` for inner comprehensions (rules C5–C7).
        """
        if box is not None and plan is None:
            raise UnnestingError("inner comprehension compiled without a stream")
        pending = list(comp.generators())
        preds = [c for f in comp.filters() for c in conjuncts(f.pred)]
        head = comp.head
        null_vars: list[str] = []

        while True:
            w = set(plan.columns()) if plan is not None else set()

            # (C8) — splice a nested comprehension from the predicate as soon
            # as its free variables no longer depend on pending generators.
            spliced = False
            for index, pred in enumerate(preds):
                nested = _find_spliceable(pred, w)
                if nested is None:
                    continue
                plan, out = self._splice(nested, plan)
                # Replace the comprehension everywhere it occurs (predicate
                # and head), so a repeated subquery is computed only once.
                preds[:] = [_replace(p, nested, Var(out)) for p in preds]
                head = _replace(head, nested, Var(out))
                self.trace.record(
                    "C8", f"predicate box -> {out}: {nested}", plan
                )
                spliced = True
                break
            if spliced:
                continue

            if pending:
                gen = pending.pop(0)
                plan, introduced = self._compile_generator(
                    gen, plan, preds, box is not None
                )
                if box is not None:
                    null_vars.extend(introduced)
                continue

            # (C9) — splice nested comprehensions remaining in the head.
            nested = _find_spliceable(head, w)
            if nested is not None:
                plan, out = self._splice(nested, plan)
                head = _replace(head, nested, Var(out))
                preds[:] = [_replace(p, nested, Var(out)) for p in preds]
                self.trace.record("C9", f"head box -> {out}: {nested}", plan)
                continue
            break

        residual = conj(*preds)
        leftover = _any_comprehension(residual) or _any_comprehension(head)
        if leftover is not None:
            raise UnnestingError(
                f"comprehension survived unnesting (free variables "
                f"{sorted(free_vars(leftover))} never came into scope): {leftover}"
            )

        if plan is None:
            plan = Seed()
        if box is None:
            result: Operator = Reduce(plan, comp.monoid_name, head, residual)
            self.trace.record("C2", f"reduce[{comp.monoid_name}]", result)
            return result
        # Rule C5: the Γ grouping variables are the range variables in scope
        # at box entry.  The paper's correctness argument assumes bindings of
        # those variables are distinguishable *objects*; the evaluators honor
        # that by keying groups with identity_key, so two value-equal objects
        # drawn from a bag extent still form two separate groups (the
        # identity layer in repro.data.values).
        result = Nest(
            plan,
            comp.monoid_name,
            head,
            group_by=box.entry_vars,
            null_vars=tuple(null_vars),
            out_var=box.out_var,
            pred=residual,
        )
        self.trace.record(
            "C5",
            f"nest[{comp.monoid_name}] group_by({','.join(box.entry_vars) or '()'})"
            f" -> {box.out_var}",
            result,
        )
        return result

    def _splice(
        self, nested: Comprehension, plan: Operator | None
    ) -> tuple[Operator, str]:
        """Compile *nested* as a box consuming the current stream."""
        if plan is None:
            plan = Seed()
        out = fresh_name("m")
        new_plan = self._compile(nested, plan, box=_Box(plan.columns(), out))
        return new_plan, out

    def _compile_generator(
        self,
        gen: Generator,
        plan: Operator | None,
        preds: list[Term],
        inner: bool,
    ) -> tuple[Operator, list[str]]:
        """Compile one generator: rules C1, C3, C4 (outer) / C6, C7 (inner)."""
        domain = gen.domain
        introduced = [gen.var]

        # A generator domain that normalization could not flatten (e.g. a set
        # comprehension feeding a bag/sum accumulator): splice the domain as
        # a box and unnest its output variable.
        if isinstance(domain, Comprehension):
            plan, out = self._splice(domain, plan)
            self.trace.record("C8", f"generator-domain box -> {out}", plan)
            domain = Var(out)

        w = set(plan.columns()) if plan is not None else set()
        own, mixed = _split_predicates(preds, w, gen.var)

        if isinstance(domain, Extent):
            right: Operator = Scan(domain.name, gen.var)
            if not inner:
                if plan is None or isinstance(plan, Seed):
                    # (C1) — the first generator seeds the plan.
                    plan = Select(right, conj(*own)) if own else right
                    if mixed:
                        plan = Select(plan, conj(*mixed))
                    self.trace.record("C1", f"scan {gen.var} <- {domain.name}", plan)
                else:
                    # (C3) — join with the extent; p[v] is pushed below.
                    if own:
                        right = Select(right, conj(*own))
                    plan = Join(plan, right, conj(*mixed))
                    self.trace.record("C3", f"join {gen.var} <- {domain.name}", plan)
            else:
                # (C6) — inner generators must not block the stream.
                plan = OuterJoin(plan, right, conj(*(own + mixed)))
                self.trace.record(
                    "C6", f"outer-join {gen.var} <- {domain.name}", plan
                )
            return plan, introduced

        # Path (or other expression) domain.
        pred = conj(*(own + mixed))
        if not inner:
            # (C4)
            if plan is None:
                plan = Seed()
            plan = Unnest(plan, domain, gen.var, pred)
            self.trace.record("C4", f"unnest {gen.var} <- {domain}", plan)
        else:
            # (C7)
            assert plan is not None
            plan = OuterUnnest(plan, domain, gen.var, pred)
            self.trace.record("C7", f"outer-unnest {gen.var} <- {domain}", plan)
        return plan, introduced


# ---------------------------------------------------------------------------
# Predicate bookkeeping
# ---------------------------------------------------------------------------


def _split_predicates(
    preds: list[Term], w: set[str], var: str
) -> tuple[list[Term], list[Term]]:
    """Extract the conjuncts that become evaluable once *var* is in scope.

    Returns ``(own, mixed)`` — the paper's ``p[v]`` (conjuncts over *var*
    alone) and ``p[(w, v)]`` (conjuncts over *var* plus in-scope variables).
    Conjuncts that still contain a nested comprehension are left for rule C8,
    and conjuncts referencing not-yet-bound variables stay pending.
    ``preds`` is mutated: extracted conjuncts are removed.
    """
    own: list[Term] = []
    mixed: list[Term] = []
    remaining: list[Term] = []
    for pred in preds:
        if _any_comprehension(pred) is not None:
            remaining.append(pred)
            continue
        names = free_vars(pred)
        if names <= {var}:
            own.append(pred)
        elif var in names and names <= w | {var}:
            mixed.append(pred)
        else:
            remaining.append(pred)
    preds[:] = remaining
    return own, mixed


# ---------------------------------------------------------------------------
# Term search/replace helpers
# ---------------------------------------------------------------------------


def _find_spliceable(term: Term, w: set[str]) -> Comprehension | None:
    """The first outermost comprehension in *term* whose free vars ⊆ w.

    Comprehensions under a lambda are skipped (their result depends on the
    lambda's argument, so they cannot be computed once per stream tuple).
    """
    if isinstance(term, Comprehension):
        if free_vars(term) <= w:
            return term
        # An inner part of a non-spliceable comprehension can still not be
        # spliced from *here*: its free variables include generator vars of
        # the enclosing comprehension, which are not stream columns.
        return None
    if isinstance(term, Lambda):
        return None
    for child in term.children():
        found = _find_spliceable(child, w)
        if found is not None:
            return found
    return None


def _any_comprehension(term: Term) -> Comprehension | None:
    """Any comprehension subterm of *term* (or None)."""
    if isinstance(term, Comprehension):
        return term
    for child in term.children():
        found = _any_comprehension(child)
        if found is not None:
            return found
    return None


def _replace(term: Term, target: Term, replacement: Term) -> Term:
    """Replace every alpha-equivalent occurrence of *target* by *replacement*.

    Two comprehensions that differ only in the names of their bound
    variables denote the same subquery; replacing all of them with the same
    box output variable is the common-subexpression sharing the paper's
    graph-reduction discussion (Section 2) calls for.
    """
    canon = _alpha_canonical(target)

    def step(t: Term) -> Term:
        if isinstance(t, Comprehension) and _alpha_canonical(t) == canon:
            return replacement
        return t

    return transform(term, step)


def _alpha_canonical(term: Term) -> Term:
    """Rename bound variables to canonical positional names.

    Alpha-equivalent terms map to identical canonical terms; free variables
    are untouched, so the comparison respects the context.
    """
    counter = [0]

    def canon(t: Term, env: dict[str, str]) -> Term:
        if isinstance(t, Var):
            return Var(env.get(t.name, t.name))
        if isinstance(t, Comprehension):
            inner_env = dict(env)
            quals: list = []
            for qualifier in t.qualifiers:
                if isinstance(qualifier, Generator):
                    domain = canon(qualifier.domain, inner_env)
                    name = f"\x00{counter[0]}"
                    counter[0] += 1
                    inner_env[qualifier.var] = name
                    quals.append(Generator(name, domain))
                else:
                    quals.append(Filter(canon(qualifier.pred, inner_env)))
            return Comprehension(
                t.monoid_name, canon(t.head, inner_env), tuple(quals)
            )
        if isinstance(t, Lambda):
            inner_env = dict(env)
            name = f"\x00{counter[0]}"
            counter[0] += 1
            inner_env[t.param] = name
            return Lambda(name, canon(t.body, inner_env))
        children = tuple(canon(c, env) for c in t.children())
        from repro.calculus.terms import _rebuild

        return _rebuild(t, children)

    return canon(term, {})


def _uniquify(term: Term) -> Term:
    """Give every comprehension generator a globally unique variable name.

    The C8 early-splice test compares free variables against stream columns;
    shadowed names would make that test unsound, so the translator runs on
    alpha-unique terms.
    """

    def rename(t: Term) -> Term:
        if not isinstance(t, Comprehension):
            return t
        mapping: dict[str, Term] = {}
        quals = []
        for qualifier in t.qualifiers:
            if isinstance(qualifier, Generator):
                domain = substitute(qualifier.domain, mapping)
                new_name = fresh_name(qualifier.var.strip("_") or "v")
                mapping[qualifier.var] = Var(new_name)
                quals.append(Generator(new_name, domain))
            else:
                quals.append(Filter(substitute(qualifier.pred, mapping)))
        return Comprehension(t.monoid_name, substitute(t.head, mapping), tuple(quals))

    return transform(term, rename)
