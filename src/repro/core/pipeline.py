"""The staged query pipeline: compilation as explicit, instrumented stages.

The paper's Section 6 prototype is a fixed cascade — parse, translate to the
monoid calculus, normalize, unnest (C1–C9), simplify (§5), algebraic
rewrites + join permutation, physical planning.  Historically this repo ran
that cascade inside one monolithic ``compile`` function; this module makes
each step a named **stage** that records what it produced, how long it took,
and a pretty-printed snapshot of the intermediate form, so ``explain`` can
show every representation a query passes through:

    parse → translate → typecheck → normalize → unnest → simplify
          → optimize → plan

On top of the staged compiler sit the two serving-layer features:

* **prepared statements** — OQL ``:name`` placeholders compile into
  :class:`~repro.calculus.terms.Param` terms; the same
  :class:`CompiledQuery` is then :meth:`~CompiledQuery.bind`-able to any
  parameter values, so one plan serves every binding;
* a **plan cache** — :class:`PlanCache` is an LRU keyed by the
  whitespace-normalized source, the database's schema version, the option
  set, and the view-definition epoch, with hit/miss counters surfaced
  through :class:`~repro.engine.executor.ExecutionStats`.

:class:`repro.core.optimizer.Optimizer` is the backward-compatible facade:
a :class:`QueryPipeline` subclass that keeps the historical entry-point
names.  (This module deliberately imports the rewrite-rule definitions
lazily so that ``repro.core.optimizer`` can import it without a cycle.)
"""

from __future__ import annotations

import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping

from repro.algebra.operators import Operator
from repro.algebra.pretty import pretty_plan
from repro.calculus.evaluator import Evaluator, UnboundParameterError
from repro.calculus.pretty import pretty
from repro.calculus.terms import Term, param_names
from repro.core.normalization import prepare
from repro.core.rewrite import RewriteEngine
from repro.core.simplification import simplify
from repro.core.unnesting import UnnestingTrace, unnest, _uniquify
from repro.data.database import Database
from repro.engine.compile import ExprCompiler
from repro.engine.cost import CostModel
from repro.engine.executor import ExecutionStats, run_with_stats
from repro.engine.governor import CancelToken, Governor
from repro.engine.exchange import PGather
from repro.engine.planner import PlannerOptions, plan_physical
from repro.engine.physical import PEval, PReduce, PhysicalOperator
from repro.errors import ExecutionError, PlanningError, QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.optimizer import OptimizerOptions

__all__ = [
    "PIPELINE_STAGES",
    "CompiledQuery",
    "PlanCache",
    "QueryPipeline",
    "StageResult",
]

def _planner_options(options: "OptimizerOptions") -> PlannerOptions:
    """The physical-planning knobs carried by a set of optimizer options."""
    return PlannerOptions(
        hash_joins=options.hash_joins,
        index_scans=options.index_scans,
        merge_joins=options.merge_joins,
        compiled_exprs=options.compiled_exprs,
        batched_exec=options.batched_exec,
        batch_size=options.batch_size,
        parallel=options.parallel,
        num_workers=options.num_workers,
    )


#: The stage names, in pipeline order.  A given compilation records a subset:
#: ``parse``/``translate`` only appear when compiling from OQL text,
#: ``typecheck`` only with ``OptimizerOptions.typecheck``, the algebraic
#: stages only with their phase switches on, and ``plan`` only when the
#: pipeline has a database to bind the physical plan to.
PIPELINE_STAGES = (
    "parse",
    "translate",
    "typecheck",
    "normalize",
    "unnest",
    "simplify",
    "optimize",
    "plan",
)


@dataclass(frozen=True)
class StageResult:
    """One pipeline stage's outcome: what it made, how long it took.

    ``snapshot`` is a pretty-printed rendering of the intermediate form the
    stage produced (OQL text, calculus term, algebraic plan, or physical
    plan) — the raw object is in ``value``.
    """

    name: str
    elapsed_ms: float
    snapshot: str
    value: Any = field(repr=False, default=None)


class PlanCache:
    """A tiny LRU cache of :class:`CompiledQuery` objects.

    Keys combine the whitespace-normalized query text with everything else
    that determines the plan: the database's
    :attr:`~repro.data.database.Database.schema_version`, the
    ``OptimizerOptions``, and the pipeline's view-definition epoch — so a
    schema change or view redefinition can never serve a stale plan.

    >>> cache = PlanCache(maxsize=2)
    >>> cache.lookup("k") is None
    True
    >>> cache.hits, cache.misses
    (0, 1)
    """

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Any, CompiledQuery] = OrderedDict()
        # Guards entries *and* counters: the LRU move_to_end/popitem pair
        # is not atomic under concurrent lookups, and a thread pool serving
        # one pipeline hits exactly that race.
        self._lock = threading.Lock()

    def lookup(self, key: Any) -> CompiledQuery | None:
        """The cached plan for *key*, or None; updates the hit/miss counters."""
        with self._lock:
            try:
                compiled = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return compiled

    def store(self, key: Any, compiled: CompiledQuery) -> None:
        """Insert a plan, evicting the least recently used beyond maxsize."""
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> tuple[int, int, int]:
        """A consistent ``(hits, misses, entries)`` snapshot.

        Reading the counters as separate attribute accesses can interleave
        with a concurrent lookup and observe a torn pair; serving-layer
        metrics read through here instead.
        """
        with self._lock:
            return self.hits, self.misses, len(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PlanCache({len(self._entries)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


@dataclass
class CompiledQuery:
    """Everything the pipeline produced for one query.

    A compiled query is a *template*: any :class:`~repro.calculus.terms.Param`
    placeholders (OQL ``:name``) stay symbolic in the plan, and values are
    supplied per execution via :meth:`bind` or ``execute(db, name=value)``.
    Cached instances are shared, so :meth:`bind` returns a copy instead of
    mutating.
    """

    source: str | None
    term: Term  # calculus translation (before normalization)
    prepared: Term  # normalized, canonicalized, alpha-unique
    logical: Operator | None  # unnested plan (None when unnesting is off)
    optimized: Operator | None  # after simplification + algebraic phases
    trace: UnnestingTrace | None
    options: "OptimizerOptions"
    rule_firings: list = field(default_factory=list)
    #: ORDER BY keys over the result element (engine extension; the paper
    #: defers list monoids).  Each entry is (key term, ascending).
    order_by: tuple = ()
    #: Per-stage instrumentation, in execution order.
    stages: tuple[StageResult, ...] = ()
    #: Parameter values fixed by :meth:`bind` (merged with execute kwargs).
    params: Mapping[str, Any] = field(default_factory=dict)
    #: The memoized expression→closure compiler for this query.  Shared by
    #: every execution (and every :meth:`bind` copy), so a plan-cache hit
    #: pays zero codegen: the closures compiled for the first execution are
    #: reused verbatim.  None until the first compiled execution, or always
    #: when ``options.compiled_exprs`` is off.
    _compiler: ExprCompiler | None = field(
        default=None, repr=False, compare=False
    )
    #: Lazily computed cache for :attr:`param_names` — the term walk is
    #: per-query, not per-execution (``bind`` copies carry it along).
    _param_names: frozenset[str] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def param_names(self) -> frozenset[str]:
        """The ``:name`` placeholders this query expects values for."""
        names = self._param_names
        if names is None:
            names = param_names(self.term)
            self._param_names = names
        return names

    def bind(self, **params: Any) -> "CompiledQuery":
        """A copy of this query with the given parameter values fixed.

        Later :meth:`bind` calls and ``execute`` keyword arguments override
        earlier bindings.  Binding a name the query has no placeholder for
        is an error (it would be silently ignored at run time otherwise).
        """
        unknown = set(params) - self.param_names
        if unknown:
            raise UnboundParameterError(
                f"query has no parameter(s) {sorted(unknown)}; "
                f"declared: {sorted(self.param_names)}"
            )
        return replace(self, params={**self.params, **params})

    def _merged_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Bound values merged with per-call overrides, checked for coverage."""
        if set(params) - self.param_names:
            raise UnboundParameterError(
                f"query has no parameter(s) "
                f"{sorted(set(params) - self.param_names)}; "
                f"declared: {sorted(self.param_names)}"
            )
        merged = {**self.params, **params}
        missing = self.param_names - merged.keys()
        if missing:
            raise UnboundParameterError(
                f"missing value(s) for parameter(s) {sorted(missing)}"
            )
        return merged

    def make_governor(
        self, cancel_token: "CancelToken | None" = None
    ) -> Governor | None:
        """A fresh per-execution governor when any limit or token applies
        (options carry the limits; the token arrives per call), else None —
        the ungoverned hot path stays entirely hook-free."""
        options = self.options
        if (
            cancel_token is None
            and options.timeout is None
            and options.max_rows is None
            and options.max_bytes is None
        ):
            return None
        governor = Governor(
            timeout=options.timeout,
            max_rows=options.max_rows,
            max_bytes=options.max_bytes,
            token=cancel_token,
            source=self.source,
        )
        # Check once up front: an already-cancelled token or an already
        # expired deadline must trip even on queries too small to ever
        # reach the first amortized checkpoint.
        governor.check()
        return governor

    def execute(
        self,
        database: Database,
        *,
        cancel_token: "CancelToken | None" = None,
        **params: Any,
    ) -> Any:
        """Run the query against *database* using the compiled strategy.

        Keyword arguments supply (or override) parameter values for this
        call only; every declared placeholder must end up with a value.
        *cancel_token* attaches a cooperative cancellation handle to this
        execution (see :class:`repro.engine.governor.CancelToken`).

        Any failure is a :class:`~repro.errors.QueryError`: structured
        errors pass through annotated with the query source, and anything
        else is wrapped in :class:`~repro.errors.ExecutionError`.
        """
        try:
            values = self._merged_params(params)
            governor = self.make_governor(cancel_token)
            if self.options.backend == "sqlite":
                from repro.backends.shred import execute_shredded

                result = execute_shredded(
                    self, database, values, governor=governor
                )
            elif self.options.backend != "memory":
                raise PlanningError(
                    f"unknown backend {self.options.backend!r}; "
                    "expected 'memory' or 'sqlite'"
                )
            elif self.optimized is None:
                # Naive nested-loop evaluation of the calculus form.
                result = Evaluator(
                    database, values, governor=governor
                ).evaluate(self.prepared)
            else:
                physical = self.physical(database, values, governor=governor)
                assert isinstance(physical, (PReduce, PEval, PGather))
                result = physical.value()
            if self.order_by:
                result = _apply_order(result, self.order_by, database, values)
        except QueryError as exc:
            raise exc.annotate(source=self.source, stage="execute")
        except Exception as exc:
            raise ExecutionError(
                f"unexpected {type(exc).__name__}: {exc}",
                source=self.source,
                stage="execute",
            ) from exc
        return result

    def expr_compiler(self) -> ExprCompiler | None:
        """The closure compiler shared by this query's executions (or None
        when ``compiled_exprs`` is off), created on first use.

        The lazy init is benignly racy under threads: two first executions
        may build two compilers and one wins, wasting one codegen pass but
        never corrupting state (the compiler's runtime cell is itself
        thread-local, so the winner is safe to share).
        """
        if not self.options.compiled_exprs:
            return None
        if self._compiler is None:
            self._compiler = ExprCompiler()
        return self._compiler

    def physical(
        self,
        database: Database,
        params: Mapping[str, Any] | None = None,
        profile: bool = False,
        governor: Governor | None = None,
    ) -> PhysicalOperator:
        """The physical plan bound to *database* (and parameter values)."""
        if self.optimized is None:
            raise ValueError("no algebraic plan: query compiled with unnest=False")
        return plan_physical(
            self.optimized,
            database,
            _planner_options(self.options),
            params,
            profile=profile,
            compiler=self.expr_compiler(),
            governor=governor,
        )

    def explain(self, database: Database) -> str:
        """An EXPLAIN-style report of the physical plan (or, on the SQLite
        backend, the operator tree with the generated flat SQL)."""
        if self.options.backend == "sqlite":
            from repro.backends.shred import explain_shredded

            return explain_shredded(self, database)
        return self.physical(database).explain()

    def explain_stages(self) -> str:
        """Every intermediate representation, one block per recorded stage.

        The staged equivalent of EXPLAIN VERBOSE: shows the query as OQL,
        as a calculus term before and after normalization, as an algebraic
        plan through unnesting/simplification/optimization, and as a
        physical plan — each with the stage's wall time.
        """
        if not self.stages:
            return "(no stage records: query compiled without instrumentation)"
        blocks = []
        for stage in self.stages:
            blocks.append(
                f"== {stage.name} ({stage.elapsed_ms:.3f} ms) ==\n{stage.snapshot}"
            )
        return "\n\n".join(blocks)


def _apply_order(
    result: Any,
    order_by: tuple,
    database: Database,
    params: Mapping[str, Any] | None = None,
) -> Any:
    """Sort a collection result into a list by the ORDER BY keys."""
    from repro.data.values import CollectionValue, ListValue, Record

    if not isinstance(result, CollectionValue):
        raise ExecutionError(
            "ORDER BY applies to collection-valued queries only"
        )
    evaluator = Evaluator(database, params)

    def env_of(element: Any) -> dict[str, Any]:
        env = {"value": element}
        if isinstance(element, Record):
            env.update(element)
        return env

    elements = list(result.elements())
    # Stable sorts applied from the least to the most significant key.
    for key_term, ascending in reversed(order_by):
        elements.sort(
            key=lambda element: evaluator.evaluate(key_term, env_of(element)),
            reverse=not ascending,
        )
    return ListValue(elements)


class QueryPipeline:
    """The end-to-end OQL compiler/executor as an explicit stage sequence.

    Each compilation runs the stages of :data:`PIPELINE_STAGES` that apply,
    timing each one and recording a snapshot in the resulting
    :class:`CompiledQuery`'s ``stages``; ``stage_counts`` accumulates how
    often each stage ran across the pipeline's lifetime, which is how the
    tests (and users) verify that a plan-cache hit skips recompilation.

    Compiled plans are cached in :attr:`plan_cache`; anything that could
    change the plan — new extents, new indexes, fresh statistics
    (``Database.schema_version``), redefined views, different options —
    changes the cache key, so stale plans are never served.
    """

    def __init__(
        self,
        database: Database | None = None,
        options: "OptimizerOptions | None" = None,
        cache_size: int = 128,
    ):
        from repro.core.optimizer import OptimizerOptions

        self.database = database
        self.options = options or OptimizerOptions()
        self.cost_model = CostModel(database)
        #: Named views (``define name as query``), inlined at translation.
        self.views: dict = {}
        self.plan_cache = PlanCache(cache_size)
        #: How many times each stage has actually run (cache hits add none).
        self.stage_counts: Counter[str] = Counter()
        self._counts_lock = threading.Lock()
        self._views_epoch = 0

    # -- statements ---------------------------------------------------------

    def define_view(self, source: str) -> str:
        """Register a view from a ``define name as query`` statement.

        Returns the view's name.  The body may reference previously
        defined views.  Redefinition bumps the view epoch, invalidating
        every cached plan that might have inlined the old body.
        """
        from repro.oql import ast as oql_ast
        from repro.oql.parser import parse_statement

        statement = parse_statement(source)
        if not isinstance(statement, oql_ast.Define):
            raise ValueError("expected a 'define <name> as <query>' statement")
        self.views[statement.name] = statement.query
        self._views_epoch += 1
        return statement.name

    def run_statement(self, source: str):
        """Execute a statement: a DEFINE registers a view (returns its
        name); anything else compiles and runs as a query."""
        stripped = source.lstrip().lower()
        if stripped.startswith("define"):
            return self.define_view(source)
        return self.run_oql(source)

    # -- compilation --------------------------------------------------------

    def cache_key(self, source: str) -> tuple:
        """The plan-cache key for *source* under the current state."""
        schema_version = (
            self.database.schema_version if self.database is not None else None
        )
        return (
            " ".join(source.split()),
            schema_version,
            self.options,
            self._views_epoch,
        )

    def compile_oql(self, source: str) -> CompiledQuery:
        """Compile an OQL query string, consulting the plan cache first.

        Compilation failures are always :class:`~repro.errors.QueryError`
        subclasses: structured errors from the stages pass through
        annotated with the source text; anything else (an internal bug)
        is wrapped in :class:`~repro.errors.PlanningError`.
        """
        return self.compile_oql_cached(source)[0]

    def compile_oql_cached(self, source: str) -> tuple[CompiledQuery, bool]:
        """:meth:`compile_oql` plus whether *this* call hit the plan cache.

        The flag comes from the lookup itself, not from reading the shared
        hit counter before and after — that read-modify-write is racy under
        concurrent sessions (another session's hit in the window makes this
        execution claim a cached plan it recompiled, and vice versa).
        """
        key = self.cache_key(source)
        cached = self.plan_cache.lookup(key)
        if cached is not None:
            return cached, True
        try:
            compiled = self._compile_source(source)
        except QueryError as exc:
            raise exc.annotate(source=source)
        except Exception as exc:
            raise PlanningError(
                f"unexpected {type(exc).__name__}: {exc}", source=source
            ) from exc
        self.plan_cache.store(key, compiled)
        return compiled, False

    def compile_term(self, term: Term, source: str | None = None) -> CompiledQuery:
        """Compile a calculus term (entering the pipeline after translate)."""
        stages: list[StageResult] = []
        return self._compile_from_term(term, source, stages)

    def _compile_source(self, source: str) -> CompiledQuery:
        """Run the full stage cascade on OQL text (no cache involvement)."""
        from repro.oql import ast as oql_ast
        from repro.oql.parser import parse
        from repro.oql.pretty import unparse
        from repro.oql.translator import (
            peel_order_by,
            translate,
            translate_order_keys,
        )

        schema = self.database.schema if self.database is not None else None
        stages: list[StageResult] = []

        parsed = self._stage(stages, "parse", lambda: parse(source), unparse)
        stripped, order_items = peel_order_by(parsed)
        term = self._stage(
            stages,
            "translate",
            lambda: translate(stripped, schema, self.views),
            pretty,
        )
        compiled = self._compile_from_term(term, source, stages)
        if order_items:
            assert isinstance(stripped, oql_ast.Select)
            compiled.order_by = translate_order_keys(order_items, stripped, schema)
        return compiled

    def _compile_from_term(
        self, term: Term, source: str | None, stages: list[StageResult]
    ) -> CompiledQuery:
        """The stage cascade from the calculus term onward."""
        from repro.core.optimizer import ALGEBRAIC_RULES, reorder_joins

        options = self.options
        schema = self.database.schema if self.database is not None else None
        if options.typecheck:
            from repro.calculus.typing import infer_type

            self._stage(
                stages, "typecheck", lambda: infer_type(term, schema), str
            )
        prepared = self._stage(
            stages, "normalize", lambda: _uniquify(prepare(term)), pretty
        )
        if not options.unnest:
            return CompiledQuery(
                source, term, prepared, None, None, None, options,
                stages=tuple(stages),
            )
        trace = UnnestingTrace()
        logical = self._stage(
            stages, "unnest", lambda: unnest(prepared, trace), pretty_plan
        )
        optimized = logical
        engine = RewriteEngine()
        if options.simplify:
            optimized = self._stage(
                stages, "simplify", lambda: simplify(logical), pretty_plan
            )
        if options.algebraic or options.reorder_joins:

            def optimize() -> Operator:
                plan = optimized
                if options.algebraic:
                    plan = engine.run_phase(ALGEBRAIC_RULES, plan)
                if options.reorder_joins:
                    plan = reorder_joins(plan, self.cost_model)
                    if options.algebraic:
                        # Reordering can expose new pushdown opportunities.
                        plan = engine.run_phase(ALGEBRAIC_RULES, plan)
                return plan

            optimized = self._stage(stages, "optimize", optimize, pretty_plan)
        if options.typecheck:
            from repro.algebra.typing import infer_plan_type

            infer_plan_type(optimized, schema)
        expr_compiler = ExprCompiler() if options.compiled_exprs else None
        if self.database is not None:
            final = optimized
            self._stage(
                stages,
                "plan",
                lambda: plan_physical(
                    final,
                    self.database,
                    _planner_options(options),
                    compiler=expr_compiler,
                ),
                lambda physical: physical.explain(),
            )
        return CompiledQuery(
            source, term, prepared, logical, optimized, trace, options,
            rule_firings=engine.firings, stages=tuple(stages),
            _compiler=expr_compiler,
        )

    def _stage(self, stages: list, name: str, fn, render) -> Any:
        """Run one stage: time *fn*, snapshot via *render*, record, count.

        The stage boundary is also the error boundary: a structured error
        is annotated with the stage that raised it, and a raw exception —
        which would otherwise leak a ``KeyError``/``TypeError`` out of
        ``run_oql`` — is wrapped in :class:`~repro.errors.PlanningError`.
        """
        start = time.perf_counter()
        try:
            value = fn()
        except QueryError as exc:
            raise exc.annotate(stage=name)
        except Exception as exc:
            raise PlanningError(
                f"unexpected {type(exc).__name__} in {name}: {exc}", stage=name
            ) from exc
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        with self._counts_lock:
            self.stage_counts[name] += 1
        stages.append(StageResult(name, elapsed_ms, render(value), value))
        return value

    # -- execution ----------------------------------------------------------

    def run_oql(
        self,
        source: str,
        *,
        cancel_token: CancelToken | None = None,
        **params: Any,
    ) -> Any:
        """Compile (through the cache) and execute an OQL query.

        Never propagates a raw Python exception: every failure — parse,
        name resolution, typecheck, execution fault, or a tripped governor
        limit — is a :class:`~repro.errors.QueryError` subclass carrying
        the query source and the pipeline stage that failed.
        """
        if self.database is None:
            raise ValueError("pipeline has no database to run against")
        return self.compile_oql(source).execute(
            self.database, cancel_token=cancel_token, **params
        )

    def run_oql_stats(
        self,
        source: str,
        *,
        cancel_token: CancelToken | None = None,
        **params: Any,
    ) -> ExecutionStats:
        """Compile (through the cache), execute, and collect statistics.

        The returned :class:`~repro.engine.executor.ExecutionStats` carries
        the plan-cache counters and whether *this* execution reused a
        cached plan, alongside the usual per-operator row counts — plus
        governor accounting (work units ticked, peak buffered bytes) when
        limits are configured.
        """
        if self.database is None:
            raise ValueError("pipeline has no database to run against")
        compiled, from_cache = self.compile_oql_cached(source)
        try:
            values = compiled._merged_params(params)
            governor = compiled.make_governor(cancel_token)
            if compiled.options.backend == "sqlite":
                from repro.backends.shred import execute_shredded

                flat_queries: list = []
                start = time.perf_counter()
                result = execute_shredded(
                    compiled,
                    self.database,
                    values,
                    governor=governor,
                    flat_queries=flat_queries,
                )
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                stats = ExecutionStats(
                    result=result,
                    elapsed_ms=elapsed_ms,
                    backend="sqlite",
                    flat_queries=flat_queries,
                )
            elif compiled.options.backend != "memory":
                raise PlanningError(
                    f"unknown backend {compiled.options.backend!r}; "
                    "expected 'memory' or 'sqlite'"
                )
            elif compiled.optimized is None:
                start = time.perf_counter()
                result = Evaluator(
                    self.database, values, governor=governor
                ).evaluate(compiled.prepared)
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                stats = ExecutionStats(result=result, elapsed_ms=elapsed_ms)
            else:
                stats = run_with_stats(
                    compiled.optimized,
                    self.database,
                    _planner_options(compiled.options),
                    values,
                    compiler=compiled.expr_compiler(),
                    governor=governor,
                )
            if compiled.order_by:
                stats.result = _apply_order(
                    stats.result, compiled.order_by, self.database, values
                )
        except QueryError as exc:
            raise exc.annotate(source=source, stage="execute")
        except Exception as exc:
            raise ExecutionError(
                f"unexpected {type(exc).__name__}: {exc}",
                source=source,
                stage="execute",
            ) from exc
        if governor is not None:
            stats.governor_ticks = governor.ticks
            stats.governor_peak_bytes = governor.peak_bytes
        stats.cache_hits, stats.cache_misses, _ = self.plan_cache.stats()
        stats.from_cache = from_cache
        return stats
