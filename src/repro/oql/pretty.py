"""Unparser: render an OQL AST back to query text.

``parse(unparse(ast)) == ast`` — the round-trip property the test suite
checks over every corpus query.  Useful for logging, for the CLI, and for
generating regression corpora.
"""

from __future__ import annotations

from repro.oql.ast import (
    Aggregate,
    BinaryOp,
    Define,
    Exists,
    Flatten,
    ForAll,
    InCollection,
    Literal,
    Name,
    Node,
    OrderItem,
    Parameter,
    Path,
    Select,
    SelectItem,
    SetOp,
    Struct,
    UnaryOp,
)

#: Binding strength, loosest first; used to decide parenthesization.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3, "==": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}


def unparse(node: Node) -> str:
    """Render *node* as parseable OQL text."""
    if isinstance(node, Define):
        return f"define {node.name} as {_unparse(node.query, -1)}"
    return _unparse(node, -1)


def _unparse(node: Node, parent_precedence: int) -> str:
    if isinstance(node, Literal):
        return _literal(node)
    if isinstance(node, Name):
        return node.name
    if isinstance(node, Parameter):
        return f":{node.name}"
    if isinstance(node, Path):
        return f"{_unparse(node.base, 10)}.{node.attr}"
    if isinstance(node, UnaryOp):
        if node.op == "not":
            # 'not' takes a comparison-level operand, so looser operands
            # (and/or, quantifiers) must be parenthesized.
            return _wrap(f"not {_unparse(node.operand, 3)}", 3, parent_precedence)
        return _wrap(f"-{_unparse(node.operand, 6)}", 6, parent_precedence)
    if isinstance(node, BinaryOp):
        op = "=" if node.op == "==" else node.op
        precedence = _PRECEDENCE[op]
        text = (
            f"{_unparse(node.left, precedence)} {op} "
            f"{_unparse(node.right, precedence + 1)}"
        )
        return _wrap(text, precedence, parent_precedence)
    if isinstance(node, InCollection):
        text = f"{_unparse(node.element, 4)} in {_unparse(node.collection, 4)}"
        return _wrap(text, 3, parent_precedence)
    if isinstance(node, Struct):
        inner = ", ".join(f"{n}: {_unparse(e, 0)}" for n, e in node.fields)
        return f"struct( {inner} )"
    if isinstance(node, Aggregate):
        return f"{node.function}( {_unparse(node.argument, 0)} )"
    if isinstance(node, Flatten):
        return f"flatten( {_unparse(node.argument, 0)} )"
    if isinstance(node, Exists):
        if node.var == "__element" and node.predicate == Literal(True):
            return f"exists( {_unparse(node.domain, 0)} )"
        text = (
            f"exists {node.var} in {_unparse(node.domain, 4)}: "
            f"{_unparse(node.predicate, 1)}"
        )
        return _wrap(text, 1, parent_precedence)
    if isinstance(node, ForAll):
        text = (
            f"for all {node.var} in {_unparse(node.domain, 4)}: "
            f"{_unparse(node.predicate, 1)}"
        )
        return _wrap(text, 1, parent_precedence)
    if isinstance(node, Select):
        return _wrap_select(_select(node), parent_precedence)
    if isinstance(node, SetOp):
        text = (
            f"{_unparse(node.left, 0)} {node.op} "
            f"{_unparse(node.right, 1)}"
        )
        return _wrap_select(text, parent_precedence)
    raise TypeError(f"cannot unparse {type(node).__name__}")


def _literal(node: Literal) -> str:
    value = node.value
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = (
            value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\t", "\\t")
            .replace("\r", "\\r")
        )
        return f'"{escaped}"'
    return str(value)


def _select(node: Select) -> str:
    parts = ["select"]
    if node.distinct:
        parts.append("distinct")
    parts.append(", ".join(_item(item) for item in node.items))
    parts.append("from")
    parts.append(
        ", ".join(
            f"{clause.var} in {_unparse(clause.domain, 4)}"
            for clause in node.from_clauses
        )
    )
    if node.where is not None:
        parts.append("where")
        parts.append(_unparse(node.where, 0))
    if node.group_by:
        parts.append("group by")
        parts.append(", ".join(_unparse(g, 0) for g in node.group_by))
    if node.having is not None:
        parts.append("having")
        parts.append(_unparse(node.having, 0))
    if node.order_by:
        parts.append("order by")
        parts.append(", ".join(_order_item(item) for item in node.order_by))
    return " ".join(parts)


def _item(item: SelectItem) -> str:
    text = _unparse(item.expr, 0)
    if item.alias:
        return f"{text} as {item.alias}"
    return text


def _order_item(item: OrderItem) -> str:
    direction = "" if item.ascending else " desc"
    return f"{_unparse(item.expr, 0)}{direction}"


def _wrap(text: str, precedence: int, parent_precedence: int) -> str:
    if precedence < parent_precedence:
        return f"({text})"
    return text


def _wrap_select(text: str, parent_precedence: int) -> str:
    # A select used as an operand (anywhere but the top level) must be
    # parenthesized.
    if parent_precedence >= 0:
        return f"( {text} )"
    return text
