"""The ODMG OQL front-end: lexer, parser, AST, and calculus translation."""

from repro.oql.lexer import OQLSyntaxError, Token, tokenize
from repro.oql.params import parameterize_literals
from repro.oql.parser import parse
from repro.oql.pretty import unparse
from repro.oql.translator import TranslationError, parse_and_translate, translate

__all__ = [
    "OQLSyntaxError",
    "Token",
    "TranslationError",
    "parameterize_literals",
    "parse",
    "unparse",
    "parse_and_translate",
    "tokenize",
    "translate",
]
