"""The ODMG OQL front-end: lexer, parser, AST, and calculus translation."""

from repro.oql.lexer import OQLSyntaxError, Token, tokenize
from repro.oql.parser import parse
from repro.oql.pretty import unparse
from repro.oql.translator import TranslationError, parse_and_translate, translate

__all__ = [
    "OQLSyntaxError",
    "Token",
    "TranslationError",
    "parse",
    "unparse",
    "parse_and_translate",
    "tokenize",
    "translate",
]
