"""Translation of OQL into the monoid comprehension calculus.

"Most OQL expressions have a direct translation into the monoid calculus
[13]" — this module implements that translation for the subset the paper's
examples use:

* ``select distinct`` → a set comprehension; plain ``select`` → a bag
  comprehension;
* ``exists v in e: p`` → ``some{ p | v <- e }``; ``for all v in e: p`` →
  ``all{ p | v <- e }``; ``x in e`` → ``some{ x = el | el <- e }``;
* the aggregates ``count/sum/avg/max/min`` → comprehensions over the
  corresponding primitive monoid;
* ``group by`` (the Section 5 example) → the *implicitly nested* calculus
  form the paper shows: one inner aggregate comprehension per aggregated
  item, correlated on equality of the grouping expressions.

Free identifiers resolve to range variables when bound, otherwise to class
extents (checked against the schema when one is supplied).
"""

from __future__ import annotations

from repro.calculus import terms as t
from repro.data.schema import Schema
from repro.errors import PlanningError, UnknownExtentError
from repro.oql import ast
from repro.oql.parser import parse

#: Aggregate function name → calculus monoid name.
_AGGREGATE_MONOIDS = {
    "count": "sum",
    "sum": "sum",
    "avg": "avg",
    "max": "max",
    "min": "min",
}


class TranslationError(PlanningError):
    """The OQL query uses a construct outside the supported subset."""


def translate(
    node: ast.Node,
    schema: Schema | None = None,
    views: dict[str, ast.Node] | None = None,
) -> t.Term:
    """Translate an OQL AST into a calculus term.

    *views* maps names (from ``define name as query``) to their query ASTs;
    a view reference is inlined at translation time, so normalization and
    unnesting see through it.
    """
    return _Translator(schema, views).translate(node, frozenset())


def parse_and_translate(
    source: str,
    schema: Schema | None = None,
    views: dict[str, ast.Node] | None = None,
) -> t.Term:
    """Parse OQL text and translate it into the calculus in one step."""
    return translate(parse(source), schema, views)


class _Translator:
    def __init__(
        self,
        schema: Schema | None,
        views: dict[str, ast.Node] | None = None,
    ):
        self._schema = schema
        self._views = views or {}
        self._counter = 0

    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"_{hint}{self._counter}"

    # -- dispatch ----------------------------------------------------------

    def translate(self, node: ast.Node, scope: frozenset[str]) -> t.Term:
        if isinstance(node, ast.Literal):
            return self._literal(node)
        if isinstance(node, ast.Parameter):
            return t.Param(node.name)
        if isinstance(node, ast.Name):
            return self._name(node, scope)
        if isinstance(node, ast.Path):
            return t.Proj(self.translate(node.base, scope), node.attr)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node, scope)
        if isinstance(node, ast.BinaryOp):
            return t.BinOp(
                node.op,
                self.translate(node.left, scope),
                self.translate(node.right, scope),
            )
        if isinstance(node, ast.InCollection):
            return self._membership(node, scope)
        if isinstance(node, ast.Struct):
            fields = tuple(
                (name, self.translate(expr, scope)) for name, expr in node.fields
            )
            return t.RecordCons(fields)
        if isinstance(node, ast.Aggregate):
            return self._aggregate(node, scope)
        if isinstance(node, ast.Flatten):
            return self._flatten(node, scope)
        if isinstance(node, ast.Exists):
            return self._quantifier("some", node.var, node.domain, node.predicate, scope)
        if isinstance(node, ast.ForAll):
            return self._quantifier("all", node.var, node.domain, node.predicate, scope)
        if isinstance(node, ast.Select):
            return self._select(node, scope)
        if isinstance(node, ast.SetOp):
            return self._set_op(node, scope)
        raise TranslationError(f"unsupported OQL construct {type(node).__name__}")

    # -- leaves ---------------------------------------------------------------

    def _literal(self, node: ast.Literal) -> t.Term:
        if node.value is None:
            return t.Null()
        return t.Const(node.value)

    def _name(self, node: ast.Name, scope: frozenset[str]) -> t.Term:
        if node.name in scope:
            return t.Var(node.name)
        if node.name in self._views:
            # Views are closed queries; inline the definition.
            return self.translate(self._views[node.name], frozenset())
        # A schema with no registered extents cannot adjudicate names —
        # treat unbound names as extents (permissive mode).
        if (
            self._schema is not None
            and self._schema.extent_names()
            and not self._schema.has_extent(node.name)
        ):
            raise UnknownExtentError(
                f"unknown name {node.name!r}: not a range variable in scope "
                f"({sorted(scope)}) and not an extent "
                f"({list(self._schema.extent_names())})"
            )
        return t.Extent(node.name)

    def _unary(self, node: ast.UnaryOp, scope: frozenset[str]) -> t.Term:
        operand = self.translate(node.operand, scope)
        if node.op == "not":
            return t.Not(operand)
        if node.op == "-":
            return t.BinOp("-", t.Const(0), operand)
        raise TranslationError(f"unknown unary operator {node.op!r}")

    # -- predicates -------------------------------------------------------------

    def _membership(self, node: ast.InCollection, scope: frozenset[str]) -> t.Term:
        element = self.translate(node.element, scope)
        collection = self.translate(node.collection, scope)
        var = self._fresh("el")
        return t.Comprehension(
            "some",
            t.BinOp("==", element, t.Var(var)),
            (t.Generator(var, collection),),
        )

    def _flatten(self, node: ast.Flatten, scope: frozenset[str]) -> t.Term:
        """flatten(e) = { x | s <- e, x <- s } (a set flatten; duplicate
        semantics across bag-of-bag inputs follow the set monoid)."""
        argument = self.translate(node.argument, scope)
        outer_var = self._fresh("fs")
        inner_var = self._fresh("fx")
        return t.Comprehension(
            "set",
            t.Var(inner_var),
            (
                t.Generator(outer_var, argument),
                t.Generator(inner_var, t.Var(outer_var)),
            ),
        )

    def _quantifier(
        self,
        monoid_name: str,
        var: str,
        domain: ast.Node,
        predicate: ast.Node,
        scope: frozenset[str],
    ) -> t.Term:
        domain_term = self.translate(domain, scope)
        body = self.translate(predicate, scope | {var})
        return t.Comprehension(monoid_name, body, (t.Generator(var, domain_term),))

    def _set_op(self, node: ast.SetOp, scope: frozenset[str]) -> t.Term:
        """union / except / intersect with set (distinct) semantics.

        union      → {x | x <- L} U {x | x <- R}
        except     → {x | x <- L, not some{x = y | y <- R}}
        intersect  → {x | x <- L, some{x = y | y <- R}}
        """
        left = self.translate(node.left, scope)
        right = self.translate(node.right, scope)
        x = self._fresh("sx")
        if node.op == "union":
            return t.Merge(
                "set",
                t.Comprehension("set", t.Var(x), (t.Generator(x, left),)),
                t.Comprehension("set", t.Var(x), (t.Generator(x, right),)),
            )
        y = self._fresh("sy")
        membership = t.Comprehension(
            "some",
            t.BinOp("==", t.Var(x), t.Var(y)),
            (t.Generator(y, right),),
        )
        pred: t.Term = membership if node.op == "intersect" else t.Not(membership)
        return t.Comprehension(
            "set", t.Var(x), (t.Generator(x, left), t.Filter(pred))
        )

    # -- aggregates --------------------------------------------------------------

    def _aggregate(self, node: ast.Aggregate, scope: frozenset[str]) -> t.Term:
        monoid_name = _AGGREGATE_MONOIDS[node.function]
        argument = self.translate(node.argument, scope)
        return self._aggregate_term(node.function, monoid_name, argument)

    def _aggregate_term(
        self, function: str, monoid_name: str, argument: t.Term
    ) -> t.Term:
        if isinstance(argument, t.Comprehension) and argument.monoid.is_collection:
            # Fuse: sum(select e.x from ...) = sum{ e.x | ... }.
            head = t.Const(1) if function == "count" else argument.head
            return t.Comprehension(monoid_name, head, argument.qualifiers)
        var = self._fresh("ag")
        head = t.Const(1) if function == "count" else t.Var(var)
        return t.Comprehension(monoid_name, head, (t.Generator(var, argument),))

    # -- select blocks -------------------------------------------------------------

    def _select(self, node: ast.Select, scope: frozenset[str]) -> t.Term:
        if node.order_by:
            raise TranslationError(
                "ORDER BY has no calculus translation (the paper defers list "
                "monoids); it is applied by the execution engine and is only "
                "supported at the top level of a query"
            )
        inner_scope = scope
        qualifiers: list[t.Qualifier] = []
        for clause in node.from_clauses:
            domain = self.translate(clause.domain, inner_scope)
            qualifiers.append(t.Generator(clause.var, domain))
            inner_scope |= {clause.var}
        if node.group_by:
            return self._grouped_select(node, qualifiers, inner_scope)
        if node.having is not None:
            raise TranslationError("HAVING requires GROUP BY")
        if node.where is not None:
            qualifiers.append(t.Filter(self.translate(node.where, inner_scope)))
        head = self._projection(node.items, inner_scope)
        monoid_name = "set" if node.distinct else "bag"
        return t.Comprehension(monoid_name, head, tuple(qualifiers))

    def _projection(
        self, items: tuple[ast.SelectItem, ...], scope: frozenset[str]
    ) -> t.Term:
        if len(items) == 1 and items[0].alias is None:
            return self.translate(items[0].expr, scope)
        fields = []
        for index, item in enumerate(items):
            fields.append((self._item_name(item, index), self.translate(item.expr, scope)))
        return t.RecordCons(tuple(fields))

    def _item_name(self, item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.Path):
            return item.expr.attr
        if isinstance(item.expr, ast.Name):
            return item.expr.name
        if isinstance(item.expr, ast.Aggregate):
            return item.expr.function
        return f"col{index + 1}"

    # -- group by (Section 5) -----------------------------------------------------

    def _grouped_select(
        self,
        node: ast.Select,
        qualifiers: list[t.Qualifier],
        scope: frozenset[str],
    ) -> t.Term:
        """Translate GROUP BY into the paper's implicitly nested form.

        Each aggregated item becomes an inner comprehension that re-ranges
        over *renamed copies* of all the generators, re-applies the WHERE
        predicate, and correlates on equality of every grouping expression —
        exactly the calculus term of the Section 5 example.
        """
        generators = [q for q in qualifiers if isinstance(q, t.Generator)]
        where_term = (
            self.translate(node.where, scope) if node.where is not None else None
        )
        group_exprs = [self.translate(expr, scope) for expr in node.group_by]

        renaming: dict[str, t.Term] = {}
        inner_quals: list[t.Qualifier] = []
        for gen in generators:
            copy_var = self._fresh(gen.var.lstrip("_") or "g")
            domain = t.substitute(gen.domain, renaming)
            renaming[gen.var] = t.Var(copy_var)
            inner_quals.append(t.Generator(copy_var, domain))
        if where_term is not None:
            inner_quals.append(t.Filter(t.substitute(where_term, renaming)))
        for expr in group_exprs:
            inner_quals.append(
                t.Filter(t.BinOp("==", expr, t.substitute(expr, renaming)))
            )

        def aggregate_to_inner(term: t.Term) -> t.Term:
            """Rewrite aggregate placeholders into correlated comprehensions."""
            if not isinstance(term, _AggregateMarker):
                return term
            head = (
                t.Const(1)
                if term.function == "count"
                else t.substitute(term.argument, renaming)
            )
            return t.Comprehension(
                _AGGREGATE_MONOIDS[term.function], head, tuple(inner_quals)
            )

        fields = []
        for index, item in enumerate(node.items):
            marked = self._mark_aggregates(item.expr, scope)
            fields.append(
                (self._item_name(item, index), t.transform(marked, aggregate_to_inner))
            )
        head: t.Term
        if len(fields) == 1 and node.items[0].alias is None:
            head = fields[0][1]
        else:
            head = t.RecordCons(tuple(fields))

        outer_quals = list(qualifiers)
        preds: list[t.Term] = []
        if where_term is not None:
            preds.append(where_term)
        if node.having is not None:
            having = self._mark_aggregates(node.having, scope)
            preds.append(t.transform(having, aggregate_to_inner))
        if preds:
            outer_quals.append(t.Filter(t.conj(*preds)))
        # One result per group: grouped queries deduplicate (SQL semantics),
        # so the accumulator is the set monoid regardless of DISTINCT.
        return t.Comprehension("set", head, tuple(outer_quals))

    def _mark_aggregates(self, node: ast.Node, scope: frozenset[str]) -> t.Term:
        """Translate *node*, replacing aggregate calls by markers.

        The markers are resolved into correlated inner comprehensions by the
        caller once the renamed generator copies are known.
        """
        if isinstance(node, ast.Aggregate):
            if isinstance(node.argument, ast.Select):
                # A nested aggregate-of-subquery inside a grouped projection
                # is a plain aggregate, not a grouped one.
                return self._aggregate(node, scope)
            return _AggregateMarker(
                node.function, self.translate(node.argument, scope)
            )
        if isinstance(node, ast.BinaryOp):
            return t.BinOp(
                node.op,
                self._mark_aggregates(node.left, scope),
                self._mark_aggregates(node.right, scope),
            )
        if isinstance(node, ast.UnaryOp) and node.op == "not":
            return t.Not(self._mark_aggregates(node.operand, scope))
        return self.translate(node, scope)


# ---------------------------------------------------------------------------
# ORDER BY support (an execution-engine extension; see Optimizer)
# ---------------------------------------------------------------------------


def peel_order_by(node: ast.Node) -> tuple[ast.Node, tuple[ast.OrderItem, ...]]:
    """Strip a top-level ORDER BY clause, returning (query, order items)."""
    if isinstance(node, ast.Select) and node.order_by:
        import dataclasses

        return dataclasses.replace(node, order_by=()), node.order_by
    return node, ()


def translate_order_keys(
    items: tuple[ast.OrderItem, ...],
    select: ast.Select,
    schema: Schema | None = None,
) -> tuple[tuple[t.Term, bool], ...]:
    """Translate ORDER BY keys into terms over the result element.

    The keys may reference the select's projection aliases, or ``value``
    for the whole element of a single-expression projection.
    """
    translator = _Translator(schema)
    aliases = frozenset(
        translator._item_name(item, index)
        for index, item in enumerate(select.items)
    ) | {"value"}
    return tuple(
        (translator.translate(item.expr, aliases), item.ascending)
        for item in items
    )


class _AggregateMarker(t.Term):
    """Internal placeholder for an aggregate inside a grouped projection."""

    __slots__ = ("function", "argument")

    def __init__(self, function: str, argument: t.Term):
        self.function = function
        self.argument = argument

    def children(self) -> tuple[t.Term, ...]:
        # A leaf for traversal purposes: generic transforms must not rebuild
        # this internal node, only the marker-resolution pass replaces it.
        return ()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _AggregateMarker)
            and self.function == other.function
            and self.argument == other.argument
        )

    def __hash__(self) -> int:
        return hash(("_AggregateMarker", self.function, self.argument))
