"""Recursive-descent parser for the OQL subset.

Grammar (keywords case-insensitive)::

    query        ::= select | or_expr
    select       ::= SELECT [DISTINCT] item {, item}
                     FROM from_clause {, from_clause}
                     [WHERE or_expr]
                     [GROUP BY or_expr {, or_expr}]
                     [HAVING or_expr]
    item         ::= or_expr [AS ident]
    from_clause  ::= ident IN or_expr | or_expr [AS] ident
    or_expr      ::= and_expr {OR and_expr}
    and_expr     ::= not_expr {AND not_expr}
    not_expr     ::= NOT not_expr | quantifier | comparison
    quantifier   ::= EXISTS ident IN additive ':' or_expr
                   | EXISTS '(' query ')'
                   | FOR ALL ident IN additive ':' or_expr
    comparison   ::= additive [(= | != | < | <= | > | >= | IN) additive]
    additive     ::= multiplicative {(+ | -) multiplicative}
    multiplicative ::= unary {(* | /) unary}
    unary        ::= '-' unary | postfix
    postfix      ::= primary {'.' ident}
    primary      ::= literal | ident | ':' ident | aggregate '(' query ')'
                   | STRUCT '(' ident ':' or_expr {, ident ':' or_expr} ')'
                   | '(' query ')'
    aggregate    ::= COUNT | SUM | AVG | MAX | MIN

A ``:name`` in expression position is a prepared-statement parameter.  The
colons of ``struct(A: e)`` and ``exists v in e: p`` are consumed before an
expression is parsed, so a colon *starting* an expression is unambiguous.
"""

from __future__ import annotations

from repro.oql.ast import (
    Aggregate,
    BinaryOp,
    Define,
    Exists,
    Flatten,
    ForAll,
    FromClause,
    InCollection,
    Literal,
    Name,
    Node,
    OrderItem,
    Parameter,
    Path,
    Select,
    SelectItem,
    SetOp,
    Struct,
    UnaryOp,
)
from repro.oql.lexer import OQLSyntaxError, Token, tokenize

_AGGREGATES = frozenset({"count", "sum", "avg", "max", "min"})
_COMPARISONS = frozenset({"=", "!=", "<", "<=", ">", ">="})


def parse(source: str) -> Node:
    """Parse an OQL query string into an AST."""
    parser = _Parser(source)
    node = parser.parse_query()
    parser.expect_eof()
    return node


def parse_statement(source: str) -> Node:
    """Parse a query or a ``define name as query`` view definition."""
    parser = _Parser(source)
    if parser._accept_keyword("define"):
        name = parser._expect_ident()
        parser._expect_keyword("as")
        query = parser.parse_query()
        parser.expect_eof()
        return Define(name, query)
    node = parser.parse_query()
    parser.expect_eof()
    return node


class _Parser:
    def __init__(self, source: str):
        self._source = source
        self._tokens = tokenize(source)
        self._index = 0

    # -- token plumbing --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.value in words

    def _at_symbol(self, *symbols: str) -> bool:
        token = self._peek()
        return token.kind == "symbol" and token.value in symbols

    def _accept_keyword(self, word: str) -> bool:
        if self._at_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._at_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            self._fail(f"expected keyword {word!r}")

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            self._fail(f"expected {symbol!r}")

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident":
            self._fail("expected an identifier")
        self._advance()
        return token.value

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "eof":
            self._fail(f"unexpected trailing input {token.value!r}")

    def _fail(self, message: str) -> None:
        token = self._peek()
        found = token.value or "end of input"
        raise OQLSyntaxError(
            f"{message}, found {found!r}", self._source, token.position
        )

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Node:
        node = self._parse_query_operand()
        while self._at_keyword("union", "except", "intersect"):
            op = self._advance().value
            node = SetOp(op, node, self._parse_query_operand())
        return node

    def _parse_query_operand(self) -> Node:
        if self._at_keyword("select"):
            return self._parse_select()
        return self._parse_or()

    def _parse_select(self) -> Select:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = [self._parse_item()]
        while self._accept_symbol(","):
            items.append(self._parse_item())
        self._expect_keyword("from")
        froms = [self._parse_from_clause()]
        while self._accept_symbol(","):
            froms.append(self._parse_from_clause())
        where = None
        if self._accept_keyword("where"):
            where = self._parse_or()
        group_by: list[Node] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_or())
            while self._accept_symbol(","):
                group_by.append(self._parse_or())
        having = None
        if self._accept_keyword("having"):
            having = self._parse_or()
        order_by: list[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_symbol(","):
                order_by.append(self._parse_order_item())
        return Select(
            distinct=distinct,
            items=tuple(items),
            from_clauses=tuple(froms),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
        )

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_or()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, ascending)

    def _parse_item(self) -> SelectItem:
        expr = self._parse_or()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _parse_from_clause(self) -> FromClause:
        # "v in domain" form.
        ahead = self._peek(1)
        if (
            self._peek().kind == "ident"
            and ahead.kind == "keyword"
            and ahead.value == "in"
        ):
            var = self._expect_ident()
            self._expect_keyword("in")
            domain = self._parse_or()
            return FromClause(var, domain)
        # "domain [as] v" form.
        domain = self._parse_or()
        self._accept_keyword("as")
        var = self._expect_ident()
        return FromClause(var, domain)

    def _parse_or(self) -> Node:
        node = self._parse_and()
        while self._accept_keyword("or"):
            node = BinaryOp("or", node, self._parse_and())
        return node

    def _parse_and(self) -> Node:
        node = self._parse_not()
        while self._accept_keyword("and"):
            node = BinaryOp("and", node, self._parse_not())
        return node

    def _parse_not(self) -> Node:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        if self._at_keyword("exists"):
            return self._parse_exists()
        if self._at_keyword("for"):
            return self._parse_forall()
        return self._parse_comparison()

    def _parse_exists(self) -> Node:
        self._expect_keyword("exists")
        if self._at_symbol("("):
            # exists(query): true iff the collection is non-empty.
            self._expect_symbol("(")
            query = self.parse_query()
            self._expect_symbol(")")
            return Exists("__element", query, Literal(True))
        var = self._expect_ident()
        self._expect_keyword("in")
        domain = self._parse_additive()
        self._expect_symbol(":")
        predicate = self._parse_or()
        return Exists(var, domain, predicate)

    def _parse_forall(self) -> Node:
        self._expect_keyword("for")
        self._expect_keyword("all")
        var = self._expect_ident()
        self._expect_keyword("in")
        domain = self._parse_additive()
        self._expect_symbol(":")
        predicate = self._parse_or()
        return ForAll(var, domain, predicate)

    def _parse_comparison(self) -> Node:
        node = self._parse_additive()
        token = self._peek()
        if token.kind == "symbol" and token.value in _COMPARISONS:
            self._advance()
            op = "==" if token.value == "=" else token.value
            return BinaryOp(op, node, self._parse_additive())
        if self._accept_keyword("in"):
            return InCollection(node, self._parse_additive())
        return node

    def _parse_additive(self) -> Node:
        node = self._parse_multiplicative()
        while self._at_symbol("+", "-"):
            op = self._advance().value
            node = BinaryOp(op, node, self._parse_multiplicative())
        return node

    def _parse_multiplicative(self) -> Node:
        node = self._parse_unary()
        while self._at_symbol("*", "/", "%"):
            op = self._advance().value
            node = BinaryOp(op, node, self._parse_unary())
        return node

    def _parse_unary(self) -> Node:
        if self._accept_symbol("-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Node:
        node = self._parse_primary()
        while self._accept_symbol("."):
            node = Path(node, self._expect_ident())
        return node

    def _parse_primary(self) -> Node:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return Literal(int(token.value))
        if token.kind == "float":
            self._advance()
            return Literal(float(token.value))
        if token.kind == "string":
            self._advance()
            return Literal(token.value)
        if self._accept_keyword("true"):
            return Literal(True)
        if self._accept_keyword("false"):
            return Literal(False)
        if self._accept_keyword("nil"):
            return Literal(None)
        if token.kind == "keyword" and token.value in _AGGREGATES:
            self._advance()
            self._expect_symbol("(")
            argument = self.parse_query()
            self._expect_symbol(")")
            return Aggregate(token.value, argument)
        if self._accept_keyword("flatten"):
            self._expect_symbol("(")
            argument = self.parse_query()
            self._expect_symbol(")")
            return Flatten(argument)
        if self._accept_keyword("struct"):
            return self._parse_struct()
        if self._at_symbol(":"):
            return self._parse_parameter()
        if token.kind == "ident":
            self._advance()
            return Name(token.value)
        if self._accept_symbol("("):
            node = self.parse_query()
            self._expect_symbol(")")
            return node
        self._fail("expected an expression")
        raise AssertionError("unreachable")

    def _parse_parameter(self) -> Parameter:
        self._expect_symbol(":")
        token = self._peek()
        if token.kind == "keyword":
            self._fail(
                f"parameter name {token.value!r} is a reserved keyword"
            )
        name = self._expect_ident()
        return Parameter(name)

    def _parse_struct(self) -> Struct:
        self._expect_symbol("(")
        fields: list[tuple[str, Node]] = []
        while True:
            name = self._expect_ident()
            self._expect_symbol(":")
            fields.append((name, self._parse_or()))
            if not self._accept_symbol(","):
                break
        self._expect_symbol(")")
        return Struct(tuple(fields))
