"""Abstract syntax for the OQL subset (paper Section 1.1 examples).

These nodes mirror the surface language; the translation to the monoid
calculus lives in :mod:`repro.oql.translator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class Node:
    """Base class for all OQL AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Node):
    """A constant: int, float, string, bool, or None (OQL ``nil``)."""

    value: Any


@dataclass(frozen=True)
class Name(Node):
    """An identifier: a range variable or an extent name."""

    name: str


@dataclass(frozen=True)
class Parameter(Node):
    """A prepared-statement placeholder ``:name``.

    Parameters stand for constants supplied at execution time; a query
    containing parameters compiles to one reusable plan (see
    ``CompiledQuery.bind``).
    """

    name: str


@dataclass(frozen=True)
class Path(Node):
    """Attribute navigation ``base.attr``."""

    base: Node
    attr: str


@dataclass(frozen=True)
class UnaryOp(Node):
    """``not e`` or ``- e``."""

    op: str
    operand: Node


@dataclass(frozen=True)
class BinaryOp(Node):
    """A binary operation: arithmetic, comparison, and/or."""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class InCollection(Node):
    """Membership test ``e in collection``."""

    element: Node
    collection: Node


@dataclass(frozen=True)
class Struct(Node):
    """``struct( A: e1, B: e2, ... )``."""

    fields: tuple[tuple[str, Node], ...]


@dataclass(frozen=True)
class Aggregate(Node):
    """``count/sum/avg/max/min ( argument )``."""

    function: str  # count | sum | avg | max | min
    argument: Node


@dataclass(frozen=True)
class SetOp(Node):
    """A set operation between two queries: union, except, or intersect.

    ODMG set operations; this subset gives them *set* (distinct) semantics.
    """

    op: str  # "union" | "except" | "intersect"
    left: Node
    right: Node


@dataclass(frozen=True)
class Define(Node):
    """``define name as query`` — a named view (ODMG OQL)."""

    name: str
    query: "Node"


@dataclass(frozen=True)
class Flatten(Node):
    """``flatten( e )`` — merge a collection of collections (ODMG OQL)."""

    argument: Node


@dataclass(frozen=True)
class Exists(Node):
    """``exists v in domain: predicate``."""

    var: str
    domain: Node
    predicate: Node


@dataclass(frozen=True)
class ForAll(Node):
    """``for all v in domain: predicate``."""

    var: str
    domain: Node
    predicate: Node


@dataclass(frozen=True)
class FromClause(Node):
    """One generator of a from-list: ``var in domain`` / ``domain [as] var``."""

    var: str
    domain: Node


@dataclass(frozen=True)
class SelectItem(Node):
    """One projection item, optionally aliased (``expr as alias``)."""

    expr: Node
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key: an expression over the *result element* (its
    projection aliases, or ``value`` for single-expression selects) and a
    direction."""

    expr: Node
    ascending: bool = True


@dataclass(frozen=True)
class Select(Node):
    """A select-from-where[-group-by[-having]][-order-by] query block."""

    distinct: bool
    items: tuple[SelectItem, ...]
    from_clauses: tuple[FromClause, ...]
    where: Node | None = None
    group_by: tuple[Node, ...] = ()
    having: Node | None = None
    order_by: tuple[OrderItem, ...] = ()
