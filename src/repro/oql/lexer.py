"""Lexer for the ODMG OQL subset used by the paper's examples.

Keywords are case-insensitive (the paper writes them lowercase); identifiers
are case-sensitive.  String literals use double quotes, as in the paper's
``c.name = "Arlington"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError

KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "from",
        "where",
        "in",
        "as",
        "group",
        "by",
        "having",
        "order",
        "asc",
        "desc",
        "exists",
        "for",
        "all",
        "and",
        "or",
        "not",
        "true",
        "false",
        "nil",
        "struct",
        "count",
        "sum",
        "avg",
        "max",
        "min",
        "flatten",
        "define",
        "union",
        "except",
        "intersect",
    }
)

#: Multi- and single-character symbols, longest first.
SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", ".", ":", "+", "-", "*", "/", "%")


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'keyword', 'ident', 'int', 'float',
    'string', 'symbol', or 'eof'."""

    kind: str
    value: str
    position: int  # character offset, for error messages

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


class OQLSyntaxError(PlanningError, SyntaxError):
    """A lexical or syntactic error in an OQL query.

    Both a :class:`~repro.errors.PlanningError` (the structured taxonomy)
    and a ``SyntaxError`` (the historical base, for existing callers).
    """

    def __init__(self, message: str, source: str, position: int):
        line = source.count("\n", 0, position) + 1
        column = position - (source.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.source = source


def tokenize(source: str) -> list[Token]:
    """Tokenize an OQL query, ending with an 'eof' token."""
    tokens: list[Token] = []
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char.isspace():
            index += 1
            continue
        if source.startswith("--", index):  # line comment
            # A comment on the last line may end at EOF with no newline;
            # find() returning -1 must consume to end-of-source, not wrap.
            newline = source.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char == '"':
            index = _lex_string(source, index, tokens)
            continue
        if char.isdigit():
            index = _lex_number(source, index, tokens)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            word = source[start:index]
            if word.lower() in KEYWORDS:
                tokens.append(Token("keyword", word.lower(), start))
            else:
                tokens.append(Token("ident", word, start))
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                value = "!=" if symbol == "<>" else symbol
                tokens.append(Token("symbol", value, index))
                index += len(symbol)
                break
        else:
            raise OQLSyntaxError(f"unexpected character {char!r}", source, index)
    tokens.append(Token("eof", "", length))
    return tokens


#: Backslash escapes recognized inside string literals.
_STRING_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "n": "\n",
    "t": "\t",
    "r": "\r",
}


def _lex_string(source: str, index: int, tokens: list[Token]) -> int:
    """Lex a double-quoted string literal starting at *index*.

    Supports the usual backslash escapes (``\\"``, ``\\\\``, ``\\n``,
    ``\\t``, ``\\r``); an escaped quote does not terminate the literal.
    """
    start = index
    length = len(source)
    parts: list[str] = []
    index += 1
    while index < length:
        char = source[index]
        if char == '"':
            tokens.append(Token("string", "".join(parts), start))
            return index + 1
        if char == "\\":
            if index + 1 >= length:
                raise OQLSyntaxError(
                    "unterminated string literal", source, start
                )
            escape = source[index + 1]
            try:
                parts.append(_STRING_ESCAPES[escape])
            except KeyError:
                raise OQLSyntaxError(
                    f"unknown string escape \\{escape}", source, index
                ) from None
            index += 2
            continue
        parts.append(char)
        index += 1
    raise OQLSyntaxError("unterminated string literal", source, start)


def _lex_number(source: str, index: int, tokens: list[Token]) -> int:
    start = index
    length = len(source)
    while index < length and source[index].isdigit():
        index += 1
    is_float = False
    if (
        index + 1 < length
        and source[index] == "."
        and source[index + 1].isdigit()
    ):
        is_float = True
        index += 1
        while index < length and source[index].isdigit():
            index += 1
    kind = "float" if is_float else "int"
    tokens.append(Token(kind, source[start:index], start))
    return index
