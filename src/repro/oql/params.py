"""Utilities for prepared-statement parameters (OQL ``:name``).

The central helper, :func:`parameterize_literals`, lifts every literal
constant of a query into a ``:pN`` placeholder, returning the parameterized
source plus the extracted bindings.  This is how a serving layer turns a
stream of ad-hoc query strings that differ only in their constants into a
single cacheable plan shape — and how the test suite and
``benchmarks/bench_prepared.py`` check that bound-parameter execution gives
exactly the same results as constant-inlined execution over the whole query
corpus.
"""

from __future__ import annotations

from typing import Any

from repro.oql.lexer import Token, tokenize

#: Token kinds that denote literal constants in OQL source.
_LITERAL_KINDS = frozenset({"int", "float", "string"})


def parameterize_literals(
    source: str, prefix: str = "p"
) -> tuple[str, dict[str, Any]]:
    """Replace every literal constant of *source* with a placeholder.

    Returns ``(parameterized_source, params)`` where *params* maps the
    generated names (``p0``, ``p1``, ... in source order) to the literal
    values they replaced.  Booleans and ``nil`` are keywords, not literal
    tokens, and are left in place.

    >>> parameterize_literals('select e from e in E where e.dno = 4')
    ('select e from e in E where e.dno = :p0', {'p0': 4})
    """
    params: dict[str, Any] = {}
    pieces: list[str] = []
    cursor = 0
    for token in tokenize(source):
        if token.kind not in _LITERAL_KINDS:
            continue
        name = f"{prefix}{len(params)}"
        params[name] = _literal_value(token)
        end = token.position + _source_width(token)
        pieces.append(source[cursor : token.position])
        pieces.append(f":{name}")
        cursor = end
    pieces.append(source[cursor:])
    return "".join(pieces), params


def _literal_value(token: Token) -> Any:
    if token.kind == "int":
        return int(token.value)
    if token.kind == "float":
        return float(token.value)
    return token.value


def _source_width(token: Token) -> int:
    # String tokens store the unquoted text; the source span includes the
    # surrounding double quotes.
    if token.kind == "string":
        return len(token.value) + 2
    return len(token.value)
