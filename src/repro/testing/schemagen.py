"""Seeded random schema and instance generation for the fuzzer.

Follows the :mod:`repro.data.datagen` conventions — every generator takes a
seed (or an ``random.Random``) and is fully deterministic — but instead of
the paper's fixed example schemas it invents a fresh one each time: a few
record classes with scalar attributes, nested collection attributes (sets or
bags of inner records), class extents, NULLs sprinkled into nullable
attributes, intentionally empty collections, and hash indexes on a few
scalar attributes.

Numeric design notes (they matter for the differential oracle):

* integer attributes draw from a *small* range so equality predicates and
  joins actually match;
* float attributes are multiples of 0.25 — dyadic rationals whose sums are
  exact in binary floating point, so aggregate results are identical no
  matter which order an execution path adds them in;
* all numbers are non-negative, matching the paper's (max, 0) monoid.

The generator deliberately emits *value-equal duplicate objects* (with
probability :attr:`SchemaGenConfig.duplicate_probability`, both as extra
extent members and as repeated nested-collection elements).  The paper's
data model is object-oriented — two objects with identical state are still
distinct — and the engine now honours that via engine-assigned OIDs
(:meth:`repro.data.database.Database.adopt`), so the fuzzer probes exactly
the spot where value semantics and object semantics diverge.  Earlier
versions instead stamped a synthetic unique ``oid`` *attribute* onto every
object to keep value-based records distinguishable; that workaround is
retained behind :attr:`SchemaGenConfig.synthetic_oids` purely so old seeds
and repro artifacts can be replayed byte-for-byte.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.data.database import Database
from repro.data.schema import (
    FLOAT,
    INT,
    STRING,
    CollectionType,
    FloatType,
    IntType,
    RecordType,
    Schema,
)
from repro.data.values import NULL, BagValue, Record, SetValue

#: The string pool shared with the query generator, so string equality
#: predicates have a real chance of matching data.
STRING_POOL = (
    "red", "green", "blue", "amber", "teal", "coral", "ivory", "slate",
)

#: Inclusive upper bound for generated integer attribute values (and the
#: literal pool the query generator draws from).
INT_RANGE = 8


@dataclass
class SchemaGenConfig:
    """Size knobs for random schemas/instances (defaults keep the naive
    nested-loop oracle path fast: extents stay small)."""

    min_classes: int = 2
    max_classes: int = 3
    min_scalar_attrs: int = 2
    max_scalar_attrs: int = 4
    max_nested_attrs: int = 1
    min_extent_size: int = 0  # empty extents are a feature, not a bug
    max_extent_size: int = 9
    max_nested_size: int = 3
    null_probability: float = 0.15
    nullable_probability: float = 0.4
    bag_extent_probability: float = 0.2
    index_probability: float = 0.6
    #: Chance that a freshly generated object is immediately duplicated
    #: (value-equal, identity-distinct) — in the extent for top-level
    #: objects, in the collection for nested elements.  Duplicates in set
    #: extents collapse by value; in bag extents they survive as distinct
    #: objects, which is the case the identity layer exists for.
    duplicate_probability: float = 0.2
    #: Back-compat: stamp every object with a unique ``oid`` *attribute*
    #: (the pre-identity-layer workaround).  Only useful for replaying old
    #: seeds; implies no value-equal duplicates can occur.
    synthetic_oids: bool = False


@dataclass
class GeneratedSchema:
    """A random schema plus the bookkeeping the query generator needs."""

    schema: Schema
    #: extent name -> class name (insertion order = generation order).
    extents: dict[str, str] = field(default_factory=dict)
    #: (class name, attr name) pairs that may hold NULL.
    nullable: set[tuple[str, str]] = field(default_factory=set)
    #: extent name -> collection kind ("set" | "bag").
    extent_kinds: dict[str, str] = field(default_factory=dict)


def random_schema(
    rng: random.Random, config: SchemaGenConfig | None = None
) -> GeneratedSchema:
    """Generate a random schema: classes, nested attributes, extents."""
    config = config or SchemaGenConfig()
    generated = GeneratedSchema(Schema())
    num_classes = rng.randint(config.min_classes, config.max_classes)
    for index in range(num_classes):
        class_name = f"C{index}"
        attrs: dict[str, object] = {"oid": INT} if config.synthetic_oids else {}
        num_scalars = rng.randint(config.min_scalar_attrs, config.max_scalar_attrs)
        for a in range(num_scalars):
            kind = rng.choice(("int", "int", "float", "string"))
            if kind == "int":
                attrs[f"k{a}"] = INT
            elif kind == "float":
                attrs[f"f{a}"] = FLOAT
            else:
                attrs[f"s{a}"] = STRING
        for n in range(rng.randint(0, config.max_nested_attrs)):
            inner_fields = (("m0", INT), ("m1", STRING))
            if config.synthetic_oids:
                inner_fields = (("oid", INT),) + inner_fields
            inner = RecordType(inner_fields)
            monoid = "bag" if rng.random() < config.bag_extent_probability else "set"
            attrs[f"kids{n}"] = CollectionType(monoid, inner)
        generated.schema.define_class(class_name, **attrs)  # type: ignore[arg-type]
        for attr, attr_type in attrs.items():
            if attr != "oid" and not isinstance(attr_type, CollectionType):
                if rng.random() < config.nullable_probability:
                    generated.nullable.add((class_name, attr))
        extent_name = f"X{index}"
        generated.schema.define_extent(extent_name, class_name)
        generated.extents[extent_name] = class_name
        generated.extent_kinds[extent_name] = (
            "bag" if rng.random() < config.bag_extent_probability else "set"
        )
    return generated


def random_value(rng: random.Random, attr_type: object) -> object:
    """A random value of a scalar type (never NULL)."""
    if isinstance(attr_type, IntType):
        return rng.randint(0, INT_RANGE)
    if isinstance(attr_type, FloatType):
        return rng.randint(0, 4 * INT_RANGE) * 0.25
    return rng.choice(STRING_POOL)


def _random_record(
    rng: random.Random,
    generated: GeneratedSchema,
    class_name: str,
    config: SchemaGenConfig,
    oids: Iterator[int],
) -> Record:
    record_type = generated.schema.class_type(class_name)
    fields: dict[str, object] = {}
    for attr, attr_type in record_type.fields:
        if attr == "oid":
            fields[attr] = next(oids)
        elif isinstance(attr_type, CollectionType):
            size = rng.randint(0, config.max_nested_size)
            inner: list[Record] = []
            for _ in range(size):
                member_fields: dict[str, object] = {}
                if config.synthetic_oids:
                    member_fields["oid"] = next(oids)
                member_fields["m0"] = rng.randint(0, INT_RANGE)
                member_fields["m1"] = rng.choice(STRING_POOL)
                inner.append(Record(member_fields))
                if (
                    not config.synthetic_oids
                    and rng.random() < config.duplicate_probability
                ):
                    # A value-equal twin; Database.adopt stamps each
                    # occurrence with its own OID, so in a bag the twins
                    # stay distinct objects.
                    inner.append(Record(member_fields))
            if attr_type.monoid_name == "bag":
                fields[attr] = BagValue(inner)
            else:
                fields[attr] = SetValue(inner)
        elif (
            (class_name, attr) in generated.nullable
            and rng.random() < config.null_probability
        ):
            fields[attr] = NULL
        else:
            fields[attr] = random_value(rng, attr_type)
    return Record(fields)


def random_database(
    seed: int | random.Random,
    config: SchemaGenConfig | None = None,
) -> tuple[Database, GeneratedSchema]:
    """A random schema *and* a populated instance with indexes.

    >>> db, generated = random_database(7)
    >>> db.extent_names() == tuple(sorted(generated.extents))
    True
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    config = config or SchemaGenConfig()
    generated = random_schema(rng, config)
    db = Database(generated.schema)
    oids = itertools.count()
    for extent_name, class_name in generated.extents.items():
        size = rng.randint(config.min_extent_size, config.max_extent_size)
        objects = []
        for _ in range(size):
            obj = _random_record(rng, generated, class_name, config, oids)
            objects.append(obj)
            if (
                not config.synthetic_oids
                and rng.random() < config.duplicate_probability
            ):
                # Store the same record value twice; adoption assigns each
                # occurrence its own OID (set extents still collapse the
                # pair by value, bag extents keep two distinct objects).
                objects.append(obj)
        db.add_extent(extent_name, objects, kind=generated.extent_kinds[extent_name])
    # Hash indexes on a few scalar attributes, so the index-scan path of the
    # planner participates in the differential comparison.
    for extent_name, class_name in generated.extents.items():
        if len(db.extent(extent_name)) == 0:
            continue
        record_type = generated.schema.class_type(class_name)
        for attr, attr_type in record_type.fields:
            if isinstance(attr_type, CollectionType):
                continue
            if rng.random() < config.index_probability:
                db.create_index(extent_name, attr)
    return db, generated
