"""JSON repro artifacts for fuzzer findings.

Every disagreement the fuzzer shrinks is saved as a self-contained JSON
file — OQL source, parameter bindings, schema, extent contents, and index
definitions — that :func:`load_repro` turns back into a runnable sample.
``tests/test_fuzz_regressions.py`` replays every artifact under
``tests/fuzz_repros/`` forever, so a fixed bug stays fixed.

The encoding is deliberately explicit (tagged dicts, not pickles): repro
files are meant to be read, edited, and committed.  Stored objects keep
their engine-assigned identity via a ``$oid`` sibling of ``$record``;
objects without one are re-stamped with fresh OIDs on load (the replayed
sample still distinguishes value-equal duplicates, just under new OIDs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.data.database import Database
from repro.data.schema import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    BoolType,
    CollectionType,
    FloatType,
    IntType,
    RecordType,
    Schema,
    StringType,
    Type,
)
from repro.data.values import (
    NULL,
    BagValue,
    CollectionValue,
    ListValue,
    Record,
    SetValue,
    is_null,
)
from repro.testing.shrink import _extent_kind

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

_SCALARS: dict[str, Type] = {
    "int": INT,
    "float": FLOAT,
    "string": STRING,
    "bool": BOOL,
}


def _encode_type(t: Type) -> Any:
    if isinstance(t, IntType):
        return "int"
    if isinstance(t, FloatType):
        return "float"
    if isinstance(t, StringType):
        return "string"
    if isinstance(t, BoolType):
        return "bool"
    if isinstance(t, RecordType):
        return {"record": [[attr, _encode_type(ft)] for attr, ft in t.fields]}
    if isinstance(t, CollectionType):
        return {"coll": t.monoid_name, "element": _encode_type(t.element)}
    raise ValueError(f"cannot encode type {t!r} in a repro file")


def _decode_type(data: Any) -> Type:
    if isinstance(data, str):
        return _SCALARS[data]
    if "record" in data:
        return RecordType(
            tuple((attr, _decode_type(ft)) for attr, ft in data["record"])
        )
    return CollectionType(data["coll"], _decode_type(data["element"]))


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if is_null(value):
        return {"$null": True}
    if isinstance(value, Record):
        encoded: dict[str, Any] = {
            "$record": {attr: _encode_value(v) for attr, v in value.items()}
        }
        if value.oid is not None:
            encoded["$oid"] = value.oid
        return encoded
    if isinstance(value, SetValue):
        return {"$set": [_encode_value(v) for v in value]}
    if isinstance(value, BagValue):
        return {"$bag": [_encode_value(v) for v in value]}
    if isinstance(value, ListValue):
        return {"$list": [_encode_value(v) for v in value]}
    if isinstance(value, (bool, int, float, str)):
        return value
    raise ValueError(f"cannot encode value {value!r} in a repro file")


def _decode_value(data: Any) -> Any:
    if isinstance(data, dict):
        if "$null" in data:
            return NULL
        if "$record" in data:
            record = Record(
                {attr: _decode_value(v) for attr, v in data["$record"].items()}
            )
            if "$oid" in data:
                record = record.with_oid(data["$oid"])
            return record
        if "$set" in data:
            return SetValue(_decode_value(v) for v in data["$set"])
        if "$bag" in data:
            return BagValue(_decode_value(v) for v in data["$bag"])
        if "$list" in data:
            return ListValue(_decode_value(v) for v in data["$list"])
        raise ValueError(f"unknown value tag in {sorted(data)}")
    return data


# ---------------------------------------------------------------------------
# Whole samples
# ---------------------------------------------------------------------------


def encode_sample(
    source: str,
    params: dict[str, Any],
    db: Database,
    description: str = "",
    seed: int | None = None,
    expect: str = "agreement",
) -> dict[str, Any]:
    """The JSON-ready dict for one (query, params, database) sample.

    *expect* is what the regression replay asserts: ``"agreement"`` for a
    fixed bug (all paths must agree forever after), ``"disagreement"`` for
    a pinned known divergence (a documented model limitation that the suite
    notices if it silently changes).
    """
    return {
        "version": FORMAT_VERSION,
        "description": description,
        "seed": seed,
        "expect": expect,
        "source": source,
        "params": {name: _encode_value(v) for name, v in params.items()},
        "schema": {
            "classes": {
                name: _encode_type(record_type)
                for name, record_type in db.schema.classes.items()
            },
            "extents": dict(db.schema.extents),
        },
        "extents": {
            name: {
                "kind": _extent_kind(db, name),
                "objects": [_encode_value(obj) for obj in db.extent(name).elements()],
            }
            for name in db.extent_names()
        },
        "indexes": [
            [name, attr]
            for name in db.extent_names()
            for attr in db.indexed_attributes(name)
        ],
    }


def decode_sample(data: dict[str, Any]) -> tuple[str, dict[str, Any], Database]:
    """Rebuild the runnable (source, params, database) triple."""
    schema = Schema()
    for class_name, encoded in data["schema"]["classes"].items():
        record_type = _decode_type(encoded)
        assert isinstance(record_type, RecordType)
        schema.define_class(class_name, **dict(record_type.fields))
    for extent_name, class_name in data["schema"]["extents"].items():
        schema.define_extent(extent_name, class_name)
    db = Database(schema)
    for extent_name, payload in data["extents"].items():
        db.add_extent(
            extent_name,
            [_decode_value(obj) for obj in payload["objects"]],
            kind=payload["kind"],
        )
    for extent_name, attr in data.get("indexes", []):
        db.create_index(extent_name, attr)
    params = {name: _decode_value(v) for name, v in data.get("params", {}).items()}
    return data["source"], params, db


def save_repro(
    path: str | Path,
    source: str,
    params: dict[str, Any],
    db: Database,
    description: str = "",
    seed: int | None = None,
    expect: str = "agreement",
) -> Path:
    """Write one sample to *path* as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = encode_sample(source, params, db, description, seed, expect)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: str | Path) -> tuple[str, dict[str, Any], Database]:
    """Read a repro file back into a runnable sample."""
    return decode_sample(json.loads(Path(path).read_text()))
