"""Differential fuzzing for the unnesting pipeline.

The paper's central claim (Theorem 2) is semantic equivalence: the unnested
algebraic plan must return exactly what the naive nested calculus evaluation
returns, for *every* query — including the set/bag and NULL/outer-join
corner cases where shredding-style translations historically go wrong.  The
hand-written corpus in ``tests/corpus.py`` covers the paper's examples; this
package machine-generates adversarial coverage:

* :mod:`repro.testing.schemagen` — seeded random schemas and instances
  (nested extents, indexes, NULLs, empty collections);
* :mod:`repro.testing.qgen` — a grammar-driven random OQL generator,
  including ``:name`` prepared-statement placeholders;
* :mod:`repro.testing.oracle` — the differential oracle: every generated
  query runs through every execution path (direct calculus, normalized
  calculus, logical algebra, each physical-planner combination, the
  prepared-statement/plan-cache path) and the results are compared under
  the correct monoid equality;
* :mod:`repro.testing.invariants` — per-sample pipeline checks: type
  preservation across stages, N-rule normal form after normalization, and
  operator-tree well-formedness after unnesting;
* :mod:`repro.testing.shrink` — a delta-debugging shrinker that minimizes
  any disagreeing query/database pair;
* :mod:`repro.testing.repro_io` — JSON repro artifacts (replayed forever by
  ``tests/test_fuzz_regressions.py``);
* :mod:`repro.testing.fuzz` — the driver behind ``repro fuzz``.
"""

from repro.testing.fuzz import FuzzConfig, FuzzReport, run_fuzz
from repro.testing.oracle import check_sample, run_all_paths
from repro.testing.qgen import GeneratedQuery, QueryGenerator
from repro.testing.schemagen import random_database

__all__ = [
    "FuzzConfig",
    "FuzzReport",
    "GeneratedQuery",
    "QueryGenerator",
    "check_sample",
    "random_database",
    "run_all_paths",
    "run_fuzz",
]
