"""The fuzzing loop behind ``repro fuzz``.

Each iteration derives its own RNG from the master seed, generates a fresh
random database and one random query over it, runs the differential oracle
(every execution path) and the pipeline invariant checkers, and — when
something disagrees — shrinks the sample with delta debugging and optionally
saves a JSON repro artifact.

The loop is fully deterministic: ``run_fuzz(FuzzConfig(seed=2,
iterations=500))`` finds exactly the same samples on every machine, which is
what lets CI run a fixed-seed smoke job and lets a developer replay a
finding from nothing but ``(seed, iteration)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.testing.invariants import check_invariants
from repro.testing.oracle import check_sample
from repro.testing.qgen import QueryGenConfig, QueryGenerator
from repro.testing.repro_io import save_repro
from repro.testing.schemagen import SchemaGenConfig, random_database
from repro.testing.shrink import default_interesting, shrink


@dataclass
class FuzzConfig:
    """Knobs for one fuzzing run."""

    seed: int = 0
    iterations: int = 100
    #: Directory to write JSON repro artifacts into (None: don't save).
    save_repros: str | None = None
    #: Minimize disagreements before reporting/saving them.
    shrink: bool = True
    #: Also run the structural pipeline invariants on every sample.
    invariants: bool = True
    #: Fault injection: additionally run every sample under a deliberately
    #: tiny, deterministic governor budget so limits trip mid-query, and
    #: assert (a) the failure is a structured GovernorError, never a raw
    #: exception, and (b) the engine state stays clean — the same pipeline
    #: immediately re-runs the query unlimited and must still agree with
    #: the reference result.
    fault_injection: bool = False
    schema_config: SchemaGenConfig = field(default_factory=SchemaGenConfig)
    query_config: QueryGenConfig = field(default_factory=QueryGenConfig)


@dataclass
class Finding:
    """One fuzzer-found problem, already shrunk."""

    kind: str  # "disagreement" | "invariant" | "fault-injection"
    iteration: int
    source: str
    params: dict[str, Any]
    detail: str
    repro_path: str | None = None

    def describe(self) -> str:
        header = f"[{self.kind}] iteration {self.iteration}: {self.source}"
        if self.params:
            header += f"  params={self.params}"
        if self.repro_path:
            header += f"  (saved: {self.repro_path})"
        return header + "\n" + self.detail


@dataclass
class FuzzReport:
    """What a fuzzing run observed."""

    config: FuzzConfig
    iterations: int = 0
    #: Samples where every path succeeded with equal results.
    agreed_ok: int = 0
    #: Samples where every path failed (also agreement — e.g. type errors).
    agreed_error: int = 0
    #: Path-level skips: a backend refused a sample with a typed
    #: BackendUnsupportedError.  Counted (never silent) but not findings.
    path_skips: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        lines = [
            f"{self.iterations} iterations: "
            f"{self.agreed_ok} agreed, "
            f"{self.agreed_error} agreed-on-error, "
            f"{self.path_skips} path skip(s), "
            f"{len(self.findings)} finding(s)"
        ]
        lines.extend(finding.describe() for finding in self.findings)
        return "\n".join(lines)


Progress = Callable[[int, "FuzzReport"], None]


def _iteration_rng(seed: int, iteration: int) -> random.Random:
    return random.Random(f"{seed}:{iteration}")


def check_fault_injection(
    source: str, params: dict[str, Any], db, rng: random.Random
) -> list[str]:
    """Trip a tiny governor budget mid-query; verify clean failure + state.

    Returns human-readable violations (empty = pass).  Three properties:

    1. under a small ``max_rows`` budget the query either completes (it was
       cheap) or fails with a :class:`~repro.errors.GovernorError` — never
       any other exception class;
    2. a *second* execution on the same pipeline object with the budget
       still in place behaves identically (no corrupted operator state,
       no poisoned plan cache);
    3. the same query re-run on an unlimited pipeline still matches the
       reference semantics — a tripped budget must not leave partial
       results anywhere.

    The same budget also runs through the parallel exchange layer (3
    workers sharing the governor), where the properties extend to: the
    outcome category is interleaving-independent, and the worker pool
    drains fully even when a budget trips mid-query; and through the
    SQLite shredding backend, where the governor is enforced *inside*
    SQLite via a progress handler — a trip mid-SELECT must still surface
    as a structured GovernorError (never a raw sqlite3 exception) and the
    store must stay reusable for the re-run.
    """
    from repro.core.optimizer import OptimizerOptions
    from repro.core.pipeline import QueryPipeline
    from repro.errors import GovernorError, QueryError
    from repro.testing.oracle import results_equal

    violations: list[str] = []
    budget = rng.choice((1, 5, 25))
    limited = QueryPipeline(db, OptimizerOptions(max_rows=budget))

    def run_limited() -> tuple[str, Any]:
        try:
            return "ok", limited.run_oql(source, **dict(params))
        except GovernorError:
            return "tripped", None
        except QueryError:
            return "error", None  # the query itself is bad; fine
        except Exception as exc:  # noqa: BLE001 - the property under test
            violations.append(
                f"fault injection (max_rows={budget}) leaked a raw "
                f"{type(exc).__name__}: {exc}"
            )
            return "leak", None

    first, _ = run_limited()
    second, _ = run_limited()
    if "leak" not in (first, second) and first != second:
        violations.append(
            f"fault injection not deterministic: first run {first!r}, "
            f"second run {second!r} (max_rows={budget})"
        )
    # The same budget through the parallel exchange layer: a trip must
    # surface as the same structured error with every worker drained, and
    # the outcome category must not depend on thread interleaving.  (The
    # category may legitimately differ from the serial run's — broadcast
    # join sides re-tick per worker, a documented over-accounting — so the
    # two runs compared here are both parallel.)
    import threading

    baseline_threads = threading.active_count()
    par_limited = QueryPipeline(
        db, OptimizerOptions(max_rows=budget, parallel=True, num_workers=3)
    )

    def run_par_limited() -> str:
        try:
            par_limited.run_oql(source, **dict(params))
            return "ok"
        except GovernorError:
            return "tripped"
        except QueryError:
            return "error"
        except Exception as exc:  # noqa: BLE001 - the property under test
            violations.append(
                f"parallel fault injection (max_rows={budget}) leaked a raw "
                f"{type(exc).__name__}: {exc}"
            )
            return "leak"

    par_first = run_par_limited()
    par_second = run_par_limited()
    if "leak" not in (par_first, par_second) and par_first != par_second:
        violations.append(
            f"parallel fault injection not deterministic: first run "
            f"{par_first!r}, second run {par_second!r} (max_rows={budget})"
        )
    if threading.active_count() > baseline_threads:
        violations.append(
            f"parallel fault injection leaked worker threads: "
            f"{threading.active_count()} alive, baseline {baseline_threads}"
        )
    # The same budget through the SQLite shredding backend: the governor
    # runs inside SQLite (progress handler) and between flat queries
    # (fetch batches), so a trip mid-SELECT must still be a structured
    # GovernorError.  BackendUnsupportedError is a QueryError subclass, so
    # refused samples land in the "error" category — fine, and still
    # required to be deterministic.
    sql_limited = QueryPipeline(
        db, OptimizerOptions(max_rows=budget, backend="sqlite")
    )

    def run_sql_limited() -> str:
        try:
            sql_limited.run_oql(source, **dict(params))
            return "ok"
        except GovernorError:
            return "tripped"
        except QueryError:
            return "error"
        except Exception as exc:  # noqa: BLE001 - the property under test
            violations.append(
                f"sqlite fault injection (max_rows={budget}) leaked a raw "
                f"{type(exc).__name__}: {exc}"
            )
            return "leak"

    sql_first = run_sql_limited()
    sql_second = run_sql_limited()
    if "leak" not in (sql_first, sql_second) and sql_first != sql_second:
        violations.append(
            f"sqlite fault injection not deterministic: first run "
            f"{sql_first!r}, second run {sql_second!r} (max_rows={budget})"
        )
    # Clean-state probe: unlimited re-execution must match the reference.
    try:
        reference = QueryPipeline(db).run_oql(source, **dict(params))
    except QueryError:
        return violations  # query fails regardless of budgets; nothing to compare
    except Exception as exc:  # noqa: BLE001
        violations.append(
            f"unlimited run leaked a raw {type(exc).__name__}: {exc}"
        )
        return violations
    try:
        again = QueryPipeline(db).run_oql(source, **dict(params))
    except Exception as exc:  # noqa: BLE001
        violations.append(
            f"re-run after fault injection failed: {type(exc).__name__}: {exc}"
        )
        return violations
    if not results_equal(reference, again):
        violations.append(
            "state not clean after fault injection: re-run result "
            f"{again!r} != reference {reference!r}"
        )
    return violations


def generate_sample(config: FuzzConfig, iteration: int):
    """The (source, params, database) triple for one iteration."""
    rng = _iteration_rng(config.seed, iteration)
    db, generated = random_database(rng, config.schema_config)
    generator = QueryGenerator(generated, rng, config.query_config)
    query = generator.query()
    return query.source, query.params, db


def run_fuzz(config: FuzzConfig, progress: Progress | None = None) -> FuzzReport:
    """Run the full fuzzing loop and return the report."""
    report = FuzzReport(config)
    save_dir = Path(config.save_repros) if config.save_repros else None
    for iteration in range(config.iterations):
        source, params, db = generate_sample(config, iteration)
        verdict = check_sample(source, params, db)
        report.path_skips += len(verdict.skipped)
        if verdict.agreed:
            if verdict.reference.ok:
                report.agreed_ok += 1
            else:
                report.agreed_error += 1
        else:
            source_, params_, db_ = source, dict(params), db
            if config.shrink:
                source_, params_, db_ = shrink(
                    source_, params_, db_, default_interesting
                )
                verdict = check_sample(source_, params_, db_)
            finding = Finding(
                "disagreement", iteration, source_, params_, verdict.describe()
            )
            if save_dir is not None:
                path = save_repro(
                    save_dir / f"disagreement_s{config.seed}_i{iteration}.json",
                    source_,
                    params_,
                    db_,
                    description=(
                        f"fuzzer disagreement (seed={config.seed}, "
                        f"iteration={iteration})"
                    ),
                    seed=config.seed,
                )
                finding.repro_path = str(path)
            report.findings.append(finding)
        if config.invariants:
            violations = check_invariants(source, params, db)
            if violations:
                report.findings.append(
                    Finding(
                        "invariant", iteration, source, dict(params),
                        "\n".join(violations),
                    )
                )
        if config.fault_injection:
            rng = _iteration_rng(config.seed, iteration)
            violations = check_fault_injection(source, dict(params), db, rng)
            if violations:
                report.findings.append(
                    Finding(
                        "fault-injection", iteration, source, dict(params),
                        "\n".join(violations),
                    )
                )
        report.iterations += 1
        if progress is not None:
            progress(iteration + 1, report)
    return report
