"""Grammar-driven random OQL query generation.

Given a schema (typically one from :mod:`repro.testing.schemagen`, but any
:class:`~repro.data.schema.Schema` works), :class:`QueryGenerator` emits
random-but-well-typed OQL source strings covering every nesting class the
paper discusses: flat selects and joins, type-N/J nesting (subqueries as
generator domains, membership predicates), type-A/JA nesting (correlated
aggregates, nested selects in the head), universal/existential quantifiers,
group-by with having, set operations, and ``flatten`` — plus prepared-
statement ``:name`` placeholders whose values are returned alongside the
source.

Deliberate restrictions, so that every execution path stays comparable:

* no ORDER BY (list results would make cross-path comparison order-
  sensitive; ordering is covered by the hand-written tests);
* no division except by powers of two, and float literals are multiples of
  0.25 — keeps float arithmetic exact, so bit-identical across paths;
* comparisons only between scalars of the same kind (never whole records),
  so merge-join keys are always totally ordered.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Any

from repro.data.schema import (
    CollectionType,
    FloatType,
    IntType,
    RecordType,
    Schema,
    StringType,
    Type,
)
from repro.data.values import NULL
from repro.testing.schemagen import INT_RANGE, STRING_POOL, GeneratedSchema


@dataclass
class GeneratedQuery:
    """One fuzz sample: OQL source plus its ``:name`` parameter values."""

    source: str
    params: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.source


@dataclass
class QueryGenConfig:
    """Shape/probability knobs for random queries."""

    max_depth: int = 3
    where_probability: float = 0.85
    param_probability: float = 0.2
    null_literal_probability: float = 0.06
    group_by_probability: float = 0.12
    second_generator_probability: float = 0.45
    distinct_probability: float = 0.65


_NUMERIC = ("int", "float")


def _kind_of(attr_type: Type) -> str | None:
    if isinstance(attr_type, IntType):
        return "int"
    if isinstance(attr_type, FloatType):
        return "float"
    if isinstance(attr_type, StringType):
        return "string"
    return None


class QueryGenerator:
    """Seeded random OQL generator over a fixed schema.

    >>> import random
    >>> from repro.testing.schemagen import random_database
    >>> db, generated = random_database(3)
    >>> gen = QueryGenerator(generated, random.Random(3))
    >>> query = gen.query()
    >>> isinstance(query.source, str) and len(query.source) > 0
    True
    """

    def __init__(
        self,
        schema: GeneratedSchema | Schema,
        rng: random.Random,
        config: QueryGenConfig | None = None,
    ):
        if isinstance(schema, GeneratedSchema):
            self.schema = schema.schema
        else:
            self.schema = schema
        self.rng = rng
        self.config = config or QueryGenConfig()
        self._var_counter = 0
        self._params: dict[str, Any] = {}

    # -- public entry point -------------------------------------------------

    def query(self) -> GeneratedQuery:
        """Generate one top-level query (fresh variable/parameter names)."""
        self._var_counter = 0
        self._params = {}
        roll = self.rng.random()
        depth = self.config.max_depth
        if roll < 0.60:
            source = self._select_query([], depth)
        elif roll < 0.75:
            source = self._top_aggregate(depth)
        elif roll < 0.90:
            source = self._top_boolean(depth)
        else:
            source = self._set_operation(depth)
        # Generation backtracks (e.g. a drafted domain that a group-by shape
        # replaces), so only keep parameters the final text references.
        used = set(re.findall(r":(q\d+)", source))
        return GeneratedQuery(
            source, {k: v for k, v in self._params.items() if k in used}
        )

    # -- schema helpers -----------------------------------------------------

    def _extents(self) -> list[tuple[str, RecordType]]:
        return [
            (name, self.schema.class_type(self.schema.extents[name]))
            for name in self.schema.extent_names()
        ]

    def _fresh_var(self) -> str:
        name = f"v{self._var_counter}"
        self._var_counter += 1
        return name

    def _scalar_attrs(
        self, record_type: RecordType, kinds: tuple[str, ...] | None = None
    ) -> list[tuple[str, str]]:
        """(attr, kind) pairs for the record's scalar attributes."""
        out = []
        for attr, attr_type in record_type.fields:
            kind = _kind_of(attr_type)
            if kind is not None and (kinds is None or kind in kinds):
                out.append((attr, kind))
        return out

    def _collection_attrs(
        self, record_type: RecordType
    ) -> list[tuple[str, CollectionType]]:
        return [
            (attr, attr_type)
            for attr, attr_type in record_type.fields
            if isinstance(attr_type, CollectionType)
        ]

    # -- literals and parameters --------------------------------------------

    def _literal_value(self, kind: str) -> Any:
        if kind == "int":
            return self.rng.randint(0, INT_RANGE)
        if kind == "float":
            return self.rng.randint(0, 4 * INT_RANGE) * 0.25
        return self.rng.choice(STRING_POOL)

    def _literal(self, kind: str, allow_null: bool = True) -> str:
        """Render a literal of *kind*; sometimes as a ``:qN`` parameter,
        occasionally as ``nil`` or a NULL-valued parameter."""
        rng = self.rng
        if allow_null and rng.random() < self.config.null_literal_probability:
            if rng.random() < 0.5:
                return "nil"
            name = f"q{len(self._params)}"
            self._params[name] = NULL
            return f":{name}"
        value = self._literal_value(kind)
        if rng.random() < self.config.param_probability:
            name = f"q{len(self._params)}"
            self._params[name] = value
            return f":{name}"
        if kind == "string":
            return f'"{value}"'
        return repr(value)

    # -- scalar expressions -------------------------------------------------

    def _paths_of_kind(
        self, env: list[tuple[str, RecordType]], kinds: tuple[str, ...]
    ) -> list[tuple[str, str]]:
        """All in-scope ``var.attr`` paths whose attribute kind is in *kinds*."""
        paths = []
        for var, record_type in env:
            for attr, kind in self._scalar_attrs(record_type, kinds):
                paths.append((f"{var}.{attr}", kind))
        return paths

    def _scalar_expr(
        self, env: list[tuple[str, RecordType]], kind: str, depth: int
    ) -> str:
        """A scalar expression of *kind* over the in-scope variables."""
        rng = self.rng
        paths = self._paths_of_kind(env, (kind,))
        if kind in _NUMERIC and paths and rng.random() < 0.25:
            base, _ = rng.choice(paths)
            op = rng.choice(("+", "-", "*", "/", "%"))
            if op == "/":
                return f"{base} / {rng.choice((2, 4))}"
            if op == "%":
                return f"{base} % {rng.choice((3, 7))}"
            if op == "*":
                return f"{base} * {rng.choice((2, 3))}"
            return f"{base} {op} {self.rng.randint(0, INT_RANGE)}"
        if kind in _NUMERIC and depth > 0 and rng.random() < 0.15:
            aggregate = self._aggregate_subquery(env, kind, depth - 1)
            if aggregate is not None:
                return aggregate
        if paths and rng.random() < 0.8:
            return rng.choice(paths)[0]
        return self._literal(kind, allow_null=False)

    def _aggregate_subquery(
        self, env: list[tuple[str, RecordType]], kind: str, depth: int
    ) -> str | None:
        """``sum/avg/max/min/count( select ... )`` yielding a numeric."""
        rng = self.rng
        if rng.random() < 0.4:
            subquery = self._select_query(env, min(depth, 1), force_plain=True)
            return f"count( {subquery} )"
        function = rng.choice(("sum", "max", "min", "avg"))
        subquery = self._scalar_subquery(env, ("int", "float"), depth)
        if subquery is None:
            return None
        return f"{function}( {subquery} )"

    # -- collections usable as generator domains ----------------------------

    def _domains(
        self, env: list[tuple[str, RecordType]], depth: int
    ) -> list[tuple[str, RecordType]]:
        """(domain text, element record type) candidates for a generator."""
        choices: list[tuple[str, RecordType]] = list(self._extents())
        for var, record_type in env:
            for attr, coll_type in self._collection_attrs(record_type):
                if isinstance(coll_type.element, RecordType):
                    choices.append((f"{var}.{attr}", coll_type.element))
        return choices

    def _pick_domain(
        self, env: list[tuple[str, RecordType]], depth: int
    ) -> tuple[str, RecordType]:
        rng = self.rng
        choices = self._domains(env, depth)
        domain, element = rng.choice(choices)
        # Occasionally wrap an extent in a subquery (type-N nesting) or a
        # flatten of a nested collection.
        if depth > 0 and rng.random() < 0.2:
            var = self._fresh_var()
            inner_env = env + [(var, element)]
            where = ""
            if rng.random() < 0.7:
                where = f" where {self._predicate(inner_env, depth - 1)}"
            return (f"( select {var} from {var} in {domain}{where} )", element)
        if depth > 0 and rng.random() < 0.1:
            # flatten( select v.kids from v in X )
            extents = list(self._extents())
            rng.shuffle(extents)
            for extent, record_type in extents:
                nested = self._collection_attrs(record_type)
                nested = [
                    (attr, coll)
                    for attr, coll in nested
                    if isinstance(coll.element, RecordType)
                ]
                if nested:
                    attr, coll = rng.choice(nested)
                    var = self._fresh_var()
                    return (
                        f"flatten( select {var}.{attr} from {var} in {extent} )",
                        coll.element,
                    )
        return domain, element

    # -- predicates ---------------------------------------------------------

    def _predicate(self, env: list[tuple[str, RecordType]], depth: int) -> str:
        rng = self.rng
        atoms = [self._atom(env, depth)]
        while len(atoms) < 3 and rng.random() < 0.3:
            atoms.append(self._atom(env, depth))
        text = atoms[0]
        for atom in atoms[1:]:
            text = f"({text} {rng.choice(('and', 'or'))} {atom})"
        if rng.random() < 0.12:
            text = f"not ({text})"
        return text

    def _atom(self, env: list[tuple[str, RecordType]], depth: int) -> str:
        rng = self.rng
        roll = rng.random()
        if depth <= 0 or roll < 0.45:
            return self._comparison(env)
        if roll < 0.60:
            return self._membership(env, depth - 1)
        if roll < 0.80:
            return self._quantifier(env, depth - 1)
        if roll < 0.90:
            return self._count_comparison(env, depth - 1)
        subquery = self._select_query(env, min(depth - 1, 1), force_plain=True)
        return f"exists( {subquery} )"

    def _comparison(self, env: list[tuple[str, RecordType]]) -> str:
        rng = self.rng
        kind = rng.choice(("int", "int", "float", "string"))
        paths = self._paths_of_kind(env, (kind,))
        if not paths:
            kind = "int"
            paths = self._paths_of_kind(env, (kind,))
        if not paths:
            return "true"
        left, _ = rng.choice(paths)
        if kind == "string":
            op = rng.choice(("=", "!=", "=", "<"))
        else:
            op = rng.choice(("=", "!=", "<", "<=", ">", ">="))
        # Compare against another path (a join-key shape) or a literal.
        if len(paths) > 1 and rng.random() < 0.45:
            right = rng.choice([p for p, _ in paths if p != left] or [left])
            return f"{left} {op} {right}"
        return f"{left} {op} {self._literal(kind)}"

    def _membership(self, env: list[tuple[str, RecordType]], depth: int) -> str:
        rng = self.rng
        paths = self._paths_of_kind(env, ("int", "string"))
        if not paths:
            return self._comparison(env)
        path, kind = rng.choice(paths)
        subquery = self._scalar_subquery(env, (kind,), depth)
        if subquery is None:
            return self._comparison(env)
        return f"{path} in ( {subquery} )"

    def _quantifier(self, env: list[tuple[str, RecordType]], depth: int) -> str:
        rng = self.rng
        domain, element = self._pick_domain(env, depth)
        var = self._fresh_var()
        inner_env = env + [(var, element)]
        body = (
            self._comparison(inner_env)
            if depth <= 0 or rng.random() < 0.7
            else self._predicate(inner_env, depth - 1)
        )
        keyword = rng.choice(("exists", "for all"))
        return f"{keyword} {var} in {domain}: {body}"

    def _count_comparison(
        self, env: list[tuple[str, RecordType]], depth: int
    ) -> str:
        subquery = self._select_query(env, min(depth, 1), force_plain=True)
        op = self.rng.choice(("=", ">=", "<=", ">", "<"))
        return f"count( {subquery} ) {op} {self.rng.randint(0, 3)}"

    # -- subqueries ---------------------------------------------------------

    def _scalar_subquery(
        self,
        env: list[tuple[str, RecordType]],
        kinds: tuple[str, ...],
        depth: int,
    ) -> str | None:
        """``select [distinct] w.attr from w in DOM [where ...]`` over a
        scalar attribute of one of the given kinds; None when no domain has
        such an attribute."""
        rng = self.rng
        candidates = []
        for domain, element in self._domains(env, depth):
            for attr, kind in self._scalar_attrs(element, kinds):
                candidates.append((domain, element, attr))
        if not candidates:
            return None
        domain, element, attr = rng.choice(candidates)
        var = self._fresh_var()
        inner_env = env + [(var, element)]
        distinct = "distinct " if rng.random() < 0.4 else ""
        where = ""
        if rng.random() < 0.75:
            where = f" where {self._predicate(inner_env, max(depth - 1, 0))}"
        return f"select {distinct}{var}.{attr} from {var} in {domain}{where}"

    # -- select queries -----------------------------------------------------

    def _select_query(
        self,
        env: list[tuple[str, RecordType]],
        depth: int,
        force_plain: bool = False,
    ) -> str:
        """A select-from-where query over (and possibly correlated with)
        the in-scope environment.  With *force_plain* the head is the first
        range variable itself (the shape ``count(...)`` and ``exists(...)``
        consume)."""
        rng = self.rng
        config = self.config

        domain, element = self._pick_domain(env, depth - 1)
        var = self._fresh_var()
        inner_env = env + [(var, element)]
        # "v in X" and "X [as] v" are both legal OQL; cover each.
        if rng.random() < 0.8 or domain[0] == "(":
            froms = [f"{var} in {domain}"]
        else:
            froms = [f"{domain} as {var}"]

        if not force_plain and rng.random() < config.group_by_probability:
            grouped = self._group_by_select(var, element, inner_env, depth)
            if grouped is not None:
                return grouped

        if rng.random() < config.second_generator_probability:
            domain2, element2 = self._pick_domain(inner_env, 0)
            var2 = self._fresh_var()
            froms.append(f"{var2} in {domain2}")
            inner_env = inner_env + [(var2, element2)]

        where = ""
        if rng.random() < config.where_probability:
            where = f" where {self._predicate(inner_env, depth - 1)}"

        distinct = "distinct " if rng.random() < config.distinct_probability else ""
        if force_plain:
            return f"select {distinct}{var} from {', '.join(froms)}{where}"

        head = self._head(inner_env, depth - 1)
        return f"select {distinct}{head} from {', '.join(froms)}{where}"

    def _head(self, env: list[tuple[str, RecordType]], depth: int) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.30:
            kind = rng.choice(("int", "float", "string"))
            return self._scalar_expr(env, kind, depth)
        if roll < 0.45:
            var, _ = rng.choice(env)
            return var
        # A struct head; fields may hold scalars, nested selects (type-JA
        # nesting in the head — QUERY B's shape), or correlated aggregates
        # (QUERY D's shape).
        fields = []
        for index in range(rng.randint(2, 3)):
            label = f"A{index}"
            sub_roll = rng.random()
            if depth > 0 and sub_roll < 0.25:
                fields.append(
                    f"{label}: ( {self._select_query(env, min(depth, 1), force_plain=True)} )"
                )
            elif depth > 0 and sub_roll < 0.45:
                aggregate = self._aggregate_subquery(env, "float", depth)
                fields.append(f"{label}: {aggregate or self._scalar_expr(env, 'int', 0)}")
            else:
                kind = rng.choice(("int", "float", "string"))
                fields.append(f"{label}: {self._scalar_expr(env, kind, 0)}")
        return f"struct( {', '.join(fields)} )"

    def _group_by_select(
        self,
        var: str,
        element: RecordType,
        env: list[tuple[str, RecordType]],
        depth: int,
    ) -> str | None:
        """``select v.g, agg(v.n) as a0 from X v group by v.g [having ...]``."""
        rng = self.rng
        extent, element = rng.choice(self._extents())
        group_attrs = self._scalar_attrs(element, ("int", "string"))
        numeric_attrs = self._scalar_attrs(element, ("int", "float"))
        if not group_attrs or not numeric_attrs:
            return None
        group_attr, _ = rng.choice(group_attrs)
        num_attr, _ = rng.choice(numeric_attrs)
        function = rng.choice(("sum", "max", "min", "avg", "count"))
        head_agg = (
            f"count({var})" if function == "count" else f"{function}({var}.{num_attr})"
        )
        where = ""
        if rng.random() < 0.5:
            where = f" where {self._comparison([(var, element)])}"
        having = ""
        if rng.random() < 0.4:
            having = f" having count({var}) {rng.choice(('>', '>='))} {rng.randint(1, 2)}"
        return (
            f"select {var}.{group_attr}, {head_agg} as a0 "
            f"from {extent} {var}{where} group by {var}.{group_attr}{having}"
        )

    # -- other top-level forms ----------------------------------------------

    def _top_aggregate(self, depth: int) -> str:
        aggregate = self._aggregate_subquery([], "float", depth)
        if aggregate is None:
            return self._select_query([], depth)
        return aggregate

    def _top_boolean(self, depth: int) -> str:
        return self._quantifier([], depth)

    def _set_operation(self, depth: int) -> str:
        rng = self.rng
        candidates = []
        for extent, element in self._extents():
            for attr, kind in self._scalar_attrs(element):
                candidates.append((extent, element, attr))
        if not candidates:
            return self._select_query([], depth)
        extent, element, attr = rng.choice(candidates)
        op = rng.choice(("union", "except", "intersect"))
        sides = []
        for _ in range(2):
            var = self._fresh_var()
            where = ""
            if rng.random() < 0.8:
                where = f" where {self._predicate([(var, element)], depth - 1)}"
            sides.append(
                f"( select distinct {var}.{attr} from {var} in {extent}{where} )"
            )
        return f"{sides[0]} {op} {sides[1]}"
