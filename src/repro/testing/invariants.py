"""Per-sample pipeline invariants, checked on every fuzzed query.

The differential oracle compares *results*; these checkers look inside the
pipeline and verify structural properties that must hold for every query,
whatever its result:

* **type preservation** — the static type of the calculus term is unchanged
  by normalization, and the unnested plan's type matches it (Theorem 1's
  typing judgement is stable across Figure 4 and Figure 7);
* **normal form** — after :func:`repro.core.normalization.prepare` the term
  satisfies the unconditional N-rule guarantees (no beta-redexes, no lets,
  no projections of record constructors, no zero/singleton/merge/conditional
  generator domains) and normalization has reached a fixpoint;
* **plan well-formedness** — every operator of the unnested tree references
  only range variables bound below it, and never rebinds a column.

Each checker raises :class:`InvariantViolation` with a readable message;
:func:`check_invariants` runs them all and returns the violations.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.algebra.operators import (
    Eval,
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.terms import (
    Apply,
    Comprehension,
    If,
    Lambda,
    Let,
    Merge,
    Proj,
    RecordCons,
    Singleton,
    Term,
    Zero,
    free_vars,
    subterms,
)
from repro.calculus.typing import infer_type
from repro.core.normalization import canonicalize, normalize, prepare
from repro.core.unnesting import _uniquify, unnest
from repro.data.database import Database
from repro.oql.translator import parse_and_translate
from repro.testing.oracle import substitute_params


class InvariantViolation(AssertionError):
    """A structural pipeline invariant failed for a specific query."""


# ---------------------------------------------------------------------------
# Type preservation
# ---------------------------------------------------------------------------


def _compatible(before: Any, after: Any) -> bool:
    """Type equality modulo ``any``: a later stage may *generalize* a type
    to ``any`` (e.g. normalization collapsing a contradictory filter to the
    monoid zero, whose element type is unconstrained) but may never change
    it to a different concrete type."""
    from repro.data.schema import AnyType, CollectionType, RecordType

    if isinstance(after, AnyType) or isinstance(before, AnyType):
        return True
    if isinstance(before, CollectionType) and isinstance(after, CollectionType):
        return before.monoid_name == after.monoid_name and _compatible(
            before.element, after.element
        )
    if isinstance(before, RecordType) and isinstance(after, RecordType):
        if [a for a, _ in before.fields] != [a for a, _ in after.fields]:
            return False
        return all(
            _compatible(bt, at)
            for (_, bt), (_, at) in zip(before.fields, after.fields)
        )
    return before == after


def check_type_preservation(term: Term, prepared: Term, plan: Operator, db: Database) -> None:
    """The term's static type survives normalization and unnesting."""
    from repro.algebra.typing import infer_plan_type

    translated_type = infer_type(term, db.schema)
    normalized_type = infer_type(prepared, db.schema)
    if not _compatible(translated_type, normalized_type):
        raise InvariantViolation(
            f"normalization changed the type: {translated_type} -> {normalized_type}"
        )
    plan_type = infer_plan_type(plan, db.schema)
    if not _compatible(normalized_type, plan_type):
        raise InvariantViolation(
            f"unnesting changed the type: {normalized_type} -> {plan_type}"
        )


# ---------------------------------------------------------------------------
# Normal form (N1-N9)
# ---------------------------------------------------------------------------


def check_normal_form(prepared: Term) -> None:
    """The unconditional guarantees of Figure 4's normal form."""
    for sub in subterms(prepared):
        if isinstance(sub, Let):
            raise InvariantViolation(f"normal form contains a let: {sub!r}")
        if isinstance(sub, Apply) and isinstance(sub.fn, Lambda):
            raise InvariantViolation(f"normal form contains a beta-redex: {sub!r}")
        if isinstance(sub, Proj) and isinstance(sub.expr, RecordCons):
            raise InvariantViolation(
                f"normal form projects a record constructor (N2): {sub!r}"
            )
        if isinstance(sub, Comprehension):
            for generator in sub.generators():
                domain = generator.domain
                # N3-N6 fire unconditionally on these domain shapes.
                if isinstance(domain, (Zero, Singleton, Merge, If)):
                    raise InvariantViolation(
                        f"unnormalized generator domain (N3-N6): {domain!r}"
                    )
    # Normalization must be a fixpoint: running it again changes nothing
    # (modulo the fresh names introduced by variable uniquification).
    again = canonicalize(normalize(prepared))
    if again != canonicalize(prepared):
        raise InvariantViolation("normalize(normalize(t)) != normalize(t)")


# ---------------------------------------------------------------------------
# Plan well-formedness
# ---------------------------------------------------------------------------


def _check_operator(plan: Operator) -> tuple[str, ...]:
    """Recursively validate *plan*; returns its output columns."""

    def require(cond: bool, message: str) -> None:
        if not cond:
            raise InvariantViolation(f"{message} in {plan!s}")

    def scoped(term: Term, available: tuple[str, ...], what: str) -> None:
        unbound = free_vars(term) - set(available)
        require(not unbound, f"{what} references unbound columns {sorted(unbound)}")

    if isinstance(plan, Seed):
        return ()
    if isinstance(plan, Scan):
        return (plan.var,)
    if isinstance(plan, Select):
        cols = _check_operator(plan.child)
        scoped(plan.pred, cols, "select predicate")
        return cols
    if isinstance(plan, (Join, OuterJoin)):
        left = _check_operator(plan.left)
        right = _check_operator(plan.right)
        require(
            not set(left) & set(right),
            f"join sides rebind columns {sorted(set(left) & set(right))}",
        )
        scoped(plan.pred, left + right, "join predicate")
        return left + right
    if isinstance(plan, (Unnest, OuterUnnest)):
        cols = _check_operator(plan.child)
        require(plan.var not in cols, f"unnest rebinds column {plan.var!r}")
        scoped(plan.path, cols, "unnest path")
        scoped(plan.pred, cols + (plan.var,), "unnest predicate")
        return cols + (plan.var,)
    if isinstance(plan, Nest):
        cols = _check_operator(plan.child)
        require(
            set(plan.group_by) <= set(cols),
            f"nest groups by unbound columns {sorted(set(plan.group_by) - set(cols))}",
        )
        require(
            set(plan.null_vars) <= set(cols),
            f"nest null-tests unbound columns {sorted(set(plan.null_vars) - set(cols))}",
        )
        scoped(plan.head, cols, "nest head")
        scoped(plan.pred, cols, "nest predicate")
        require(plan.out_var not in plan.group_by, "nest output shadows a key")
        return tuple(plan.group_by) + (plan.out_var,)
    if isinstance(plan, Map):
        cols = _check_operator(plan.child)
        new = tuple(col for col, _ in plan.bindings)
        require(len(set(new)) == len(new), "map binds a column twice")
        require(not set(new) & set(cols), "map rebinds existing columns")
        for _, expr in plan.bindings:
            scoped(expr, cols, "map binding")
        return cols + new
    if isinstance(plan, Reduce):
        cols = _check_operator(plan.child)
        scoped(plan.head, cols, "reduce head")
        scoped(plan.pred, cols, "reduce predicate")
        return ()
    if isinstance(plan, Eval):
        cols = _check_operator(plan.child)
        scoped(plan.expr, cols, "eval expression")
        return ()
    raise InvariantViolation(f"unknown operator {type(plan).__name__}")


def check_plan_well_formed(plan: Operator) -> None:
    """Every operator references only columns bound beneath it."""
    require_root = isinstance(plan, (Reduce, Eval))
    if not require_root:
        raise InvariantViolation(
            f"plan root is {type(plan).__name__}, expected Reduce or Eval"
        )
    _check_operator(plan)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def check_invariants(
    source: str, params: Mapping[str, Any], db: Database
) -> list[str]:
    """Run every invariant checker on one query; returns violation messages.

    Queries that fail to compile are skipped (the differential oracle
    already checks that *all* paths agree on the failure).
    """
    try:
        term = substitute_params(parse_and_translate(source, db.schema), params)
        prepared = _uniquify(prepare(term))
        plan = unnest(prepared)
    except InvariantViolation:
        raise
    except Exception:
        return []
    violations: list[str] = []
    for name, check in (
        ("type-preservation", lambda: check_type_preservation(term, prepared, plan, db)),
        ("normal-form", lambda: check_normal_form(prepared)),
        ("plan-well-formed", lambda: check_plan_well_formed(plan)),
    ):
        try:
            check()
        except InvariantViolation as violation:
            violations.append(f"{name}: {violation}")
    return violations
