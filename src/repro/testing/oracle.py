"""The differential oracle: one query, every execution path.

Theorem 2 of the paper says the unnested algebraic plan computes the same
value as the nested calculus term it came from.  The oracle operationalizes
that: it runs a query through *every* path the repo can execute —

* ``calculus-raw`` — direct evaluation of the translated calculus term
  (the semantics; no normalization, no unnesting);
* ``calculus-normalized`` — evaluation after the N1–N9 normalization;
* ``algebra-logical`` — the unnested operator tree evaluated by the naive
  logical interpreter (no physical planning);
* ``pipeline-default`` — the full pipeline with default options;
* ``pipeline-interpreted-exprs`` — expression compilation disabled, so every
  per-row expression goes through the tree-walking interpreter (pins the
  compiled engine of ``pipeline-default`` against the interpreted one);
* ``pipeline-row-exec`` — batch execution disabled, so operators stream one
  environment dict per row (the tuple-at-a-time oracle the batched default
  path is cross-checked against);
* ``pipeline-batched-exec`` — batch execution with a deliberately tiny,
  non-divisible chunk size (7 rows), stressing chunk-boundary handling that
  the default 1024-row chunks rarely reach;
* ``pipeline-nl-joins`` — hash joins disabled (everything nested-loop);
* ``pipeline-no-index`` — index scans disabled;
* ``pipeline-merge-joins`` — sort-merge joins preferred;
* ``pipeline-no-opt`` — simplification/algebraic rewriting/join reordering
  all off (the raw unnested plan, physically executed);
* ``pipeline-cached`` — a second execution of the default pipeline, which
  must be served from the plan cache and still agree;
* ``param-roundtrip`` — the source with every literal replaced by a
  placeholder (:func:`repro.oql.params.parameterize_literals`), executed
  with the literals re-supplied as bind values;
* ``sqlite-shredded`` — the query-shredding SQLite backend
  (:mod:`repro.backends.shred`) with aggregation pushdown *off*: extents
  flattened into SQLite tables, join/unnest chains lowered to flat
  SELECTs, results stitched back in Python — an *independently
  implemented* executor for the same semantics;
* ``sqlite-shredded-pushdown`` — the SQLite backend's fast path:
  Reduce/Nest aggregation lowered into SQL ``GROUP BY`` + aggregate
  expressions, nested results reassembled by ordered linear merge;
* ``sqlite-shredded-cached-plan`` — the SQLite backend again, from a
  plan-cache hit (the shredded store is also cached; both caches must
  stay coherent) —

and compares the outcomes.  A query that *fails* identically everywhere
(e.g. a type error) counts as agreement; a query that succeeds on some
paths and fails on others, or succeeds with different values, is a
disagreement — exactly the bug class differential testing exists to catch.

One exception: a backend may *refuse* a query or database it cannot run
faithfully by raising :class:`~repro.errors.BackendUnsupportedError`.  The
oracle records that as a **skip** — counted and reported, never silent —
rather than a disagreement, because a refusal is the designed alternative
to diverging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.algebra.evaluator import evaluate_plan
from repro.calculus.evaluator import evaluate
from repro.calculus.terms import Const, Null, Param, Term, transform
from repro.calculus.typing import infer_type
from repro.errors import BackendUnsupportedError, QueryError
from repro.core.normalization import prepare
from repro.core.pipeline import QueryPipeline
from repro.core.unnesting import _uniquify, unnest
from repro.data.database import Database
from repro.data.values import (
    BagValue,
    CollectionValue,
    ListValue,
    Record,
    SetValue,
    is_null,
)
from repro.oql.params import parameterize_literals
from repro.oql.translator import parse_and_translate


@dataclass
class PathOutcome:
    """What one execution path produced: a value or an error.

    ``structured`` records whether a failure was a proper
    :class:`~repro.errors.QueryError`.  The paths that run through
    ``QueryPipeline.run_oql`` promise to *never* leak a raw Python
    exception, so an unstructured failure there is itself a bug the
    oracle flags — even when every path failed "identically".
    """

    path: str
    ok: bool
    value: Any = None
    error: str = ""
    structured: bool = True
    #: The path refused the query with BackendUnsupportedError: counted as
    #: a skip (neither agreement evidence nor a disagreement), never silent.
    skipped: bool = False

    def describe(self) -> str:
        if self.ok:
            return f"{self.path}: {self.value!r}"
        if self.skipped:
            return f"{self.path}: SKIPPED {self.error}"
        leak = "" if self.structured else " (RAW LEAK)"
        return f"{self.path}: ERROR{leak} {self.error}"


@dataclass
class OracleVerdict:
    """The oracle's judgement over all paths for one query."""

    agreed: bool
    outcomes: list[PathOutcome] = field(default_factory=list)

    @property
    def reference(self) -> PathOutcome:
        return self.outcomes[0]

    @property
    def skipped(self) -> list[PathOutcome]:
        """Paths that refused this query (BackendUnsupportedError)."""
        return [outcome for outcome in self.outcomes if outcome.skipped]

    def disagreements(self) -> list[PathOutcome]:
        """The outcomes that differ from the reference path, plus any
        pipeline path that leaked a raw (unstructured) exception.
        Skipped paths (typed backend refusals) are not disagreements."""
        reference = self.reference
        differing = [
            outcome
            for outcome in self.outcomes[1:]
            if not outcome.skipped and not _outcomes_match(reference, outcome)
        ]
        leaks = [
            outcome
            for outcome in self.outcomes
            if not outcome.structured and outcome not in differing
        ]
        return differing + leaks

    def describe(self) -> str:
        lines = ["agreed" if self.agreed else "DISAGREED"]
        lines.extend("  " + outcome.describe() for outcome in self.outcomes)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Result comparison
# ---------------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """A hashable, float-rounded, order-insensitive image of a result.

    Sets and bags compare as multisets of canonical elements; lists keep
    their order.  Floats are rounded to 9 places so the (rare) paths that
    associate float additions differently still compare equal.
    """
    if is_null(value):
        return "<null>"
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return ("f", round(value, 9))
    if isinstance(value, int):
        # 2 and 2.0 are the same value to the query language.
        return ("f", round(float(value), 9))
    if isinstance(value, Record):
        return ("rec", tuple(sorted((k, _canonical(v)) for k, v in value.items())))
    if isinstance(value, ListValue):
        return ("list", tuple(_canonical(v) for v in value))
    if isinstance(value, (SetValue, BagValue)):
        tag = "set" if isinstance(value, SetValue) else "bag"
        return (tag, tuple(sorted(map(repr, map(_canonical, value)))))
    if isinstance(value, CollectionValue):  # pragma: no cover - future kinds
        return ("coll", tuple(sorted(map(repr, map(_canonical, value)))))
    return value


def results_equal(left: Any, right: Any) -> bool:
    """Equality across execution paths: exact when possible, canonical
    (float-rounded, order-insensitive) otherwise."""
    try:
        if left == right:
            return True
    except TypeError:
        pass
    return _canonical(left) == _canonical(right)


def _outcomes_match(left: PathOutcome, right: PathOutcome) -> bool:
    if left.ok != right.ok:
        return False
    if not left.ok:
        return True  # both failed: agreement (error classes may differ)
    return results_equal(left.value, right.value)


# ---------------------------------------------------------------------------
# Path execution
# ---------------------------------------------------------------------------


def substitute_params(term: Term, params: Mapping[str, Any]) -> Term:
    """Inline parameter values as literals (for the paths — direct calculus
    over a prepared term, logical algebra — that have no bind step)."""

    def inline(node: Term) -> Term:
        if isinstance(node, Param):
            if node.name not in params:
                raise KeyError(f"unbound parameter :{node.name}")
            value = params[node.name]
            return Null() if is_null(value) else Const(value)
        return node

    return transform(term, inline)


def _path_calculus_raw(source: str, params: Mapping[str, Any], db: Database) -> Any:
    term = parse_and_translate(source, db.schema)
    # The pipeline paths typecheck by default; the raw reference paths must
    # reject the same queries or an ill-typed query would "disagree" by
    # succeeding here while every pipeline path throws TypeCheckError.
    infer_type(term, db.schema)
    return evaluate(term, db, params=params)


def _path_calculus_normalized(
    source: str, params: Mapping[str, Any], db: Database
) -> Any:
    term = parse_and_translate(source, db.schema)
    infer_type(term, db.schema)
    return evaluate(_uniquify(prepare(term)), db, params=params)


def _path_algebra_logical(
    source: str, params: Mapping[str, Any], db: Database
) -> Any:
    term = substitute_params(parse_and_translate(source, db.schema), params)
    infer_type(term, db.schema)
    plan = unnest(_uniquify(prepare(term)))
    return evaluate_plan(plan, db)


def _pipeline_path(**options: Any) -> Callable[[str, Mapping[str, Any], Database], Any]:
    def run(source: str, params: Mapping[str, Any], db: Database) -> Any:
        from repro.core.optimizer import OptimizerOptions

        pipeline = QueryPipeline(db, OptimizerOptions(**options))
        return pipeline.run_oql(source, **dict(params))

    return run


def _path_pipeline_cached(
    source: str, params: Mapping[str, Any], db: Database
) -> Any:
    pipeline = QueryPipeline(db)
    pipeline.run_oql(source, **dict(params))  # populate the cache
    hits_before = pipeline.plan_cache.hits
    result = pipeline.run_oql(source, **dict(params))
    if pipeline.plan_cache.hits != hits_before + 1:  # pragma: no cover
        raise AssertionError("second execution was not served from the plan cache")
    return result


def _path_param_roundtrip(
    source: str, params: Mapping[str, Any], db: Database
) -> Any:
    parameterized, literal_params = parameterize_literals(source)
    merged = dict(params)
    merged.update(literal_params)
    return QueryPipeline(db).run_oql(parameterized, **merged)


def _path_sqlite_cached(
    source: str, params: Mapping[str, Any], db: Database
) -> Any:
    from repro.core.optimizer import OptimizerOptions

    pipeline = QueryPipeline(db, OptimizerOptions(backend="sqlite"))
    pipeline.run_oql(source, **dict(params))  # populate plan + store caches
    hits_before = pipeline.plan_cache.hits
    result = pipeline.run_oql(source, **dict(params))
    if pipeline.plan_cache.hits != hits_before + 1:  # pragma: no cover
        raise AssertionError("second execution was not served from the plan cache")
    return result


#: Paths that execute outside ``QueryPipeline.run_oql`` and therefore make
#: no promise about structured errors (the pipeline paths do).
RAW_PATHS = frozenset(
    ("calculus-raw", "calculus-normalized", "algebra-logical")
)

#: Ordered (name, runner) pairs; the first entry is the reference semantics.
PATHS: tuple[tuple[str, Callable[[str, Mapping[str, Any], Database], Any]], ...] = (
    ("calculus-raw", _path_calculus_raw),
    ("calculus-normalized", _path_calculus_normalized),
    ("algebra-logical", _path_algebra_logical),
    ("pipeline-default", _pipeline_path()),
    # compiled_exprs=True is the default, so pipeline-default runs the
    # expression codegen; this path pins the interpreted-expression engine
    # against it, making compiled-vs-interpreted a differential axis.
    ("pipeline-interpreted-exprs", _pipeline_path(compiled_exprs=False)),
    ("pipeline-row-exec", _pipeline_path(batched_exec=False)),
    ("pipeline-batched-exec", _pipeline_path(batch_size=7)),
    ("pipeline-nl-joins", _pipeline_path(hash_joins=False)),
    ("pipeline-no-index", _pipeline_path(index_scans=False)),
    ("pipeline-merge-joins", _pipeline_path(merge_joins=True)),
    (
        "pipeline-no-opt",
        _pipeline_path(simplify=False, algebraic=False, reorder_joins=False),
    ),
    # Exchange-style partitioned execution (repro.engine.exchange): the
    # driving scan splits across 3 workers and the root merges in
    # partition order.  Differential against serial, this pins the whole
    # decomposition/merge layer — plans that do not partition silently run
    # serial, which is itself part of the contract under test.
    ("pipeline-parallel-exec", _pipeline_path(parallel=True, num_workers=3)),
    ("pipeline-cached", _path_pipeline_cached),
    ("param-roundtrip", _path_param_roundtrip),
    # An independently implemented executor: query shredding over stdlib
    # sqlite3.  May *skip* (typed BackendUnsupportedError) on databases it
    # cannot flatten.  The first path pins the stitch-in-Python lowering
    # (pushdown off); the second runs the GROUP-BY-pushdown fast path, so
    # the two SQL lowerings are a differential axis of their own.
    ("sqlite-shredded", _pipeline_path(backend="sqlite", sqlite_pushdown=False)),
    ("sqlite-shredded-pushdown", _pipeline_path(backend="sqlite")),
    ("sqlite-shredded-cached-plan", _path_sqlite_cached),
)


def run_all_paths(
    source: str, params: Mapping[str, Any], db: Database
) -> list[PathOutcome]:
    """Execute *source* with *params* through every path in :data:`PATHS`."""
    outcomes = []
    for name, runner in PATHS:
        try:
            outcomes.append(PathOutcome(name, True, runner(source, params, db)))
        except Exception as exc:  # noqa: BLE001 - errors are data here
            # Pipeline paths promise structured errors; a raw builtin
            # exception leaking out of run_oql is a finding in itself.
            structured = name in RAW_PATHS or isinstance(exc, QueryError)
            outcomes.append(
                PathOutcome(
                    name,
                    False,
                    error=f"{type(exc).__name__}: {exc}",
                    structured=structured,
                    skipped=isinstance(exc, BackendUnsupportedError),
                )
            )
    return outcomes


def check_sample(
    source: str, params: Mapping[str, Any], db: Database
) -> OracleVerdict:
    """Run every path and judge agreement.

    All paths succeeding with equal results, or all paths failing, is
    agreement; anything else is a disagreement.  A pipeline path that
    fails with a *raw* (non-:class:`~repro.errors.QueryError`) exception
    is always a disagreement, even when every path failed: the pipeline's
    error contract is part of what the oracle checks.
    """
    outcomes = run_all_paths(source, params, db)
    reference = outcomes[0]
    agreed = all(
        outcome.skipped or _outcomes_match(reference, outcome)
        for outcome in outcomes[1:]
    ) and all(outcome.structured for outcome in outcomes)
    return OracleVerdict(agreed, outcomes)
