"""Delta-debugging minimization of fuzzer-found disagreements.

A raw fuzz failure is usually a page-long query over nine-object extents;
the interesting part is almost always three tokens and two objects.  The
shrinker takes *any* interestingness predicate (by default: "the
differential oracle still disagrees") and greedily minimizes

* the **query** — by structural reductions on the OQL parse tree: dropping
  WHERE/HAVING/DISTINCT, dropping surplus generators, replacing a
  conjunction by either conjunct, promoting any subquery to the top level,
  and replacing parameters with their bound literals;
* the **parameters** — unreferenced bindings are discarded;
* the **database** — classic ddmin over every extent's object list,
  preserving the extent's collection kind and its indexes.

Candidates that fail to parse, translate, or stay interesting are simply
rejected, so the reductions do not need to be semantics-preserving — only
*plausible*.  The loop repeats until no candidate makes progress, which
gives a 1-minimal result in the ddmin sense.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Callable, Iterator, Mapping

from repro.data.database import Database
from repro.data.values import BagValue, ListValue, is_null
from repro.oql import ast
from repro.oql.parser import parse
from repro.oql.pretty import unparse
from repro.testing.oracle import check_sample

Interesting = Callable[[str, dict[str, Any], Database], bool]


def default_interesting(source: str, params: dict[str, Any], db: Database) -> bool:
    """The standard predicate: the oracle still finds a disagreement."""
    try:
        return not check_sample(source, params, db).agreed
    except Exception:  # pragma: no cover - oracle itself must not raise
        return False


# ---------------------------------------------------------------------------
# Query reductions
# ---------------------------------------------------------------------------


def _node_reductions(node: ast.Node) -> Iterator[ast.Node]:
    """Smaller candidate replacements for a single AST node."""
    if isinstance(node, ast.Select):
        if node.where is not None:
            yield dataclasses.replace(node, where=None)
        if node.having is not None:
            yield dataclasses.replace(node, having=None)
        if node.distinct:
            yield dataclasses.replace(node, distinct=False)
        if node.group_by:
            yield dataclasses.replace(node, group_by=(), having=None)
        if len(node.from_clauses) > 1:
            for index in range(len(node.from_clauses)):
                kept = tuple(
                    clause
                    for position, clause in enumerate(node.from_clauses)
                    if position != index
                )
                yield dataclasses.replace(node, from_clauses=kept)
        if len(node.items) > 1:
            for index in range(len(node.items)):
                kept = tuple(
                    item
                    for position, item in enumerate(node.items)
                    if position != index
                )
                yield dataclasses.replace(node, items=kept)
    elif isinstance(node, ast.BinaryOp) and node.op in ("and", "or"):
        yield node.left
        yield node.right
    elif isinstance(node, ast.UnaryOp) and node.op == "not":
        yield node.operand
    elif isinstance(node, ast.SetOp):
        yield node.left
        yield node.right


def _children(node: ast.Node) -> Iterator[tuple[str, Any]]:
    for field in dataclasses.fields(node):
        yield field.name, getattr(node, field.name)


def _replacements(node: ast.Node) -> Iterator[ast.Node]:
    """All single-step reductions of *node*, anywhere in its tree."""
    yield from _node_reductions(node)
    for name, value in _children(node):
        if isinstance(value, ast.Node):
            for reduced in _replacements(value):
                yield dataclasses.replace(node, **{name: reduced})
        elif isinstance(value, tuple):
            for index, item in enumerate(value):
                if not isinstance(item, ast.Node):
                    continue
                for reduced in _replacements(item):
                    rebuilt = value[:index] + (reduced,) + value[index + 1 :]
                    yield dataclasses.replace(node, **{name: rebuilt})


def _subselects(node: ast.Node) -> Iterator[ast.Select]:
    """Every Select node anywhere inside *node* (excluding the root)."""
    for _, value in _children(node):
        items = value if isinstance(value, tuple) else (value,)
        for item in items:
            if isinstance(item, ast.Node):
                if isinstance(item, ast.Select):
                    yield item
                yield from _subselects(item)


def _inline_params(source: str, params: Mapping[str, Any]) -> str | None:
    """Replace every ``:name`` with its literal; None for NULL bindings
    (``nil`` would be a different query shape, let the oracle keep those)."""
    if not params:
        return None

    def render(match: re.Match[str]) -> str:
        value = params[match.group(1)]
        if isinstance(value, str):
            return f'"{value}"'
        return repr(value)

    if any(is_null(value) for value in params.values()):
        return None
    if any(isinstance(value, (list, tuple, set)) for value in params.values()):
        return None
    try:
        return re.sub(r":(\w+)", render, source)
    except KeyError:
        return None


def _query_candidates(source: str, params: dict[str, Any]) -> Iterator[str]:
    try:
        tree = parse(source)
    except Exception:
        return
    inlined = _inline_params(source, params)
    if inlined is not None:
        yield inlined
    for subselect in _subselects(tree):
        yield unparse(subselect)
    for reduced in _replacements(tree):
        yield unparse(reduced)


def _prune_params(source: str, params: dict[str, Any]) -> dict[str, Any]:
    used = set(re.findall(r":(\w+)", source))
    return {name: value for name, value in params.items() if name in used}


# ---------------------------------------------------------------------------
# Database reductions (ddmin over each extent)
# ---------------------------------------------------------------------------


def _extent_kind(db: Database, name: str) -> str:
    value = db.extent(name)
    if isinstance(value, BagValue):
        return "bag"
    if isinstance(value, ListValue):
        return "list"
    return "set"


def rebuild_database(db: Database, contents: Mapping[str, list[Any]]) -> Database:
    """A copy of *db* with each extent replaced by the given objects
    (collection kinds and indexes preserved)."""
    smaller = Database(db.schema)
    for name in db.extent_names():
        smaller.add_extent(name, list(contents[name]), kind=_extent_kind(db, name))
    for name in db.extent_names():
        for attr in db.indexed_attributes(name):
            smaller.create_index(name, attr)
    return smaller


def _shrink_extents(
    source: str, params: dict[str, Any], db: Database, interesting: Interesting
) -> Database:
    contents = {name: list(db.extent(name).elements()) for name in db.extent_names()}

    def still_interesting(candidate: Mapping[str, list[Any]]) -> bool:
        return interesting(source, params, rebuild_database(db, candidate))

    for name in db.extent_names():
        objects = contents[name]
        chunk = max(len(objects) // 2, 1)
        while len(objects) > 0:
            shrunk = False
            for start in range(0, len(objects), chunk):
                candidate = objects[:start] + objects[start + chunk :]
                if still_interesting({**contents, name: candidate}):
                    objects = candidate
                    contents[name] = objects
                    shrunk = True
                    break
            if not shrunk:
                if chunk == 1:
                    break
                chunk = max(chunk // 2, 1)
    return rebuild_database(db, contents)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def shrink(
    source: str,
    params: dict[str, Any],
    db: Database,
    interesting: Interesting = default_interesting,
    max_rounds: int = 20,
) -> tuple[str, dict[str, Any], Database]:
    """Minimize a failing (query, params, database) triple.

    The input must itself be interesting; the result is the smallest triple
    the reductions can reach that still satisfies *interesting*.
    """
    for _ in range(max_rounds):
        progress = False
        for candidate in _query_candidates(source, params):
            if len(candidate) >= len(source):
                continue
            candidate_params = _prune_params(candidate, params)
            if interesting(candidate, candidate_params, db):
                source, params = candidate, candidate_params
                progress = True
                break
        if not progress:
            break
    db = _shrink_extents(source, params, db, interesting)
    return source, params, db
