"""The physical execution engine: iterator-model operators, the physical
planner (hash vs. nested-loop algorithm assignment, index access paths),
the cost model, the per-query governor (timeouts, budgets, cancellation),
and the measured executor."""

from repro.engine.cost import CostModel
from repro.engine.executor import ExecutionStats, run_with_stats
from repro.engine.governor import CancelToken, Governor, estimate_bytes
from repro.engine.planner import PlannerOptions, execute, plan_physical

__all__ = [
    "CancelToken",
    "CostModel",
    "ExecutionStats",
    "Governor",
    "PlannerOptions",
    "estimate_bytes",
    "execute",
    "plan_physical",
    "run_with_stats",
]
