"""Expression compilation: calculus terms → native Python closures.

The physical operators evaluate a handful of :class:`~repro.calculus.terms.
Term` trees — select predicates, map heads, join keys, unnest paths, reduce
accumulators — once **per row**.  Walking the AST through
:class:`~repro.calculus.evaluator.Evaluator` for every row pays a large
constant factor: a type-dispatch dictionary lookup, a bound-method call, two
``isinstance`` NULL tests, and (for binary operations) a chain of string
comparisons in ``apply_binop``, all per node per row.

This module removes that factor by *lowering* each term, in three tiers:

1. **Source generation** (the fast tier): the common row-level node kinds —
   variables, constants, parameters, projections, arithmetic / comparison /
   boolean operators, ``if``, ``let``, record construction — are emitted as
   straight-line Python source with explicit NULL-propagation branches, then
   ``compile()``d into one native function per term.  Evaluating such a term
   is plain bytecode: no per-node calls at all.
2. **Nested-closure composition** (the portable tier): node kinds outside
   the source subset (lambdas, monoid operations) become one specialized
   closure each, calling their children's closures directly, with the
   operator and NULL checks resolved at compile time.  Source-tier code
   reaches a closure-tier subtree through a single embedded call.
3. **Batch kernels** (the vectorized tier): the same source-tier body
   wrapped in one generated ``while`` loop over a columnar
   :class:`~repro.engine.batch.Chunk` — one native call evaluates the term
   for every row of a batch, reading hoisted column locals instead of an
   env dict per row.  Kernels never raise mid-batch: an exception at row
   *t* is returned as ``(values so far, t, error)`` so the caller can
   deliver the preceding rows first and replay the error lazily, exactly
   where the row path would have raised it (see :class:`CompiledKernel`).

Either tier degrades per node, never per term: a node kind neither tier
knows (a residual :class:`~repro.calculus.terms.Comprehension`) compiles
into a call into the reference interpreter for *that subtree* only.

Three properties are load-bearing:

* **Semantic equivalence.**  Every closure reproduces the interpreter's
  behaviour exactly, including three-valued NULL logic (strict NULL
  propagation through arithmetic and comparisons, short-circuiting
  ``and``/``or`` that yield NULL only when the short-circuit value is not
  reached, ``if`` taking the else-branch on a NULL condition), object
  identity equality via :func:`~repro.data.values.identity_key`, and the
  interpreter's error behaviour (same exception classes raised at
  *evaluation* time, never eagerly at compile time).  The differential fuzz
  oracle executes every query through both engines and fails on any
  divergence (see ``repro.testing.oracle``).
* **Per-node fallback.**  A node kind the compiler does not know (a future
  extension term, a residual :class:`~repro.calculus.terms.Comprehension`
  that survived unnesting) compiles into a closure that hands *that subtree*
  to the interpreter; its siblings and ancestors stay compiled.  Compilation
  therefore never fails — it degrades.
* **Observability.**  :class:`CompiledExpr` counts compiled vs. fallback
  nodes, so EXPLAIN ANALYZE can annotate each physical operator with
  whether its expressions run ``compiled``, ``mixed``, or ``interpreted``.

The compiler is wired into the engine through ``PlannerOptions.
compiled_exprs`` (default on; ``--no-compile`` from the CLI) and cached per
plan on :class:`~repro.core.pipeline.CompiledQuery`, so the plan cache
amortizes codegen along with planning.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping

from repro.calculus.evaluator import (
    DivisionByZeroError,
    EvaluationError,
    Evaluator,
    UnboundParameterError,
)
from repro.calculus.monoids import CollectionMonoid
from repro.calculus.terms import (
    Apply,
    BinOp,
    Const,
    Extent,
    If,
    IsNull,
    Lambda,
    Let,
    Merge,
    Not,
    Null,
    Param,
    Proj,
    RecordCons,
    Singleton,
    Term,
    Var,
    Zero,
    free_vars,
)
from repro.data.values import NULL, Record, identity_key

Env = Mapping[str, Any]
EvalFn = Callable[[dict], Any]
#: A batch kernel: ``fn(cols, n) -> (values, t, error)``.  *cols* maps
#: column names to value lists (all at least *n* long); rows ``[0, t)``
#: evaluated successfully into *values*, and *error* is the exception row
#: *t* raised (None when ``t == n``).  Kernels never raise themselves.
KernelFn = Callable[[Mapping[str, list], int], "tuple[list, int, Any]"]

#: Types whose ``==`` is plain value equality — the fast path that skips
#: :func:`identity_key` (which returns scalars unchanged anyway).
_SCALARS = frozenset((bool, int, float, str))


class CompiledExpr:
    """A term lowered to a closure, plus how much of it actually compiled.

    ``fn(env)`` evaluates the term in *env* (a plain dict of variable
    bindings).  ``compiled_nodes`` / ``fallback_nodes`` count the term's AST
    nodes that were lowered natively vs. delegated to the interpreter;
    ``mode`` summarizes them for EXPLAIN ANALYZE.
    """

    __slots__ = ("fn", "term", "compiled_nodes", "fallback_nodes")

    def __init__(
        self, fn: EvalFn, term: Term, compiled_nodes: int, fallback_nodes: int
    ):
        self.fn = fn
        self.term = term
        self.compiled_nodes = compiled_nodes
        self.fallback_nodes = fallback_nodes

    @property
    def mode(self) -> str:
        """``compiled`` | ``mixed`` | ``interpreted``."""
        if self.fallback_nodes == 0:
            return "compiled"
        if self.compiled_nodes == 0:
            return "interpreted"
        return "mixed"

    def __call__(self, env: dict) -> Any:
        return self.fn(env)

    def __repr__(self) -> str:
        return (
            f"CompiledExpr({self.mode}, {self.compiled_nodes} compiled, "
            f"{self.fallback_nodes} interpreted)"
        )


class CompiledKernel:
    """A term lowered to a batch-level loop (the vectorized third tier).

    ``fn(cols, n)`` evaluates the term over rows ``0..n-1`` of a columnar
    chunk and returns ``(values, t, error)``: the results for rows
    ``[0, t)``, plus the exception row *t* raised — or ``(values, n,
    None)`` when every row succeeded.  Capturing instead of raising is the
    contract that lets batch operators deliver the pre-error rows to their
    consumer before replaying the failure, preserving the row path's lazy
    short-circuit semantics.

    ``trivial_true`` marks the predicate kernel for ``Const(True)`` (the
    planner's "no predicate" marker) so operators can skip the kernel call
    — and the ``[True] * n`` allocation — entirely.
    """

    __slots__ = ("fn", "term", "trivial_true")

    def __init__(self, fn: KernelFn, term: Term, trivial_true: bool = False):
        self.fn = fn
        self.term = term
        self.trivial_true = trivial_true

    def __repr__(self) -> str:
        suffix = ", trivial" if self.trivial_true else ""
        return f"CompiledKernel({self.term}{suffix})"


class _Counter:
    """Mutable compile-time tally threaded through the recursive lowering."""

    __slots__ = ("compiled", "fallback")

    def __init__(self) -> None:
        self.compiled = 0
        self.fallback = 0


class ExprRuntime(threading.local):
    """Per-execution bindings that compiled closures read at evaluation time.

    Closures must be reusable across executions (they are cached on
    :class:`~repro.core.pipeline.CompiledQuery`), so anything that varies per
    execution — the prepared-statement parameter values, the database, the
    fallback interpreter — is reached through this one mutable cell, rebound
    by :meth:`ExprCompiler.activate` before each execution plans.

    The cell is a ``threading.local``: a ``CompiledQuery`` shared by a
    thread pool has each thread activate and read *its own* bindings, so
    concurrent executions with different parameters cannot clobber each
    other mid-query.  (``__init__`` runs once per thread on first access,
    giving every thread the empty defaults until it activates.)
    """

    def __init__(self) -> None:
        self.params: Mapping[str, Any] = {}
        self.database: Any = None
        self.evaluator: Evaluator | None = None


def _memo_key(kind: str, term: Term) -> tuple:
    """A memo key that never conflates equal-but-differently-typed constants.

    Terms are frozen dataclasses, so structural equality is the natural memo
    relation — except that Python compares ``bool``/``int``/``float`` across
    types: ``Const(True) == Const(1) == Const(1.0)`` (with equal hashes).
    Memoizing on the term alone would therefore serve the closure for
    ``Const(1)`` to a ``Const(True)`` head (a fuzzer-found bug: a ``some``
    accumulator then yields ``1``, which is not a boolean to a predicate).
    Equal terms always have the same tree shape, so a traversal-ordered
    tuple of the constant value *types* disambiguates fully.
    """
    const_types: list[type] = []
    stack = [term]
    while stack:
        node = stack.pop()
        if type(node) is Const:
            const_types.append(type(node.value))
        stack.extend(node.children())
    return (kind, term, tuple(const_types))


class ExprCompiler:
    """Lowers terms to closures; one instance per compiled query (or plan).

    Compiled closures are memoized structurally (terms are frozen
    dataclasses), so re-planning the same query — every execution replans,
    and the planner reconstructs e.g. residual predicates afresh — reuses
    the closures from the first execution instead of re-lowering.  The memo
    key is :func:`_memo_key`, not the bare term (see there).
    """

    def __init__(self) -> None:
        self.runtime = ExprRuntime()
        #: kinds "expr"/"pred" hold CompiledExpr; "kexpr"/"kpred" hold the
        #: batch-tier CompiledKernel for the same term.
        self._memo: dict[tuple, Any] = {}
        #: Identity front-cache over the structural memo: every execution
        #: replans from the same cached logical plan, so operators pass the
        #: very same Term objects — a ``(kind, id)`` hit skips the
        #: tree-walking :func:`_memo_key`.  The stored term keeps the id
        #: alive; an ``is`` check guards against id reuse.
        self._by_id: dict[tuple[str, int], tuple[Term, Any]] = {}

    def _id_hit(self, kind: str, term: Term) -> Any:
        hit = self._by_id.get((kind, id(term)))
        if hit is not None and hit[0] is term:
            return hit[1]
        return None

    def activate(self, evaluator: Evaluator, database: Any) -> None:
        """Point the runtime at one execution's interpreter and database."""
        runtime = self.runtime
        runtime.params = evaluator.params
        runtime.database = database
        runtime.evaluator = evaluator

    # -- entry points -------------------------------------------------------

    def compile(self, term: Term) -> CompiledExpr:
        """Lower *term* to a value-producing function (source tier first)."""
        hit = self._id_hit("expr", term)
        if hit is not None:
            return hit
        key = _memo_key("expr", term)
        memoized = self._memo.get(key)
        if memoized is not None:
            self._by_id[("expr", id(term))] = (term, memoized)
            return memoized
        counter = _Counter()
        try:
            fn = _SourceEmitter(self, counter).function(term, predicate=False)
        except Exception:  # noqa: BLE001 - degrade to the closure tier
            counter = _Counter()
            fn = self._compile(term, counter)
        compiled = CompiledExpr(fn, term, counter.compiled, counter.fallback)
        self._memo[key] = compiled
        self._by_id[("expr", id(term))] = (term, compiled)
        return compiled

    def compile_predicate(self, term: Term) -> CompiledExpr:
        """Lower *term* to a strict-boolean function (NULL counts as False).

        The result's ``fn`` returns only ``True`` or ``False`` — exactly
        ``_Context.holds``: a NULL predicate fails the filter, anything
        non-boolean raises :class:`EvaluationError`.
        """
        hit = self._id_hit("pred", term)
        if hit is not None:
            return hit
        key = _memo_key("pred", term)
        memoized = self._memo.get(key)
        if memoized is not None:
            self._by_id[("pred", id(term))] = (term, memoized)
            return memoized
        if isinstance(term, Const) and term.value is True:
            # The planner's "no residual predicate" marker; skip the call.
            compiled = CompiledExpr(_always_true, term, 1, 0)
            self._memo[key] = compiled
            return compiled
        counter = _Counter()
        try:
            fn = _SourceEmitter(self, counter).function(term, predicate=True)
        except Exception:  # noqa: BLE001 - degrade to the closure tier
            counter = _Counter()
            value = self._compile(term, counter)

            def fn(env: dict) -> bool:
                result = value(env)
                if result is True:
                    return True
                if result is False or result is NULL:
                    return False
                raise EvaluationError(
                    "predicate did not evaluate to a boolean"
                )

        compiled = CompiledExpr(fn, term, counter.compiled, counter.fallback)
        self._memo[key] = compiled
        self._by_id[("pred", id(term))] = (term, compiled)
        return compiled

    def compile_kernel(self, term: Term) -> CompiledKernel:
        """Lower *term* to a value-producing batch kernel (tier 3).

        Falls back to a generated loop over the row closure when the kernel
        emitter cannot handle the term — the batch path never fails to
        plan, it just loses the column-hoisting win for that expression.
        """
        hit = self._id_hit("kexpr", term)
        if hit is not None:
            return hit
        key = _memo_key("kexpr", term)
        memoized = self._memo.get(key)
        if memoized is not None:
            self._by_id[("kexpr", id(term))] = (term, memoized)
            return memoized
        try:
            fn = _KernelEmitter(self, _Counter()).kernel(term, predicate=False)
        except Exception:  # noqa: BLE001 - degrade to a row-closure loop
            fn = _loop_kernel(self.compile(term).fn)
        kernel = CompiledKernel(fn, term)
        self._memo[key] = kernel
        self._by_id[("kexpr", id(term))] = (term, kernel)
        return kernel

    def compile_predicate_kernel(self, term: Term) -> CompiledKernel:
        """Lower *term* to a strict-boolean batch kernel: each result is
        ``True`` or ``False`` (NULL filters as False), matching
        :meth:`compile_predicate` row for row."""
        hit = self._id_hit("kpred", term)
        if hit is not None:
            return hit
        key = _memo_key("kpred", term)
        memoized = self._memo.get(key)
        if memoized is not None:
            self._by_id[("kpred", id(term))] = (term, memoized)
            return memoized
        if isinstance(term, Const) and term.value is True:
            kernel = CompiledKernel(_true_kernel, term, trivial_true=True)
            self._memo[key] = kernel
            self._by_id[("kpred", id(term))] = (term, kernel)
            return kernel
        try:
            fn = _KernelEmitter(self, _Counter()).kernel(term, predicate=True)
        except Exception:  # noqa: BLE001 - degrade to a row-closure loop
            fn = _loop_kernel(self.compile_predicate(term).fn)
        kernel = CompiledKernel(fn, term)
        self._memo[key] = kernel
        self._by_id[("kpred", id(term))] = (term, kernel)
        return kernel

    # -- recursive lowering -------------------------------------------------

    def _compile(self, term: Term, counter: _Counter) -> EvalFn:
        handler = _HANDLERS.get(type(term))
        if handler is not None:
            try:
                fn = handler(self, term, counter)
            except Exception:  # noqa: BLE001 - degrade, never fail to plan
                return self._fallback(term, counter)
            counter.compiled += 1
            return fn
        return self._fallback(term, counter)

    def _fallback(self, term: Term, counter: _Counter) -> EvalFn:
        """Hand this subtree to the interpreter (siblings stay compiled)."""
        counter.fallback += 1
        runtime = self.runtime

        def run(env: dict) -> Any:
            # _eval (not evaluate): skips the defensive env copy — the
            # interpreter never mutates the environment it is handed.
            return runtime.evaluator._eval(term, env)  # noqa: SLF001

        return run

    # -- node handlers ------------------------------------------------------

    def _compile_var(self, term: Var, counter: _Counter) -> EvalFn:
        name = term.name

        def run(env: dict) -> Any:
            try:
                return env[name]
            except KeyError:
                raise EvaluationError(
                    f"unbound variable {name!r}; in scope: {sorted(env)}"
                ) from None

        return run

    def _compile_const(self, term: Const, counter: _Counter) -> EvalFn:
        value = term.value
        return lambda env: value

    def _compile_null(self, term: Null, counter: _Counter) -> EvalFn:
        return lambda env: NULL

    def _compile_param(self, term: Param, counter: _Counter) -> EvalFn:
        # Read through the runtime at evaluation time: the binding table
        # changes per execution, and an unbound parameter must raise when
        # evaluated, exactly like the interpreter.
        runtime = self.runtime
        name = term.name

        def run(env: dict) -> Any:
            try:
                return runtime.params[name]
            except KeyError:
                raise UnboundParameterError(
                    f"parameter :{name} has no bound value; bound: "
                    f"{sorted(runtime.params)}"
                ) from None

        return run

    def _compile_extent(self, term: Extent, counter: _Counter) -> EvalFn:
        runtime = self.runtime
        name = term.name
        return lambda env: runtime.database.extent(name)

    def _compile_record(self, term: RecordCons, counter: _Counter) -> EvalFn:
        parts = tuple(
            (name, self._compile(expr, counter)) for name, expr in term.fields
        )

        def run(env: dict) -> Any:
            return Record({name: fn(env) for name, fn in parts})

        return run

    def _compile_proj(self, term: Proj, counter: _Counter) -> EvalFn:
        base = self._compile(term.expr, counter)
        attr = term.attr

        def run(env: dict) -> Any:
            value = base(env)
            if isinstance(value, Record):
                try:
                    return value._fields[attr]  # noqa: SLF001 - hot path
                except KeyError:
                    raise KeyError(
                        f"record has no attribute {attr!r}; attributes are "
                        f"{sorted(value._fields)}"  # noqa: SLF001
                    ) from None
            if value is NULL:
                return NULL
            raise EvaluationError(
                f"projection .{attr} applied to non-record "
                f"{type(value).__name__}"
            )

        return run

    def _compile_lambda(self, term: Lambda, counter: _Counter) -> EvalFn:
        body = self._compile(term.body, counter)
        param = term.param

        def run(env: dict) -> Any:
            captured = dict(env)

            def closure(arg: Any) -> Any:
                inner = dict(captured)
                inner[param] = arg
                return body(inner)

            return closure

        return run

    def _compile_apply(self, term: Apply, counter: _Counter) -> EvalFn:
        fn_c = self._compile(term.fn, counter)
        arg_c = self._compile(term.arg, counter)

        def run(env: dict) -> Any:
            fn = fn_c(env)
            if not callable(fn):
                raise EvaluationError("application of a non-function value")
            return fn(arg_c(env))

        return run

    def _compile_if(self, term: If, counter: _Counter) -> EvalFn:
        cond = self._compile(term.cond, counter)
        then = self._compile(term.then, counter)
        orelse = self._compile(term.orelse, counter)

        def run(env: dict) -> Any:
            value = cond(env)
            if value is True:
                return then(env)
            if value is False or value is NULL:
                # NULL condition takes the else branch (interpreter policy).
                return orelse(env)
            raise EvaluationError("if condition is not a boolean")

        return run

    def _compile_let(self, term: Let, counter: _Counter) -> EvalFn:
        value_c = self._compile(term.value, counter)
        body = self._compile(term.body, counter)
        name = term.var

        def run(env: dict) -> Any:
            inner = dict(env)
            inner[name] = value_c(env)
            return body(inner)

        return run

    def _compile_binop(self, term: BinOp, counter: _Counter) -> EvalFn:
        left = self._compile(term.left, counter)
        right = self._compile(term.right, counter)
        return _BINOPS[term.op](left, right)

    def _compile_not(self, term: Not, counter: _Counter) -> EvalFn:
        value = self._compile(term.expr, counter)

        def run(env: dict) -> Any:
            result = value(env)
            if result is True:
                return False
            if result is False:
                return True
            if result is NULL:
                return NULL
            raise EvaluationError("'not' applied to a non-boolean")

        return run

    def _compile_isnull(self, term: IsNull, counter: _Counter) -> EvalFn:
        value = self._compile(term.expr, counter)
        return lambda env: value(env) is NULL

    def _compile_zero(self, term: Zero, counter: _Counter) -> EvalFn:
        zero = term.monoid.zero
        return lambda env: zero

    def _compile_singleton(self, term: Singleton, counter: _Counter) -> EvalFn:
        monoid = term.monoid
        if not isinstance(monoid, CollectionMonoid):
            # Ill-formed; raise at evaluation time like the interpreter.
            name = monoid.name

            def bad(env: dict) -> Any:
                raise EvaluationError(f"singleton of primitive monoid {name}")

            return bad
        unit = monoid.unit
        value = self._compile(term.expr, counter)
        return lambda env: unit(value(env))

    def _compile_merge(self, term: Merge, counter: _Counter) -> EvalFn:
        merge = term.monoid.merge
        left = self._compile(term.left, counter)
        right = self._compile(term.right, counter)
        return lambda env: merge(left(env), right(env))

    # NOTE: Comprehension deliberately has no handler.  Residual
    # comprehensions (queries compiled with unnesting partially off, nested
    # heads the unnester leaves in place) fall back to the interpreter —
    # loops are the algebra's job, and the fallback path stays exercised.


def _always_true(env: dict) -> bool:
    return True


def _true_kernel(cols: Mapping[str, list], n: int) -> tuple[list, int, Any]:
    return [True] * n, n, None


def _loop_kernel(row_fn: EvalFn) -> KernelFn:
    """Batch adapter over a row closure: one env dict per row.

    The fallback when the kernel emitter cannot lower a term (or the term
    compiled into something the source tier rejects).  Still honours the
    kernel contract — an exception at row *i* is captured as a truncation
    point, never raised."""

    def kernel(cols: Mapping[str, list], n: int) -> tuple[list, int, Any]:
        out: list = []
        append = out.append
        items = list(cols.items())
        try:
            for i in range(n):
                append(row_fn({name: col[i] for name, col in items}))
        except Exception as exc:  # noqa: BLE001 - part of the contract
            return out, len(out), exc
        return out, n, None

    return kernel


# ---------------------------------------------------------------------------
# Binary operators: one specialized closure-maker per operator, with the
# interpreter's strict NULL propagation resolved at compile time.
# ---------------------------------------------------------------------------


def _make_and(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        if a is False:
            return False
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        return a and b

    return run


def _make_or(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        if a is True:
            return True
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        return a or b

    return run


def _binop_type_error(op: str, a, b, exc: TypeError) -> EvaluationError:
    """The structured error for an ill-typed operator application.

    Mirrors :func:`repro.calculus.evaluator.apply_binop` so the compiled
    tiers and the interpreter fail identically (the differential oracle
    pins this)."""
    return EvaluationError(
        f"operator {op!r} applied to incompatible values "
        f"{type(a).__name__} and {type(b).__name__}: {exc}"
    )


def _make_add(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        try:
            return a + b
        except TypeError as exc:
            raise _binop_type_error('+', a, b, exc) from exc

    return run


def _make_sub(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        try:
            return a - b
        except TypeError as exc:
            raise _binop_type_error('-', a, b, exc) from exc

    return run


def _make_mul(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        try:
            return a * b
        except TypeError as exc:
            raise _binop_type_error('*', a, b, exc) from exc

    return run


def _make_div(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        if b == 0:
            raise DivisionByZeroError("division by zero")
        try:
            return a / b
        except TypeError as exc:
            raise _binop_type_error("/", a, b, exc) from exc

    return run


def _make_mod(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        if b == 0:
            raise DivisionByZeroError("modulo by zero")
        try:
            return a % b
        except TypeError as exc:
            raise _binop_type_error("%", a, b, exc) from exc

    return run


def _make_eq(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        if a.__class__ in _SCALARS and b.__class__ in _SCALARS:
            return a == b
        return identity_key(a) == identity_key(b)

    return run


def _make_ne(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        if a.__class__ in _SCALARS and b.__class__ in _SCALARS:
            return a != b
        return identity_key(a) != identity_key(b)

    return run


def _make_lt(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        try:
            return a < b
        except TypeError as exc:
            raise _binop_type_error('<', a, b, exc) from exc

    return run


def _make_le(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        try:
            return a <= b
        except TypeError as exc:
            raise _binop_type_error('<=', a, b, exc) from exc

    return run


def _make_gt(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        try:
            return a > b
        except TypeError as exc:
            raise _binop_type_error('>', a, b, exc) from exc

    return run


def _make_ge(left: EvalFn, right: EvalFn) -> EvalFn:
    def run(env: dict) -> Any:
        a = left(env)
        b = right(env)
        if a is NULL or b is NULL:
            return NULL
        try:
            return a >= b
        except TypeError as exc:
            raise _binop_type_error('>=', a, b, exc) from exc

    return run


_BINOPS: dict[str, Callable[[EvalFn, EvalFn], EvalFn]] = {
    "and": _make_and,
    "or": _make_or,
    "+": _make_add,
    "-": _make_sub,
    "*": _make_mul,
    "/": _make_div,
    "%": _make_mod,
    "==": _make_eq,
    "!=": _make_ne,
    "<": _make_lt,
    "<=": _make_le,
    ">": _make_gt,
    ">=": _make_ge,
}

# ---------------------------------------------------------------------------
# Source tier: emit a term as straight-line Python and compile() it, so the
# per-row cost is plain bytecode with no per-node calls.  NULL propagation
# becomes explicit branches; error paths (unbound variable, bad projection)
# reproduce the interpreter's exceptions through tiny out-of-line helpers.
# Node kinds outside the source subset embed a single call to a closure-tier
# (or interpreter-fallback) evaluation of that subtree.
# ---------------------------------------------------------------------------


def _var_miss(name: str, env: dict) -> None:
    raise EvaluationError(
        f"unbound variable {name!r}; in scope: {sorted(env)}"
    )


def _param_miss(name: str, params: Mapping[str, Any]) -> None:
    raise UnboundParameterError(
        f"parameter :{name} has no bound value; bound: {sorted(params)}"
    )


def _proj_slow(value: Any, attr: str) -> Any:
    """The non-fast-path projection: NULL, Record subclass, or type error."""
    if isinstance(value, Record):
        return value[attr]  # formats the missing-attribute KeyError
    if value is NULL:
        return NULL
    raise EvaluationError(
        f"projection .{attr} applied to non-record {type(value).__name__}"
    )


def _pred_miss() -> None:
    raise EvaluationError("predicate did not evaluate to a boolean")


def _if_miss() -> None:
    raise EvaluationError("if condition is not a boolean")


def _not_miss() -> None:
    raise EvaluationError("'not' applied to a non-boolean")


class _SourceEmitter:
    """Emits one term as the body of a generated ``def _fn(env):``.

    ``gen`` returns, per node, the *expression string* (a temporary name or
    an inlined literal) holding the node's value, appending any statements
    it needs at the current indentation depth.  Sub-expressions that the
    source tier does not cover are bound into the function's namespace as
    closure-tier evaluators and invoked with the current environment.
    """

    def __init__(self, compiler: ExprCompiler, counter: _Counter):
        self.compiler = compiler
        self.counter = counter
        self.lines: list[str] = []
        self.n = 0
        # The function's globals.  ``rt`` is the compiler's ExprRuntime:
        # activate() mutates it in place, so generated code reading
        # ``rt.params`` / ``rt.database`` always sees the live execution.
        self.ns: dict[str, Any] = {
            "NULL": NULL,
            "Record": Record,
            "EvaluationError": EvaluationError,
            "DivisionByZeroError": DivisionByZeroError,
            "_binop_type_error": _binop_type_error,
            "identity_key": identity_key,
            "_SCALARS": _SCALARS,
            "_var_miss": _var_miss,
            "_param_miss": _param_miss,
            "_proj_slow": _proj_slow,
            "_pred_miss": _pred_miss,
            "_if_miss": _if_miss,
            "_not_miss": _not_miss,
            "rt": compiler.runtime,
        }

    def function(self, term: Term, predicate: bool) -> EvalFn:
        result = self.gen(term, "env", 1)
        if predicate:
            self.line(1, f"if {result} is True:")
            self.line(2, "return True")
            self.line(1, f"if {result} is False or {result} is NULL:")
            self.line(2, "return False")
            self.line(1, "_pred_miss()")
        else:
            self.line(1, f"return {result}")
        source = "def _fn(env):\n" + "\n".join(self.lines) + "\n"
        code = compile(source, "<repro.engine.compile>", "exec")
        exec(code, self.ns)  # noqa: S102 - self-generated source only
        return self.ns["_fn"]

    # -- emission helpers ---------------------------------------------------

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def temp(self) -> str:
        self.n += 1
        return f"t{self.n}"

    def bind(self, prefix: str, value: Any) -> str:
        self.n += 1
        name = f"{prefix}{self.n}"
        self.ns[name] = value
        return name

    def gen(self, term: Term, env: str, depth: int) -> str:
        # Dispatch through the per-class ``handlers`` table (plain function
        # objects, no dynamic attribute lookup); _KernelEmitter swaps in its
        # own table for the nodes whose emission differs in a batch loop.
        handler = self.handlers.get(type(term))
        if handler is None:
            return self._gen_fallback(term, env, depth)
        result = handler(self, term, env, depth)
        self.counter.compiled += 1
        return result

    def _gen_fallback(self, term: Term, env: str, depth: int) -> str:
        # Outside the source subset: one call into the closure tier
        # (which itself degrades per node to the interpreter).
        sub = self.bind("s", self.compiler._compile(term, self.counter))
        out = self.temp()
        self.line(depth, f"{out} = {sub}({env})")
        return out

    # -- node emitters ------------------------------------------------------

    def _gen_var(self, term: Var, env: str, depth: int) -> str:
        out = self.temp()
        self.line(depth, "try:")
        self.line(depth + 1, f"{out} = {env}[{term.name!r}]")
        self.line(depth, "except KeyError:")
        self.line(depth + 1, f"_var_miss({term.name!r}, {env})")
        return out

    def _gen_const(self, term: Const, env: str, depth: int) -> str:
        # Bound as a namespace global, not inlined by repr: operands must be
        # names so that generated `x.__class__` / `x is NULL` stays valid
        # (a literal there is a syntax error / SyntaxWarning).
        return self.bind("c", term.value)

    def _gen_null(self, term: Null, env: str, depth: int) -> str:
        return "NULL"

    def _gen_param(self, term: Param, env: str, depth: int) -> str:
        out = self.temp()
        self.line(depth, "try:")
        self.line(depth + 1, f"{out} = rt.params[{term.name!r}]")
        self.line(depth, "except KeyError:")
        self.line(depth + 1, f"_param_miss({term.name!r}, rt.params)")
        return out

    def _gen_extent(self, term: Extent, env: str, depth: int) -> str:
        out = self.temp()
        self.line(depth, f"{out} = rt.database.extent({term.name!r})")
        return out

    def _gen_record(self, term: RecordCons, env: str, depth: int) -> str:
        parts = [
            (name, self.gen(expr, env, depth)) for name, expr in term.fields
        ]
        inner = ", ".join(f"{name!r}: {value}" for name, value in parts)
        out = self.temp()
        self.line(depth, f"{out} = Record({{{inner}}})")
        return out

    def _gen_proj(self, term: Proj, env: str, depth: int) -> str:
        base = self.gen(term.expr, env, depth)
        out = self.temp()
        self.line(depth, f"if {base}.__class__ is Record:")
        self.line(depth + 1, "try:")
        self.line(depth + 2, f"{out} = {base}._fields[{term.attr!r}]")
        self.line(depth + 1, "except KeyError:")
        self.line(depth + 2, f"_proj_slow({base}, {term.attr!r})")
        self.line(depth, "else:")
        self.line(depth + 1, f"{out} = _proj_slow({base}, {term.attr!r})")
        return out

    def _gen_if(self, term: If, env: str, depth: int) -> str:
        cond = self.gen(term.cond, env, depth)
        out = self.temp()
        self.line(depth, f"if {cond} is True:")
        then = self.gen(term.then, env, depth + 1)
        self.line(depth + 1, f"{out} = {then}")
        self.line(depth, f"elif {cond} is False or {cond} is NULL:")
        orelse = self.gen(term.orelse, env, depth + 1)
        self.line(depth + 1, f"{out} = {orelse}")
        self.line(depth, "else:")
        self.line(
            depth + 1, "raise EvaluationError('if condition is not a boolean')"
        )
        return out

    def _gen_let(self, term: Let, env: str, depth: int) -> str:
        value = self.gen(term.value, env, depth)
        self.n += 1
        inner = f"e{self.n}"
        self.line(depth, f"{inner} = dict({env})")
        self.line(depth, f"{inner}[{term.var!r}] = {value}")
        return self.gen(term.body, inner, depth)

    def _gen_not(self, term: Not, env: str, depth: int) -> str:
        value = self.gen(term.expr, env, depth)
        out = self.temp()
        self.line(depth, f"if {value} is True:")
        self.line(depth + 1, f"{out} = False")
        self.line(depth, f"elif {value} is False:")
        self.line(depth + 1, f"{out} = True")
        self.line(depth, f"elif {value} is NULL:")
        self.line(depth + 1, f"{out} = NULL")
        self.line(depth, "else:")
        self.line(
            depth + 1,
            "raise EvaluationError(\"'not' applied to a non-boolean\")",
        )
        return out

    def _gen_isnull(self, term: IsNull, env: str, depth: int) -> str:
        value = self.gen(term.expr, env, depth)
        out = self.temp()
        self.line(depth, f"{out} = {value} is NULL")
        return out

    def _gen_binop(self, term: BinOp, env: str, depth: int) -> str:
        op = term.op
        if op in ("and", "or"):
            return self._gen_shortcircuit(term, env, depth)
        if op not in _SRC_BINOPS:
            raise NotImplementedError(op)
        left = self.gen(term.left, env, depth)
        right = self.gen(term.right, env, depth)
        out = self.temp()
        self.line(depth, f"if {left} is NULL or {right} is NULL:")
        self.line(depth + 1, f"{out} = NULL")
        if op in ("==", "!="):
            self.line(
                depth,
                f"elif {left}.__class__ in _SCALARS "
                f"and {right}.__class__ in _SCALARS:",
            )
            self.line(depth + 1, f"{out} = {left} {op} {right}")
            self.line(depth, "else:")
            self.line(
                depth + 1,
                f"{out} = identity_key({left}) {op} identity_key({right})",
            )
            return out
        self.line(depth, "else:")
        if op in ("/", "%"):
            fault = "division by zero" if op == "/" else "modulo by zero"
            self.line(depth + 1, f"if {right} == 0:")
            self.line(
                depth + 2, f"raise DivisionByZeroError({fault!r})"
            )
        # A well-typed plan never trips the TypeError arm; with
        # typechecking off the fault must still surface structured,
        # matching the interpreter (zero-cost when not raised on 3.11+).
        self.line(depth + 1, "try:")
        self.line(depth + 2, f"{out} = {left} {op} {right}")
        self.line(depth + 1, "except TypeError as exc:")
        self.line(
            depth + 2,
            f"raise _binop_type_error({op!r}, {left}, {right}, exc) from exc",
        )
        return out

    def _gen_shortcircuit(self, term: BinOp, env: str, depth: int) -> str:
        shortcut = "False" if term.op == "and" else "True"
        left = self.gen(term.left, env, depth)
        out = self.temp()
        self.line(depth, f"if {left} is {shortcut}:")
        self.line(depth + 1, f"{out} = {shortcut}")
        self.line(depth, "else:")
        right = self.gen(term.right, env, depth + 1)
        self.line(depth + 1, f"if {left} is NULL or {right} is NULL:")
        self.line(depth + 2, f"{out} = NULL")
        self.line(depth + 1, "else:")
        self.line(depth + 2, f"{out} = {left} {term.op} {right}")
        return out


class _KernelEmitter(_SourceEmitter):
    """Tier 3: emits one term as a batch kernel ``def _kern(cols, n)``.

    The row body is the same straight-line code the source tier emits, run
    inside one generated ``while`` loop over the chunk.  Three things
    differ from the row emitter:

    * **variable reads index hoisted column locals** — a prologue binds
      ``_colK = cols['name']`` once per batch (raising the interpreter's
      unbound-variable error if the column is absent), and the loop body
      reads ``_colK[_i]`` instead of ``env['name']``;
    * **lets bind scope temps, not env copies** — a ``let``-bound variable
      becomes a loop-local name shadowing any same-named column for the
      extent of the body, so no per-row dict is materialized;
    * **errors truncate instead of raising** — the whole loop runs inside
      one ``try`` whose handler returns ``(_out, _i, exc)``, giving the
      caller the rows that preceded the failure (the kernel contract; see
      :class:`CompiledKernel`).

    Subtrees outside the source subset still evaluate through a
    closure-tier call, fed a per-row env dict materialized from the
    subtree's free variables (columns absent from the chunk are omitted so
    the interpreter's own unbound error fires only if actually read).
    """

    def __init__(self, compiler: ExprCompiler, counter: _Counter):
        super().__init__(compiler, counter)
        #: Per-batch setup lines (column hoists, fallback column pairs),
        #: emitted inside the try but before the row loop.
        self.prologue: list[str] = []
        #: Column name -> hoisted local holding ``cols[name]``.
        self._columns: dict[str, str] = {}
        #: Let-bound variable -> loop-local temp (shadows columns).
        self._scope: dict[str, str] = {}

    def kernel(self, term: Term, predicate: bool) -> KernelFn:
        """The batch kernel for *term*: the comprehension fast form where
        the term lowers to a single expression, the statement loop
        otherwise.

        The fast form evaluates the whole chunk as one list comprehension
        — no per-row appends, no loop-counter bookkeeping — and keeps the
        statement loop around as its error path: any exception inside the
        comprehension (a NULL-division, a bad projection, an unbound
        parameter) abandons the partial list and reruns the chunk through
        the slow loop, which reproduces the exact truncation point and
        structured error of the row tier.  Expressions are deterministic,
        so the rerun reaches the same fault; the only cost is
        double-evaluating the prefix rows of a faulting chunk, and faults
        abort the query anyway.
        """
        slow = self._statement_kernel(term, predicate)
        fast = _KernelEmitter(self.compiler, self.counter)
        try:
            return fast._comprehension_kernel(term, predicate, slow)
        except Exception:  # noqa: BLE001 - fast form is optional
            return slow

    def _statement_kernel(self, term: Term, predicate: bool) -> KernelFn:
        result = self.gen(term, "cols", 3)
        if predicate:
            self.line(3, f"if {result} is True:")
            self.line(4, "_append(True)")
            self.line(3, f"elif {result} is False or {result} is NULL:")
            self.line(4, "_append(False)")
            self.line(3, "else:")
            self.line(4, "_pred_miss()")
        else:
            self.line(3, f"_append({result})")
        prologue = ("\n".join(self.prologue) + "\n") if self.prologue else ""
        source = (
            "def _kern(cols, n):\n"
            "    _out = []\n"
            "    _append = _out.append\n"
            "    _i = 0\n"
            "    try:\n"
            + prologue
            + "        while _i < n:\n"
            + "\n".join(self.lines)
            + "\n"
            "            _i += 1\n"
            "    except Exception as _exc:\n"
            "        return _out, _i, _exc\n"
            "    return _out, n, None\n"
        )
        code = compile(source, "<repro.engine.compile:kernel>", "exec")
        exec(code, self.ns)  # noqa: S102 - self-generated source only
        return self.ns["_kern"]

    # -- emission helpers ---------------------------------------------------

    def pline(self, depth: int, text: str) -> None:
        self.prologue.append("    " * depth + text)

    def column(self, name: str) -> str:
        """The hoisted local for ``cols[name]``, binding it on first use."""
        local = self._columns.get(name)
        if local is None:
            self.n += 1
            local = f"_col{self.n}"
            self._columns[name] = local
            self.pline(2, "try:")
            self.pline(3, f"{local} = cols[{name!r}]")
            self.pline(2, "except KeyError:")
            self.pline(3, f"_var_miss({name!r}, cols)")
        return local

    # -- node emitters that differ from the row tier ------------------------

    def _gen_var(self, term: Var, env: str, depth: int) -> str:
        bound = self._scope.get(term.name)
        if bound is not None:
            return bound
        return f"{self.column(term.name)}[_i]"

    def _gen_let(self, term: Let, env: str, depth: int) -> str:
        value = self.gen(term.value, env, depth)
        out = self.temp()
        self.line(depth, f"{out} = {value}")
        scope = self._scope
        had = term.var in scope
        saved = scope.get(term.var)
        scope[term.var] = out
        try:
            return self.gen(term.body, env, depth)
        finally:
            if had:
                scope[term.var] = saved
            else:
                del scope[term.var]

    def _gen_fallback(self, term: Term, env: str, depth: int) -> str:
        # The closure-tier subtree takes an env dict: materialize one per
        # row from the subtree's free variables.  Let-bound temps win over
        # columns; columns absent from the chunk are omitted (guarded by
        # the ``if _n in cols`` prologue filter) so the interpreter's own
        # unbound-variable error fires only if the row actually reads the
        # name — exactly the row path's laziness.
        sub = self.bind("s", self.compiler._compile(term, self.counter))
        names = sorted(free_vars(term))
        scoped = [(name, self._scope[name]) for name in names if name in self._scope]
        col_names = tuple(name for name in names if name not in self._scope)
        self.n += 1
        env_name = f"_env{self.n}"
        if col_names:
            pairs = f"_sub{self.n}"
            self.pline(
                2,
                f"{pairs} = [(_n, cols[_n]) for _n in {col_names!r} "
                "if _n in cols]",
            )
            self.line(depth, f"{env_name} = {{_n: _c[_i] for _n, _c in {pairs}}}")
        else:
            self.line(depth, f"{env_name} = {{}}")
        for name, bound in scoped:
            self.line(depth, f"{env_name}[{name!r}] = {bound}")
        out = self.temp()
        self.line(depth, f"{out} = {sub}({env_name})")
        return out

    # -- comprehension fast form --------------------------------------------
    #
    # Where a term lowers to a *single Python expression* (walrus
    # assignments standing in for the statement tier's temps), the whole
    # chunk evaluates as one list comprehension:
    #
    #     def _kern(cols, n):
    #         try:
    #             <column hoists>
    #             return [<expr> for _i in range(n)], n, None
    #         except Exception:
    #             return _slow(cols, n)
    #
    # which is ~2.5x faster than the statement loop (one LIST_APPEND per
    # row, no loop-counter or try-frame bookkeeping per row).  Error arms
    # that the statement tier spells out (division by zero, type faults,
    # unbound parameters) are not re-spelled here: the raw exception —
    # KeyError, ZeroDivisionError, TypeError — aborts the comprehension
    # and the chunk reruns through ``_slow``, whose loop reproduces the
    # structured error and exact truncation row.  Success paths must agree
    # between the two forms; error paths only need to *reach* ``_slow``.

    def _comprehension_kernel(
        self, term: Term, predicate: bool, slow: KernelFn
    ) -> KernelFn:
        expr = self.xgen(term)
        if predicate:
            t = self.wtemp()
            expr = (
                f"(True if ({t} := {expr}) is True else "
                f"(False if {t} is False or {t} is NULL else _pred_miss()))"
            )
        self.ns["_slow"] = slow
        prologue = ("\n".join(self.prologue) + "\n") if self.prologue else ""
        source = (
            "def _kern(cols, n):\n"
            "    try:\n"
            + prologue
            + f"        return [{expr} for _i in range(n)], n, None\n"
            "    except Exception:\n"
            "        return _slow(cols, n)\n"
        )
        code = compile(source, "<repro.engine.compile:kernel-fast>", "exec")
        exec(code, self.ns)  # noqa: S102 - self-generated source only
        return self.ns["_kern"]

    def wtemp(self) -> str:
        """A name for a walrus-assignment target (function-scoped: an
        assignment expression in a comprehension binds in the enclosing
        ``_kern`` frame, which is exactly what the nested conditional
        expressions rely on)."""
        self.n += 1
        return f"_w{self.n}"

    def xgen(self, term: Term) -> str:
        """*term* as one Python expression, or raise ``NotImplementedError``
        (abandoning the fast form for this kernel)."""
        handler = self.xhandlers.get(type(term))
        if handler is None:
            return self._x_fallback(term)
        return handler(self, term)

    def _x_fallback(self, term: Term) -> str:
        # Same closure-tier escape as the statement form, but the per-row
        # env dict is built inline as a dict comprehension over prologue-
        # hoisted (name, column) pairs, with let-bound temps layered on top.
        sub = self.bind("s", self.compiler._compile(term, self.counter))
        names = sorted(free_vars(term))
        scoped = [
            (name, self._scope[name]) for name in names if name in self._scope
        ]
        col_names = tuple(name for name in names if name not in self._scope)
        if col_names:
            self.n += 1
            pairs = f"_sub{self.n}"
            self.pline(
                2,
                f"{pairs} = [(_n, cols[_n]) for _n in {col_names!r} "
                "if _n in cols]",
            )
            env = f"{{_n: _c[_i] for _n, _c in {pairs}}}"
        else:
            env = "{}"
        if scoped:
            inner = ", ".join(f"{name!r}: {bound}" for name, bound in scoped)
            env = f"{{**{env}, {inner}}}"
        return f"{sub}({env})"

    # -- expression-form node emitters --------------------------------------

    def _x_var(self, term: Var) -> str:
        bound = self._scope.get(term.name)
        if bound is not None:
            return bound
        return f"{self.column(term.name)}[_i]"

    def _x_const(self, term: Const) -> str:
        # A namespace name, not a repr literal (operands must be names so
        # `x.__class__` / `x is NULL` stays valid syntax).
        return self.bind("c", term.value)

    def _x_null(self, term: Null) -> str:
        return "NULL"

    def _x_param(self, term: Param) -> str:
        # Raw KeyError on an unbound parameter reruns through the slow
        # loop, which raises the structured UnboundParameterError.  Kept
        # lazy (no prologue hoist) so a parameter referenced only in an
        # untaken If branch stays unread, as on the row path.
        return f"rt.params[{term.name!r}]"

    def _x_extent(self, term: Extent) -> str:
        return f"rt.database.extent({term.name!r})"

    def _x_record(self, term: RecordCons) -> str:
        inner = ", ".join(
            f"{name!r}: {self.xgen(expr)}" for name, expr in term.fields
        )
        return f"Record({{{inner}}})"

    def _x_proj(self, term: Proj) -> str:
        base = self.xgen(term.expr)
        t = self.wtemp()
        attr = term.attr
        return (
            f"({t}._fields[{attr!r}] "
            f"if ({t} := {base}).__class__ is Record "
            f"and {attr!r} in {t}._fields "
            f"else _proj_slow({t}, {attr!r}))"
        )

    def _x_if(self, term: If) -> str:
        cond = self.xgen(term.cond)
        t = self.wtemp()
        then = self.xgen(term.then)
        orelse = self.xgen(term.orelse)
        return (
            f"({then} if ({t} := {cond}) is True else "
            f"({orelse} if {t} is False or {t} is NULL else _if_miss()))"
        )

    def _x_let(self, term: Let) -> str:
        value = self.xgen(term.value)
        out = self.wtemp()
        scope = self._scope
        had = term.var in scope
        saved = scope.get(term.var)
        scope[term.var] = out
        try:
            body = self.xgen(term.body)
        finally:
            if had:
                scope[term.var] = saved
            else:
                del scope[term.var]
        # Tuple evaluates left to right: bind the temp, then the body.
        return f"((({out} := ({value})), {body})[1])"

    def _x_not(self, term: Not) -> str:
        value = self.xgen(term.expr)
        t = self.wtemp()
        return (
            f"(False if ({t} := {value}) is True else "
            f"(True if {t} is False else "
            f"(NULL if {t} is NULL else _not_miss())))"
        )

    def _x_isnull(self, term: IsNull) -> str:
        return f"(({self.xgen(term.expr)}) is NULL)"

    def _x_binop(self, term: BinOp) -> str:
        op = term.op
        if op in ("and", "or"):
            return self._x_shortcircuit(term)
        if op not in _SRC_BINOPS:
            raise NotImplementedError(op)
        lt = self.wtemp()
        rt_ = self.wtemp()
        left = self.xgen(term.left)
        right = self.xgen(term.right)
        if op in ("==", "!="):
            body = (
                f"({lt} {op} {rt_} "
                f"if {lt}.__class__ in _SCALARS "
                f"and {rt_}.__class__ in _SCALARS "
                f"else identity_key({lt}) {op} identity_key({rt_}))"
            )
        else:
            # Raw operator: ZeroDivisionError / TypeError rerun through
            # the slow loop, which raises the structured fault.
            body = f"({lt} {op} {rt_})"
        # Bitwise `|` forces *both* walruses before the NULL test — the
        # row tier evaluates both operands before propagating NULL.
        return (
            f"(NULL if (({lt} := {left}) is NULL) "
            f"| (({rt_} := {right}) is NULL) else {body})"
        )

    def _x_shortcircuit(self, term: BinOp) -> str:
        lt = self.wtemp()
        rt_ = self.wtemp()
        left = self.xgen(term.left)
        right = self.xgen(term.right)
        if term.op == "and":
            # right IS evaluated when left is NULL, as on the row path.
            return (
                f"(False if ({lt} := {left}) is False else "
                f"(NULL if (({rt_} := {right}) is NULL) or {lt} is NULL "
                f"else {lt} and {rt_}))"
            )
        return (
            f"(True if ({lt} := {left}) is True else "
            f"(NULL if (({rt_} := {right}) is NULL) or {lt} is NULL "
            f"else {lt} or {rt_}))"
        )


#: BinOp operators the source tier emits inline (and/or are special-cased).
_SRC_BINOPS = frozenset(
    ("+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=")
)

_SRC_HANDLERS: dict[type, Callable[..., str]] = {
    Var: _SourceEmitter._gen_var,
    Const: _SourceEmitter._gen_const,
    Null: _SourceEmitter._gen_null,
    Param: _SourceEmitter._gen_param,
    Extent: _SourceEmitter._gen_extent,
    RecordCons: _SourceEmitter._gen_record,
    Proj: _SourceEmitter._gen_proj,
    If: _SourceEmitter._gen_if,
    Let: _SourceEmitter._gen_let,
    Not: _SourceEmitter._gen_not,
    IsNull: _SourceEmitter._gen_isnull,
    BinOp: _SourceEmitter._gen_binop,
}

# The tables hold plain function objects (no dynamic dispatch), so subclass
# overrides are wired in explicitly: each emitter class carries its own
# ``handlers`` table and ``gen`` dispatches through it.
_SourceEmitter.handlers = _SRC_HANDLERS
_KERNEL_HANDLERS = dict(_SRC_HANDLERS)
_KERNEL_HANDLERS[Var] = _KernelEmitter._gen_var
_KERNEL_HANDLERS[Let] = _KernelEmitter._gen_let
_KernelEmitter.handlers = _KERNEL_HANDLERS

#: Expression-form emitters for the comprehension fast kernel.
_X_HANDLERS: dict[type, Callable[..., str]] = {
    Var: _KernelEmitter._x_var,
    Const: _KernelEmitter._x_const,
    Null: _KernelEmitter._x_null,
    Param: _KernelEmitter._x_param,
    Extent: _KernelEmitter._x_extent,
    RecordCons: _KernelEmitter._x_record,
    Proj: _KernelEmitter._x_proj,
    If: _KernelEmitter._x_if,
    Let: _KernelEmitter._x_let,
    Not: _KernelEmitter._x_not,
    IsNull: _KernelEmitter._x_isnull,
    BinOp: _KernelEmitter._x_binop,
}
_KernelEmitter.xhandlers = _X_HANDLERS

_HANDLERS: dict[type, Callable[[ExprCompiler, Any, _Counter], EvalFn]] = {
    Var: ExprCompiler._compile_var,
    Const: ExprCompiler._compile_const,
    Null: ExprCompiler._compile_null,
    Param: ExprCompiler._compile_param,
    Extent: ExprCompiler._compile_extent,
    RecordCons: ExprCompiler._compile_record,
    Proj: ExprCompiler._compile_proj,
    Lambda: ExprCompiler._compile_lambda,
    Apply: ExprCompiler._compile_apply,
    If: ExprCompiler._compile_if,
    Let: ExprCompiler._compile_let,
    BinOp: ExprCompiler._compile_binop,
    Not: ExprCompiler._compile_not,
    IsNull: ExprCompiler._compile_isnull,
    Zero: ExprCompiler._compile_zero,
    Singleton: ExprCompiler._compile_singleton,
    Merge: ExprCompiler._compile_merge,
}
