"""The query governor: per-query wall-clock, row, and memory budgets.

A production engine cannot let one pathological plan — a cross join the
optimizer could not avoid, a hash build over an unexpectedly huge extent —
stall the process for every other caller.  The governor bounds each
execution cooperatively:

* **wall-clock deadline** (``timeout`` seconds): checked on an amortized
  schedule from the operator loops;
* **row budget** (``max_rows``): counts *work units* — rows emitted by
  operators plus inner join-pair iterations — so a nested-loop blowup is
  charged even when it emits few rows.  The check schedule is clamped to
  the budget, so a trip happens within one in-flight batch of exceeding it;
* **memory budget** (``max_bytes``): blocking operators (hash-join builds,
  hash-nest groups, merge-join sorts, nested-loop inner materialization)
  :meth:`~Governor.charge` a shallow byte estimate for what they buffer,
  sampled one row per :data:`SAMPLE_STRIDE`;
* **cancellation** (:class:`CancelToken`): a thread-safe flag a caller can
  trip from outside; the running query observes it at the next settle and
  stops with :class:`~repro.errors.QueryCancelled`.

Hot loops count work units in a local integer and settle every
:meth:`~Governor.batch` units via :meth:`~Governor.tick_many`, so the
per-unit cost in governed execution is an increment and a comparison on a
local — no method call; deadline and cancellation checks — the expensive
parts, a clock read and an ``Event`` load — run once per ``tick_interval``
units.

A :class:`Governor` is created per execution.  By default it is owned by
one thread and its counters are plain attributes.  Parallel execution
(:mod:`repro.engine.exchange`) shares one governor across all partition
workers so budgets bound the *query*, not each worker: the exchange layer
calls :meth:`~Governor.enable_sharing` first, which routes every
mutating path (``tick``/``tick_many``/``charge``/``release``/``check``)
through a lock.  Workers still amortize via local counters and
:meth:`~Governor.batch`, so the lock is taken once per settle — measured
overhead stays ~0%.  The :class:`CancelToken` is thread-safe either way.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any

from repro.errors import BudgetExceeded, QueryCancelled, QueryTimeout

__all__ = [
    "CancelToken",
    "Governor",
    "SAMPLE_STRIDE",
    "estimate_buffer_bytes",
    "estimate_bytes",
]


class CancelToken:
    """A thread-safe cooperative cancellation flag.

    Hand the token to :meth:`CompiledQuery.execute` (or build a
    :class:`Governor` with it), keep a reference, and call :meth:`cancel`
    from any thread; the running query raises
    :class:`~repro.errors.QueryCancelled` at its next governor checkpoint.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation.  Idempotent; safe from any thread."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


def estimate_bytes(value: Any) -> int:
    """A cheap, shallow estimate of the memory a buffered row costs.

    ``sys.getsizeof`` on the container plus one level of contents — not a
    deep traversal, which would cost more than the buffering it polices.
    Rows are records or scalars; one level covers the common shapes.
    """
    size = sys.getsizeof(value, 64)
    fields = getattr(value, "_fields", None)
    if fields is not None:  # a Record: charge its field dict's values
        value = fields
    if isinstance(value, dict):
        size += sum(sys.getsizeof(v, 64) for v in value.values())
    elif isinstance(value, (list, tuple, set, frozenset)):
        size += sum(sys.getsizeof(v, 64) for v in value)
    return size


#: Blocking operators estimate one buffered row per stride and charge the
#: whole stride at that rate — rows in a buffer share a shape, so sampling
#: loses little accuracy and cuts the estimator out of the per-row path.
SAMPLE_STRIDE = 16


def estimate_buffer_bytes(items: Any, get: Any = None) -> int:
    """Sampled shallow estimate of an already-materialized buffer.

    Measures every :data:`SAMPLE_STRIDE`-th item (through *get* when the
    buffered row is wrapped, e.g. merge-join sort keys) and scales to the
    full length.
    """
    n = len(items)
    if n == 0:
        return 0
    total = 0
    sampled = 0
    for i in range(0, n, SAMPLE_STRIDE):
        item = items[i]
        if get is not None:
            item = get(item)
        total += estimate_bytes(item)
        sampled += 1
    return (total * n) // sampled


class Governor:
    """Per-execution resource limits, checked cooperatively.

    Args:
        timeout: wall-clock budget in seconds, or ``None`` for unlimited.
        max_rows: work-unit budget (rows emitted + join pairs considered),
            or ``None`` for unlimited.  Enforced within one in-flight
            batch per ticking operator (see :meth:`batch`).
        max_bytes: estimated-memory budget for blocking operators, or
            ``None`` for unlimited.
        token: an optional :class:`CancelToken` observed at checkpoints.
        source: the query source, attached to raised errors.
        tick_interval: work units between deadline/cancellation checks.
    """

    __slots__ = (
        "timeout",
        "max_rows",
        "max_bytes",
        "token",
        "source",
        "tick_interval",
        "ticks",
        "bytes_charged",
        "peak_bytes",
        "checkpoints",
        "_deadline",
        "_next_check",
        "_lock",
    )

    def __init__(
        self,
        *,
        timeout: float | None = None,
        max_rows: int | None = None,
        max_bytes: int | None = None,
        token: CancelToken | None = None,
        source: str | None = None,
        tick_interval: int = 1024,
    ):
        self.timeout = timeout
        self.max_rows = max_rows
        self.max_bytes = max_bytes
        self.token = token
        self.source = source
        self.tick_interval = max(1, tick_interval)
        self.ticks = 0
        self.bytes_charged = 0
        self.peak_bytes = 0
        self.checkpoints = 0
        self._deadline = None if timeout is None else time.monotonic() + timeout
        self._next_check = self._schedule(0)
        self._lock: threading.Lock | None = None

    def enable_sharing(self) -> None:
        """Make the counters safe to share across worker threads.

        Idempotent.  After this call every mutating path settles under a
        single lock; with workers batching locally (see :meth:`batch`)
        the lock is acquired once per up-to-``tick_interval`` units, so
        the amortized cost is unchanged.  Under sharing the row budget
        still trips promptly — within one in-flight local batch *per
        worker* of the budget being crossed (the single-thread contract
        is "within one batch"; concurrency adds at most the other
        workers' in-flight batches before everyone observes the trip).
        """
        if self._lock is None:
            self._lock = threading.Lock()

    @property
    def shared(self) -> bool:
        """Whether :meth:`enable_sharing` has been called."""
        return self._lock is not None

    def _schedule(self, ticks: int) -> int:
        """The tick count at which the next checkpoint must run.

        Clamped to ``max_rows + 1`` so the row budget trips exactly when
        exceeded, never ``tick_interval`` rows late.
        """
        nxt = ticks + self.tick_interval
        if self.max_rows is not None:
            nxt = min(nxt, self.max_rows + 1)
        return nxt

    def tick(self) -> None:
        """Charge one work unit (a row emitted or a join pair considered).

        The common case is an increment and a comparison; limits are
        checked on the amortized schedule."""
        lock = self._lock
        if lock is None:
            self.ticks += 1
            if self.ticks >= self._next_check:
                self._checkpoint()
            return
        with lock:
            self.ticks += 1
            if self.ticks >= self._next_check:
                self._checkpoint()

    def batch(self) -> int:
        """How many work units a loop may count locally before it must
        settle via :meth:`tick_many`.

        This is the distance to the next scheduled checkpoint, so hot loops
        replace a method call per work unit with a local increment and
        comparison — the batch is clamped near a row budget, keeping trips
        prompt (within one in-flight batch per ticking operator)."""
        return max(1, self._next_check - self.ticks)

    def tick_many(self, units: int) -> None:
        """Settle *units* locally-counted work units (see :meth:`batch`)."""
        if not units:
            return
        lock = self._lock
        if lock is None:
            self.ticks += units
            if self.ticks >= self._next_check:
                self._checkpoint()
            return
        with lock:
            self.ticks += units
            if self.ticks >= self._next_check:
                self._checkpoint()

    def charge(self, nbytes: int) -> None:
        """Charge *nbytes* of buffered memory (blocking operators only)."""
        lock = self._lock
        if lock is None:
            return self._charge(nbytes)
        with lock:
            return self._charge(nbytes)

    def _charge(self, nbytes: int) -> None:
        self.bytes_charged += nbytes
        if self.bytes_charged > self.peak_bytes:
            self.peak_bytes = self.bytes_charged
        if self.max_bytes is not None and self.bytes_charged > self.max_bytes:
            raise BudgetExceeded(
                f"memory budget exceeded: ~{self.bytes_charged} bytes buffered "
                f"(max_bytes={self.max_bytes})",
                source=self.source,
                stage="execute",
            )

    def release(self, nbytes: int) -> None:
        """Return *nbytes* previously charged (a buffer was dropped)."""
        lock = self._lock
        if lock is None:
            self.bytes_charged = max(0, self.bytes_charged - nbytes)
            return
        with lock:
            self.bytes_charged = max(0, self.bytes_charged - nbytes)

    def check(self) -> None:
        """Force a full limit check now (used between pipeline stages)."""
        lock = self._lock
        if lock is None:
            return self._checkpoint()
        with lock:
            return self._checkpoint()

    def _checkpoint(self) -> None:
        self.checkpoints += 1
        self._next_check = self._schedule(self.ticks)
        if self.max_rows is not None and self.ticks > self.max_rows:
            raise BudgetExceeded(
                f"row budget exceeded: {self.ticks} work units "
                f"(max_rows={self.max_rows})",
                source=self.source,
                stage="execute",
            )
        if self.token is not None and self.token.cancelled:
            raise QueryCancelled(
                "query cancelled", source=self.source, stage="execute"
            )
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise QueryTimeout(
                f"query exceeded timeout of {self.timeout}s",
                source=self.source,
                stage="execute",
            )
