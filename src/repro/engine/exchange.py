"""Exchange-style parallel execution: partitioned scans, a worker pool,
and a deterministic partition-order merge at the root.

The paper's grouping operators (hash-nest, hash-join) group by key and
therefore partition cleanly; this module exploits that.  A plan rooted at
``Reduce`` is decomposed into P partition-local pipelines — the driving
extent scan is replaced by a :class:`PartitionedScan` and each copy of the
plan runs in a ``concurrent.futures`` thread pool — plus a coordinator
(:class:`PGather`) that merges partial states in partition order.

**Determinism and exactness.**  The default partitioning is *range*
(contiguous slices of the extent, whose iteration order is itself
deterministic — see ``SetValue``).  Workers return raw, unfinalized
state: a reduce worker returns its post-filter head values in stream
order, a nest worker its per-group element lists / group order.  The
coordinator concatenates partitions in order and replays the exact serial
fold, so results — including float rounding, group first-seen order, and
error order — are bit-identical to serial execution.  *Hash* partitioning
(the re-shuffle-skipping path below) reorders the stream deterministically
but not serially, so it is only chosen when every affected monoid is
order-insensitive (set/bag/max/min).

**Partition-aware joins and nests.**  When a spine join carries an
equi-key over the driving scan's variable and the build side is a plain
Scan/Select/Map chain keyed on its own scan, both scans are
hash-partitioned on the key (:func:`stable_hash` over identity keys, so
co-location is independent of ``PYTHONHASHSEED``): each worker's hash
join builds only its own 1/P of the build side instead of broadcasting —
"the re-shuffle is already done by the scan".  Likewise a nest that
groups by the driving scan variable has partition-local groups (equal
keys hash to the same partition), so workers finalize their own groups
and the coordinator concatenates instead of merging by key.

**Quantifier roots stay serial.**  ``some``/``all`` short-circuit: a
speculative partition would evaluate rows (and charge budgets for rows) a
short-circuiting serial run never reaches, making error and governor
behavior racy.  :func:`try_parallel_plan` returns None for them.

**Threads, not processes.**  Physical plans hold compiled closures and
rows hold OID-stamped records — neither pickles — so workers are always
threads.  On free-threaded builds they scale across cores; on GIL builds
the machinery is exercised (and correct) but CPU-bound speedup waits on
the interpreter.  The governor is shared across workers via its locked
settle path (:meth:`~repro.engine.governor.Governor.enable_sharing`).
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Iterator, Mapping

from repro.algebra.operators import (
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Select,
    Unnest,
)
from repro.calculus.evaluator import ExtentProvider
from repro.calculus.monoids import CollectionMonoid
from repro.calculus.terms import Proj, Term, Var, free_vars
from repro.data.values import (
    NULL,
    BagValue,
    CollectionValue,
    ListValue,
    NullValue,
    Record,
    SetValue,
    identity_key,
)
from repro.engine.batch import Chunk, Env
from repro.engine.compile import ExprCompiler
from repro.engine.physical import (
    PhysicalOperator,
    _Context,
)
from repro.errors import GovernorError

__all__ = [
    "MAX_AUTO_WORKERS",
    "PGather",
    "PPartitionScan",
    "PartitionSpec",
    "PartitionedScan",
    "resolve_workers",
    "stable_hash",
    "try_parallel_plan",
]

#: Cap for ``num_workers=0`` (auto): enough to cover small hosts without
#: flooding a large one with partitions no query is wide enough to feed.
MAX_AUTO_WORKERS = 8

#: Monoids whose merge is exact under reordering: value-equality for the
#: commutative collections, and max/min/or/and are order-insensitive even
#: for floats.  sum/prod/avg are *mathematically* commutative but float
#: rounding is not reassociation-safe, and list concatenation is not
#: commutative at all — those require stream-order (range) partitioning.
_REORDER_SAFE = frozenset(("set", "bag", "max", "min", "some", "all"))


def resolve_workers(num_workers: int) -> int:
    """The worker/partition count for a requested ``num_workers``.

    0 means auto: one worker per visible core, capped at
    :data:`MAX_AUTO_WORKERS`.
    """
    if num_workers > 0:
        return num_workers
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(MAX_AUTO_WORKERS, cores))


# ---------------------------------------------------------------------------
# Seed-independent hashing of identity keys
# ---------------------------------------------------------------------------


def _num_repr(value: Any) -> str:
    # Values that compare equal must repr equal: True == 1 == 1.0, so all
    # numerics canonicalize through float where exact.  An int too large
    # for float can only equal another int with the same repr.
    try:
        as_float = float(value)
    except OverflowError:
        return f"num:{value!r}"
    if as_float == value:
        return f"num:{as_float!r}"
    return f"num:{value!r}"


def _stable_repr(key: Any) -> str:
    """A canonical string for an identity key: equal keys produce equal
    strings regardless of ``PYTHONHASHSEED`` (frozenset contents sorted)."""
    if isinstance(key, bool) or isinstance(key, (int, float)):
        return _num_repr(key)
    if isinstance(key, str):
        return f"str:{key!r}"
    if isinstance(key, NullValue):
        return "null"
    if isinstance(key, tuple):
        return "(" + ",".join(_stable_repr(part) for part in key) + ")"
    if isinstance(key, frozenset):
        return "fs{" + ",".join(sorted(_stable_repr(v) for v in key)) + "}"
    if isinstance(key, Record):
        inner = ",".join(
            f"{name}={_stable_repr(value)}" for name, value in key._key()
        )
        return "<" + inner + ">"
    if isinstance(key, SetValue):
        return "set{" + ",".join(
            sorted(_stable_repr(v) for v in key.elements())
        ) + "}"
    if isinstance(key, BagValue):
        parts = sorted(
            f"{_stable_repr(v)}*{count}"
            for v, count in key._value_counts().items()
        )
        return "bag{" + ",".join(parts) + "}"
    if isinstance(key, ListValue):
        return "list[" + ",".join(_stable_repr(v) for v in key) + "]"
    return f"{type(key).__name__}:{key!r}"  # pragma: no cover - defensive


def stable_hash(value: Any) -> int:
    """A process-independent hash of a join/partition key value.

    Built on :func:`identity_key` (so two values that would equi-join hash
    alike, and distinct stored objects hash apart) and a canonical repr
    (so the result does not depend on ``PYTHONHASHSEED``).
    """
    return zlib.crc32(_stable_repr(identity_key(value)).encode("utf-8"))


# ---------------------------------------------------------------------------
# Partitioned scans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionSpec:
    """Which slice of an extent a partitioned scan emits.

    ``mode`` is ``"range"`` (contiguous slice ``index`` of ``count`` — the
    exact-replay default) or ``"hash"`` (rows whose ``key`` expression
    :func:`stable_hash`-es to ``index`` mod ``count`` — the
    re-shuffle-skipping mode for partition-aware joins/nests).
    """

    mode: str
    index: int
    count: int
    key: Term | None = None


@dataclass(frozen=True)
class PartitionedScan(Scan):
    """A logical extent scan restricted to one partition.

    Injected by :func:`try_parallel_plan` into each worker's copy of the
    plan; never produced by the optimizer, so no rewrite rule sees it.
    The planner dispatches on the ``partition`` field.
    """

    partition: PartitionSpec | None = None


class PPartitionScan(PhysicalOperator):
    """Physical partitioned scan: one partition's rows of an extent.

    Ticks the governor only for *emitted* rows, so across all partitions
    the driving extent charges exactly what a serial scan charges.
    """

    def __init__(
        self, context: _Context, extent: str, var: str, spec: PartitionSpec
    ):
        super().__init__()
        self._context = context
        self.extent = extent
        self.var = var
        self.spec = spec
        self._key_fn = (
            None if spec.key is None else self._expr(context, spec.key)
        )

    def _items(self) -> list:
        items = list(self._context.database.extent(self.extent))
        spec = self.spec
        if spec.mode == "range":
            n = len(items)
            lo = (n * spec.index) // spec.count
            hi = (n * (spec.index + 1)) // spec.count
            return items[lo:hi]
        key_fn = self._key_fn
        var = self.var
        index, count = spec.index, spec.count
        return [
            obj
            for obj in items
            if stable_hash(key_fn({var: obj})) % count == index
        ]

    def rows(self) -> Iterator[Env]:
        var = self.var
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        for obj in self._items():
            self.rows_produced += 1
            units += 1
            if units >= batch:
                governor.tick_many(units)
                units = 0
                batch = governor.batch()
            yield {var: obj}
        if governor is not None:
            governor.tick_many(units)

    def batches(self) -> Iterator[Chunk]:
        # Native chunk producer, mirroring PScan.batches: the partition's
        # rows sliced into columnar chunks, one tick per emitted row.
        context = self._context
        var = self.var
        size = context.batch_size
        governor = context.governor
        items = self._items()
        for start in range(0, len(items), size):
            col = items[start : start + size]
            if governor is not None:
                governor.tick_many(len(col))
            yield self._emit_chunk(Chunk({var: col}, len(col)))

    def describe(self) -> str:
        spec = self.spec
        return (
            f"PartitionScan({self.var} <- {self.extent} "
            f"[{spec.mode} {spec.index + 1}/{spec.count}])"
        )


class PMaterializedSource(PhysicalOperator):
    """Leaf that replays coordinator-merged rows into the serial tail plan
    (the operators above the parallelized nest)."""

    def __init__(self, context: _Context, columns: tuple[str, ...]):
        super().__init__()
        self._context = context
        self._columns = columns
        self._rows: list[Env] = []

    def feed(self, rows: list[Env]) -> None:
        self._rows = rows
        self.rows_produced = 0

    def rows(self) -> Iterator[Env]:
        for env in self._rows:
            self.rows_produced += 1
            yield env

    def describe(self) -> str:
        return f"Materialized({','.join(self._columns)})"


@dataclass(frozen=True, eq=False)
class MaterializedInput(Operator):
    """Logical stand-in for the merged nest output in the tail plan."""

    source: PMaterializedSource
    source_columns: tuple[str, ...]

    def columns(self) -> tuple[str, ...]:
        return self.source_columns

    def build_physical(self, context: _Context) -> PhysicalOperator:
        return self.source


# ---------------------------------------------------------------------------
# Plan decomposition
# ---------------------------------------------------------------------------

#: Spine operators and how the driving stream flows through them.
_CHILD_SPINE = (Select, Map, Unnest, OuterUnnest, Nest)


def _spine(plan: Operator) -> list[Operator] | None:
    """The driving spine from *plan* down to its extent scan, or None.

    Follows ``child`` through streaming operators and ``left`` through
    joins (the probe side drives).  A plan whose driving leaf is not a
    plain Scan (Seed-rooted constants, for example) is not partitionable.
    """
    path: list[Operator] = []
    node = plan
    while True:
        path.append(node)
        if isinstance(node, _CHILD_SPINE):
            node = node.child
        elif isinstance(node, (Join, OuterJoin)):
            node = node.left
        elif type(node) is Scan:
            return path
        else:
            return None


def _is_path_expr(term: Term) -> bool:
    """True for bare variables and projection chains — total functions
    (modulo NULL), safe to evaluate on rows a downstream filter would have
    dropped (hash partitioning evaluates the key at the scan)."""
    while isinstance(term, Proj):
        term = term.expr
    return isinstance(term, Var)


def _build_side_scan(node: Operator) -> Scan | None:
    """The scan under a join's build side, if the side is a plain
    Scan/Select/Map chain (partitioning its scan then commutes with the
    chain).  Anything else — nested joins, unnests — stays broadcast."""
    while isinstance(node, (Select, Map)):
        node = node.child
    return node if type(node) is Scan else None


def _choose_hash_partition(
    monoid, path: list[Operator], scan: Scan
) -> tuple[Term, Scan, Term] | None:
    """The (left key, build-side scan, right key) for hash partitioning,
    or None when range partitioning must be used.

    Hash mode reorders the stream (deterministically), so every monoid
    whose fold observes element order must be reorder-safe: the root
    reduce monoid, and each spine nest's monoid unless that nest groups
    by the scan variable (then groups are partition-local and fold their
    own rows in stream order regardless of partitioning).
    """
    if monoid.name not in ("set", "bag", "max", "min"):
        return None
    for op in path:
        if isinstance(op, Nest) and scan.var not in op.group_by:
            if op.monoid_name not in _REORDER_SAFE:
                return None
    from repro.engine.planner import split_equi_conjuncts

    scan_var = frozenset((scan.var,))
    for op in reversed(path):  # leaf-side joins first: they gain the most
        if not isinstance(op, (Join, OuterJoin)):
            continue
        keys, _ = split_equi_conjuncts(
            op.pred, op.left.columns(), op.right.columns()
        )
        for left_key, right_key in keys:
            if not (free_vars(left_key) == scan_var and _is_path_expr(left_key)):
                continue
            build_scan = _build_side_scan(op.right)
            if build_scan is None:
                continue
            if free_vars(right_key) == frozenset(
                (build_scan.var,)
            ) and _is_path_expr(right_key):
                return left_key, build_scan, right_key
    return None


def _substitute(node: Operator, mapping: dict[int, Operator]) -> Operator:
    """Rebuild *node* with the (identity-keyed) leaves in *mapping*
    swapped in.  Only containers on the way to a mapped leaf change."""
    found = mapping.get(id(node))
    if found is not None:
        return found
    if isinstance(node, (Join, OuterJoin)):
        return replace(
            node,
            left=_substitute(node.left, mapping),
            right=_substitute(node.right, mapping),
        )
    child = getattr(node, "child", None)
    if child is not None:
        return replace(node, child=_substitute(child, mapping))
    return node


def try_parallel_plan(
    plan: Operator,
    database: ExtentProvider,
    options,
    params: Mapping[str, Any] | None = None,
    profile: bool = False,
    compiler: "ExprCompiler | None" = None,
    governor: Any | None = None,
) -> "PGather | None":
    """Decompose *plan* into a :class:`PGather` of partition pipelines.

    Returns None — execute serially — when the plan shape does not
    partition: non-Reduce roots, quantifier (some/all) roots, Seed-driven
    plans, or a nest spine interrupted by joins/unnests above the lowest
    nest (the merge would need to re-derive join state).
    """
    from repro.engine.planner import _build

    if not isinstance(plan, Reduce):
        return None
    monoid = plan.monoid
    if monoid.name in ("some", "all"):
        return None
    path = _spine(plan.child)
    if path is None:
        return None
    scan = path[-1]
    assert type(scan) is Scan

    nest_index = None
    for i in range(len(path) - 1, -1, -1):
        if isinstance(path[i], Nest):
            nest_index = i
            break
    if nest_index is not None:
        # The tail (everything between the root and the lowest nest) is
        # re-run serially over the merged groups; only stream-shaped
        # operators replay that way.
        for op in path[:nest_index]:
            if not isinstance(op, (Select, Map, Nest)):
                return None

    count = resolve_workers(getattr(options, "num_workers", 0))

    hash_choice = _choose_hash_partition(monoid, path, scan)
    if hash_choice is not None:
        left_key, build_scan, right_key = hash_choice
        mode = "hash"
    else:
        left_key = build_scan = right_key = None
        mode = "range"

    if nest_index is None:
        strategy = "reduce"
        worker_template: Operator = plan
        nest_node = None
        aligned = False
    else:
        strategy = "nest"
        nest_node = path[nest_index]
        worker_template = nest_node
        # Groups keyed (in part) by the scan object never span partitions
        # under hash mode: equal group keys imply equal scan objects imply
        # the same hash bucket.  Workers then finalize their own groups
        # and the coordinator concatenates — the partition-aware nest.
        aligned = mode == "hash" and scan.var in nest_node.group_by

    if compiler is None and options.compiled_exprs:
        compiler = ExprCompiler()

    def make_context() -> _Context:
        return _Context(
            database,
            params,
            compiled_exprs=options.compiled_exprs,
            profile=profile,
            compiler=compiler,
            governor=governor,
            batched_exec=options.batched_exec,
            batch_size=options.batch_size,
        )

    base_context = make_context()
    partition_roots: list[PhysicalOperator] = []
    worker_contexts: list[_Context] = []
    for index in range(count):
        mapping: dict[int, Operator] = {
            id(scan): PartitionedScan(
                scan.extent,
                scan.var,
                PartitionSpec(mode, index, count, left_key),
            )
        }
        if build_scan is not None:
            mapping[id(build_scan)] = PartitionedScan(
                build_scan.extent,
                build_scan.var,
                PartitionSpec("hash", index, count, right_key),
            )
        worker_logical = _substitute(worker_template, mapping)
        context = make_context()
        worker_contexts.append(context)
        partition_roots.append(_build(worker_logical, context, options))

    tail_root = None
    tail_source = None
    if strategy == "nest":
        tail_source = PMaterializedSource(base_context, nest_node.columns())
        tail_logical: Operator = MaterializedInput(
            tail_source, nest_node.columns()
        )
        for op in reversed(path[:nest_index]):
            tail_logical = replace(op, child=tail_logical)
        tail_logical = replace(plan, child=tail_logical)
        tail_root = _build(tail_logical, base_context, options)

    return PGather(
        base_context,
        strategy=strategy,
        mode=mode,
        aligned=aligned,
        monoid=monoid,
        nest_node=nest_node,
        partition_roots=partition_roots,
        worker_contexts=worker_contexts,
        tail_root=tail_root,
        tail_source=tail_source,
        num_workers=count,
    )


# ---------------------------------------------------------------------------
# The gather root
# ---------------------------------------------------------------------------


class PGather(PhysicalOperator):
    """Coordinator of a parallel execution: runs the partition pipelines
    in a thread pool, then merges in partition order.

    ``strategy="reduce"``: each worker returns its partition's post-filter
    head values (stream order); the coordinator replays the serial fold
    over the concatenation.  ``strategy="nest"``: each worker returns its
    raw grouping state; the coordinator merges groups by key in partition
    order (or concatenates finalized groups when partition-aligned),
    finalizes, and streams the merged group rows through the serial tail.
    """

    def __init__(
        self,
        context: _Context,
        *,
        strategy: str,
        mode: str,
        aligned: bool,
        monoid,
        nest_node,
        partition_roots: list[PhysicalOperator],
        worker_contexts: list[_Context],
        tail_root: PhysicalOperator | None,
        tail_source: PMaterializedSource | None,
        num_workers: int,
    ):
        super().__init__()
        self._context = context
        self.strategy = strategy
        self.mode = mode
        self.aligned = aligned
        self.monoid = monoid
        self._nest_node = nest_node
        self._partition_roots = partition_roots
        self._worker_contexts = worker_contexts
        self._tail_root = tail_root
        self._tail_source = tail_source
        self.num_workers = num_workers

    # -- plan surface --------------------------------------------------------

    def children(self) -> tuple[PhysicalOperator, ...]:
        # One representative partition pipeline (they are isomorphic), plus
        # the serial tail for the nest strategy.
        representative = (self._partition_roots[0],)
        if self._tail_root is not None:
            return (self._tail_root,) + representative
        return representative

    def describe(self) -> str:
        return (
            f"Gather({self.strategy}/{self.mode}"
            f"{', aligned' if self.aligned else ''}, "
            f"partitions={len(self._partition_roots)}, "
            f"workers={self.num_workers})"
        )

    def rows(self) -> Iterator[Env]:  # pragma: no cover - roots use value()
        yield {"__result": self.value()}

    # -- execution -----------------------------------------------------------

    def _run_partition(self, index: int) -> Any:
        context = self._worker_contexts[index]
        # Expression closures read thread-local runtime state; bind this
        # worker thread to its partition's evaluator before running.
        if context._compiler is not None:
            context._compiler.activate(context._terms, context.database)
        root = self._partition_roots[index]
        if self.strategy == "reduce":
            return root.partial_value()
        if self.aligned:
            return root._groups()
        return root.accumulate(raw=True)

    def value(self) -> Any:
        governor = self._context.governor
        if governor is not None:
            governor.enable_sharing()
        count = len(self._partition_roots)
        partials: list[Any] = [None] * count
        errors: list[BaseException | None] = [None] * count
        with ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="repro-exchange"
        ) as pool:
            futures = [
                pool.submit(self._run_partition, index)
                for index in range(count)
            ]
            for index, future in enumerate(futures):
                try:
                    partials[index] = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors[index] = exc
        # The pool context manager has drained every worker here.  Error
        # priority: a governor trip always surfaces (whether *this* worker
        # or a sibling crossed the shared budget is scheduling-dependent,
        # but *whether the query trips* is not — total work is fixed), then
        # the first partition's error, which under range partitioning is
        # the error a serial run would have reached first.
        if self._context._compiler is not None:
            # Rebind the coordinator thread: worker-context construction
            # and partition runs may have left another evaluator active.
            self._context._compiler.activate(
                self._context._terms, self._context.database
            )
        for exc in errors:
            if isinstance(exc, GovernorError):
                raise exc
        for exc in errors:
            if exc is not None:
                raise exc
        if self.strategy == "reduce":
            return self._account(self._merge_reduce(partials))
        return self._account(self._merge_nest(partials))

    def _merge_reduce(self, partials: list[list]) -> Any:
        monoid = self.monoid
        if isinstance(monoid, CollectionMonoid):
            elements: list = []
            for part in partials:
                elements.extend(part)
            return monoid.fold_elements(elements)
        return _fold_serial(monoid, (v for part in partials for v in part))

    def _merge_nest(self, partials: list) -> Any:
        nest = self._nest_node
        nest_monoid = nest.monoid
        if self.aligned:
            # Workers returned finalized (env, value) group rows and no
            # group spans partitions: concatenate in partition order.
            group_rows = [row for part in partials for row in part]
        else:
            merged: dict[Any, list] = {}
            order: list[Any] = []
            envs: dict[Any, Env] = {}
            for part_order, part_groups, part_envs in partials:
                for key in part_order:
                    if key in merged:
                        merged[key].extend(part_groups[key])
                    else:
                        merged[key] = part_groups[key]
                        envs[key] = part_envs[key]
                        order.append(key)
            if isinstance(nest_monoid, CollectionMonoid):
                fold = nest_monoid.fold_elements
                group_rows = [(envs[key], fold(merged[key])) for key in order]
            else:
                group_rows = [
                    (envs[key], _fold_serial(nest_monoid, merged[key]))
                    for key in order
                ]
        out_var = nest.out_var
        self._tail_source.feed(
            [{**env, out_var: value} for env, value in group_rows]
        )
        return self._tail_root.value()

    def _account(self, result: Any) -> Any:
        self.rows_produced = (
            len(result) if isinstance(result, CollectionValue) else 1
        )
        return result


def _fold_serial(monoid, values) -> Any:
    """The serial primitive-monoid fold: NULL-skip, lift, merge in element
    order, finalize — exactly PReduce.value's loop, replayed over the
    partition-order concatenation so arithmetic matches serial execution
    bit for bit under range partitioning."""
    merge = monoid.merge
    lift = monoid.lift
    accumulator = monoid.zero
    for value in values:
        if value is NULL:
            continue
        accumulator = merge(accumulator, lift(value))
    return monoid.finalize(accumulator)
