"""Physical planner: logical algebra → executable physical plans.

The planner performs the access-path / algorithm assignment step of the
paper's Section 6 optimizer ("126 lines for translating algebraic forms into
physical plans"):

* (outer-)joins whose predicate contains equi-conjuncts — ``f(left-vars) =
  g(right-vars)`` — become **hash joins** on those keys with the remaining
  conjuncts as a residual predicate; everything else falls back to nested
  loops.  This is precisely the optimization the paper's QUERY E discussion
  motivates ("the resulting outer-joins would both be assigned equality
  predicates, thus making them more efficient").
* nests become single-pass hash grouping;
* selections, maps, unnests, reduces map one-to-one.

``PlannerOptions.hash_joins`` turns key extraction off, which the benchmark
suite uses to separate "unnesting removes recomputation" from "unnesting
enables hash joins".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.algebra.operators import (
    Eval,
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.evaluator import ExtentProvider
from repro.calculus.terms import BinOp, Proj, Term, Var, conj, conjuncts, free_vars
from repro.engine.batch import DEFAULT_BATCH_SIZE
from repro.engine.compile import ExprCompiler
from repro.engine.physical import (
    PEval,
    PHashJoin,
    PIndexScan,
    PHashNest,
    PMap,
    PNestedLoopJoin,
    PReduce,
    PScan,
    PSeed,
    PSelect,
    PUnnest,
    PhysicalOperator,
    _Context,
)


@dataclass(frozen=True)
class PlannerOptions:
    """Knobs for physical planning (used by the ablation benchmarks)."""

    hash_joins: bool = True
    index_scans: bool = True
    #: Prefer sort-merge over hash for single-key equi-joins.  Keys must be
    #: totally ordered values (numbers or strings).
    merge_joins: bool = False
    #: Lower expression trees to native Python closures (repro.engine.compile)
    #: instead of interpreting the AST per row.
    compiled_exprs: bool = True
    #: Pass columnar chunks between operators and evaluate expressions with
    #: tier-3 batch kernels.  Requires ``compiled_exprs``; interpreted runs
    #: silently stay on the row path.
    batched_exec: bool = True
    #: Rows per chunk on the batch path.
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Partition the driving extent scan and run partition-local pipelines
    #: in a worker pool (repro.engine.exchange).  Plans whose shape does
    #: not partition fall back to serial execution transparently.
    parallel: bool = False
    #: Worker/partition count for parallel execution; 0 means one per
    #: visible core, capped (see repro.engine.exchange.resolve_workers).
    num_workers: int = 0


def plan_physical(
    plan: Operator,
    database: ExtentProvider,
    options: PlannerOptions | None = None,
    params: Mapping[str, Any] | None = None,
    profile: bool = False,
    compiler: "ExprCompiler | None" = None,
    governor: Any | None = None,
) -> PhysicalOperator:
    """Translate a logical plan into a physical plan bound to *database*.

    *params* supplies values for any :class:`~repro.calculus.terms.Param`
    placeholders in the plan's expressions (prepared-statement execution).
    *profile* makes operators time their expression evaluation (EXPLAIN
    ANALYZE).  *compiler* reuses a caller-owned :class:`ExprCompiler` so its
    memoized closures survive across executions (the plan cache passes the
    one stored on ``CompiledQuery``).  *governor* is an optional
    :class:`repro.engine.governor.Governor` ticked from every operator loop
    of this execution.
    """
    options = options or PlannerOptions()
    if options.parallel:
        # Imported lazily: exchange depends on this module's _build.
        from repro.engine.exchange import try_parallel_plan

        gathered = try_parallel_plan(
            plan,
            database,
            options,
            params=params,
            profile=profile,
            compiler=compiler,
            governor=governor,
        )
        if gathered is not None:
            return gathered
    context = _Context(
        database,
        params,
        compiled_exprs=options.compiled_exprs,
        profile=profile,
        compiler=compiler,
        governor=governor,
        batched_exec=options.batched_exec,
        batch_size=options.batch_size,
    )
    return _build(plan, context, options)


def execute(
    plan: Operator,
    database: ExtentProvider,
    options: PlannerOptions | None = None,
    params: Mapping[str, Any] | None = None,
):
    """Plan and run a logical plan, returning its value."""
    physical = plan_physical(plan, database, options, params)
    from repro.engine.exchange import PGather

    if not isinstance(physical, (PReduce, PEval, PGather)):
        raise TypeError("a complete plan must be rooted at Reduce or Eval")
    return physical.value()


def _build(
    plan: Operator, context: _Context, options: PlannerOptions
) -> PhysicalOperator:
    # Exchange-layer logical nodes carry their own physical construction
    # (they wrap pre-built operators the planner cannot re-derive).
    build = getattr(plan, "build_physical", None)
    if build is not None:
        return build(context)
    if isinstance(plan, Seed):
        return PSeed()
    if isinstance(plan, Scan):
        partition = getattr(plan, "partition", None)
        if partition is not None:
            from repro.engine.exchange import PPartitionScan

            return PPartitionScan(context, plan.extent, plan.var, partition)
        return PScan(context, plan.extent, plan.var)
    if isinstance(plan, Select):
        # ``type is`` not isinstance: a PartitionedScan child must keep its
        # partition restriction, which an index scan would bypass.
        if options.index_scans and type(plan.child) is Scan:
            indexed = _try_index_scan(plan, plan.child, context)
            if indexed is not None:
                return indexed
        return PSelect(context, _build(plan.child, context, options), plan.pred)
    if isinstance(plan, Map):
        return PMap(context, _build(plan.child, context, options), plan.bindings)
    if isinstance(plan, (Join, OuterJoin)):
        return _build_join(plan, context, options)
    if isinstance(plan, Unnest):
        return PUnnest(
            context,
            _build(plan.child, context, options),
            plan.path,
            plan.var,
            plan.pred,
            outer=False,
        )
    if isinstance(plan, OuterUnnest):
        return PUnnest(
            context,
            _build(plan.child, context, options),
            plan.path,
            plan.var,
            plan.pred,
            outer=True,
        )
    if isinstance(plan, Nest):
        return PHashNest(
            context,
            _build(plan.child, context, options),
            plan.monoid,
            plan.head,
            plan.group_by,
            plan.null_vars,
            plan.out_var,
            plan.pred,
        )
    if isinstance(plan, Reduce):
        return PReduce(
            context, _build(plan.child, context, options), plan.monoid, plan.head, plan.pred
        )
    if isinstance(plan, Eval):
        return PEval(context, _build(plan.child, context, options), plan.expr)
    raise TypeError(f"cannot plan {type(plan).__name__}")


def split_equi_conjuncts(
    pred: Term, left_columns: tuple[str, ...], right_columns: tuple[str, ...]
) -> tuple[list[tuple[Term, Term]], list[Term]]:
    """Split a join predicate into (left-key, right-key) pairs + residual.

    A conjunct qualifies when it is an equality with one side over the left
    columns only and the other over the right columns only.
    """
    left_set, right_set = set(left_columns), set(right_columns)
    keys: list[tuple[Term, Term]] = []
    residual: list[Term] = []
    for part in conjuncts(pred):
        if isinstance(part, BinOp) and part.op == "==":
            sides = (part.left, part.right)
            for a, b in (sides, sides[::-1]):
                a_vars, b_vars = free_vars(a), free_vars(b)
                if a_vars and b_vars and a_vars <= left_set and b_vars <= right_set:
                    keys.append((a, b))
                    break
            else:
                residual.append(part)
        else:
            residual.append(part)
    return keys, residual


def _try_index_scan(
    select: Select, scan: Scan, context: _Context
) -> PhysicalOperator | None:
    """Convert ``σ_{v.attr = const}(Scan X)`` into an index scan when the
    database has an index on ``X.attr``.  Remaining conjuncts stay as a
    residual selection."""
    database = context.database
    if not hasattr(database, "has_index"):
        return None
    parts = conjuncts(select.pred)
    for index, part in enumerate(parts):
        if not (isinstance(part, BinOp) and part.op == "=="):
            continue
        for attr_side, key_side in ((part.left, part.right), (part.right, part.left)):
            if free_vars(key_side):
                continue  # the key must be a constant expression
            if not (
                isinstance(attr_side, Proj)
                and attr_side.expr == Var(scan.var)
                and database.has_index(scan.extent, attr_side.attr)
            ):
                continue
            access: PhysicalOperator = PIndexScan(
                context, scan.extent, scan.var, attr_side.attr, key_side
            )
            residual = parts[:index] + parts[index + 1 :]
            if residual:
                return PSelect(context, access, conj(*residual))
            return access
    return None


def _build_join(
    plan: Join | OuterJoin, context: _Context, options: PlannerOptions
) -> PhysicalOperator:
    outer = isinstance(plan, OuterJoin)
    left = _build(plan.left, context, options)
    right = _build(plan.right, context, options)
    right_columns = plan.right.columns()
    if options.hash_joins or options.merge_joins:
        keys, residual = split_equi_conjuncts(
            plan.pred, plan.left.columns(), right_columns
        )
        if options.merge_joins and len(keys) == 1:
            from repro.engine.physical import PMergeJoin

            (left_key, right_key), = keys
            return PMergeJoin(
                context,
                left,
                right,
                left_key,
                right_key,
                conj(*residual),
                right_columns,
                outer,
            )
        if keys and options.hash_joins:
            return PHashJoin(
                context,
                left,
                right,
                tuple(k for k, _ in keys),
                tuple(k for _, k in keys),
                conj(*residual),
                right_columns,
                outer,
            )
    return PNestedLoopJoin(context, left, right, plan.pred, right_columns, outer)
