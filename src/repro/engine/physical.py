"""Physical (executable) operators — the iterator-model engine.

The paper's prototype translates algebraic forms into "physical plans that
are evaluated in memory" (Section 6).  This module provides those physical
algorithms:

* pipelined scan / select / map / unnest operators;
* **nested-loop** and **hash** implementations of join and left outer-join
  (the planner picks hash when it can extract equi-join keys — the very
  optimization the paper says unnesting enables for QUERY E);
* hash-based grouping for the nest operator (single pass);
* streaming reduce with quantifier short-circuiting.

Each operator exposes ``rows()`` (an iterator of environments) and counts
the tuples it produces, so executions can be compared by work performed as
well as by wall-clock time.

Expression evaluation is pluggable: by default every select predicate, map
head, join key, unnest path, and reduce accumulator is **compiled** to a
native Python closure (:mod:`repro.engine.compile`) when the operator is
built, so the per-row cost is a cascade of direct calls instead of an AST
walk.  With ``compiled_exprs=False`` the operators evaluate the same terms
through the calculus interpreter — the historical behaviour, kept as the
differential baseline.  Blocking operators (hash join build side, sort-merge
right side, nested-loop inner, hash-nest grouping) memoize their build work
on the first ``rows()`` entry, so re-entering a restartable stream does not
redo it.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Mapping

from repro.calculus.evaluator import EvaluationError, Evaluator as TermEvaluator, ExtentProvider
from repro.calculus.monoids import CollectionMonoid, Monoid
from repro.calculus.terms import Const, Term
from repro.data.values import (
    NULL,
    CollectionValue,
    identity_key,
    identity_sort_key,
    is_null,
)
from repro.engine.compile import CompiledExpr, ExprCompiler
from repro.engine.governor import (
    SAMPLE_STRIDE,
    estimate_buffer_bytes,
    estimate_bytes,
)

Env = dict[str, Any]

#: Batch threshold for ungoverned loops: a local counter compared against
#: this never settles, so the hot path pays one increment and one compare.
_NO_BATCH = 2**63

#: ``n & _STRIDE_MASK == 0`` selects one row per SAMPLE_STRIDE (a power of
#: two) — a bitwise test, cheaper than modulo in the buffering loops.
_STRIDE_MASK = SAMPLE_STRIDE - 1
assert SAMPLE_STRIDE & _STRIDE_MASK == 0, "SAMPLE_STRIDE must be a power of two"


class PhysicalOperator:
    """Base class: a restartable stream of environments."""

    def __init__(self) -> None:
        self.rows_produced = 0
        #: Wall time spent evaluating this operator's expressions, in ms.
        #: Only accumulated when the execution context profiles evaluation
        #: (EXPLAIN ANALYZE); stays 0.0 otherwise.
        self.eval_ms = 0.0
        self._exprs: list[CompiledExpr] = []

    def rows(self) -> Iterator[Env]:
        raise NotImplementedError

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def name(self) -> str:
        return type(self).__name__.removeprefix("P")

    def explain(self, indent: int = 0) -> str:
        """An EXPLAIN-style rendering of the physical plan."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.name()

    def total_rows(self) -> int:
        """Rows produced by this operator and everything below it."""
        return self.rows_produced + sum(c.total_rows() for c in self.children())

    # -- expression binding --------------------------------------------------

    def eval_mode(self) -> str:
        """How this operator's expressions execute.

        ``"compiled"`` — every AST node lowered to a native closure;
        ``"mixed"`` — some subtrees fell back to the interpreter;
        ``"interpreted"`` — everything runs through the interpreter
        (``compiled_exprs=False``); ``""`` — the operator evaluates no
        expressions (scans, seeds).
        """
        if not self._exprs:
            return ""
        compiled = sum(e.compiled_nodes for e in self._exprs)
        fallback = sum(e.fallback_nodes for e in self._exprs)
        if fallback == 0:
            return "compiled"
        if compiled == 0:
            return "interpreted"
        return "mixed"

    def _bind(self, context: "_Context", compiled: CompiledExpr):
        """Register a compiled expression; wrap it with a timer when the
        context profiles evaluation (EXPLAIN ANALYZE)."""
        self._exprs.append(compiled)
        fn = compiled.fn
        if not context.profile:
            return fn
        perf_counter = time.perf_counter

        def timed(env: Env) -> Any:
            start = perf_counter()
            try:
                return fn(env)
            finally:
                self.eval_ms += (perf_counter() - start) * 1000.0

        return timed

    def _expr(self, context: "_Context", term: Term):
        return self._bind(context, context.expr(term))

    def _pred(self, context: "_Context", term: Term):
        return self._bind(context, context.pred(term))


class _Context:
    """Shared per-execution state: the database, a term evaluator, the bound
    prepared-statement parameters (``:name`` placeholder values), the
    expression compiler (or None when running interpreted), and the optional
    per-execution :class:`~repro.engine.governor.Governor`."""

    def __init__(
        self,
        database: ExtentProvider,
        params: Mapping[str, Any] | None = None,
        compiled_exprs: bool = True,
        profile: bool = False,
        compiler: ExprCompiler | None = None,
        governor: Any | None = None,
    ):
        self.database = database
        self.params = dict(params) if params else {}
        self.profile = profile
        self.governor = governor
        self._terms = TermEvaluator(database, self.params, governor=governor)
        if compiled_exprs:
            self._compiler = compiler if compiler is not None else ExprCompiler()
            self._compiler.activate(self._terms, database)
        else:
            self._compiler = None

    def batch(self) -> int:
        """The initial work-unit batch for a ``rows()`` loop.

        Governed loops count work units in a local integer and settle every
        *batch* units via ``governor.tick_many`` (see
        :meth:`repro.engine.governor.Governor.batch`); ungoverned loops get
        :data:`_NO_BATCH`, a threshold the counter never reaches, so both
        paths pay only a local increment and comparison per unit.
        """
        governor = self.governor
        return governor.batch() if governor is not None else _NO_BATCH

    def charge_fn(self):
        """The governor's byte-accounting hook for blocking operators, or
        None when ungoverned or no memory budget is set (the shallow size
        estimation is only worth paying when a budget can trip)."""
        governor = self.governor
        if governor is None or governor.max_bytes is None:
            return None
        return governor.charge

    def value(self, term: Term, env: Env) -> Any:
        return self._terms.evaluate(term, env)

    def holds(self, pred: Term, env: Env) -> bool:
        result = self.value(pred, env)
        if result is True:
            return True
        if result is False or is_null(result):
            return False
        raise EvaluationError("predicate did not evaluate to a boolean")

    def expr(self, term: Term) -> CompiledExpr:
        """A value-producing evaluator for *term* (compiled when enabled)."""
        if self._compiler is not None:
            return self._compiler.compile(term)
        evaluate = self._terms.evaluate

        def run(env: Env) -> Any:
            return evaluate(term, env)

        return CompiledExpr(run, term, 0, 1)

    def pred(self, term: Term) -> CompiledExpr:
        """A strict-boolean evaluator for *term*: NULL filters as False."""
        if self._compiler is not None:
            return self._compiler.compile_predicate(term)
        evaluate = self._terms.evaluate

        def run(env: Env) -> bool:
            result = evaluate(term, env)
            if result is True:
                return True
            if result is False or is_null(result):
                return False
            raise EvaluationError("predicate did not evaluate to a boolean")

        return CompiledExpr(run, term, 0, 1)


class PScan(PhysicalOperator):
    """Sequential scan of a class extent."""

    def __init__(self, context: _Context, extent: str, var: str):
        super().__init__()
        self._context = context
        self.extent = extent
        self.var = var

    def rows(self) -> Iterator[Env]:
        var = self.var
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        for obj in self._context.database.extent(self.extent):
            self.rows_produced += 1
            units += 1
            if units >= batch:
                governor.tick_many(units)
                units = 0
                batch = governor.batch()
            yield {var: obj}
        if governor is not None:
            governor.tick_many(units)

    def describe(self) -> str:
        return f"Scan({self.var} <- {self.extent})"


class PIndexScan(PhysicalOperator):
    """Index access path: fetch only the objects whose indexed attribute
    equals a constant key ("choosing access paths", paper Section 6).

    The key expression must be closed (no free range variables); it is
    evaluated once per execution.
    """

    def __init__(
        self, context: _Context, extent: str, var: str, attr: str, key: Term
    ):
        super().__init__()
        self._context = context
        self.extent = extent
        self.var = var
        self.attr = attr
        self.key = key
        self._key = self._expr(context, key)

    def rows(self) -> Iterator[Env]:
        value = self._key({})
        if is_null(value):
            # attr = NULL is NULL, which a filter treats as false — but the
            # index stores NULL-attributed objects under the NULL key, so a
            # raw lookup would wrongly return them.
            return
        database = self._context.database
        var = self.var
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        for obj in database.index_lookup(self.extent, self.attr, value):
            self.rows_produced += 1
            units += 1
            if units >= batch:
                governor.tick_many(units)
                units = 0
                batch = governor.batch()
            yield {var: obj}
        if governor is not None:
            governor.tick_many(units)

    def describe(self) -> str:
        return f"IndexScan({self.var} <- {self.extent} on {self.attr} = {self.key})"


class PSeed(PhysicalOperator):
    """The singleton empty-environment stream."""

    def rows(self) -> Iterator[Env]:
        self.rows_produced += 1
        yield {}


class PSelect(PhysicalOperator):
    """Pipelined selection."""

    def __init__(self, context: _Context, child: PhysicalOperator, pred: Term):
        super().__init__()
        self._context = context
        self.child = child
        self.pred = pred
        self._holds = self._pred(context, pred)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        holds = self._holds
        for env in self.child.rows():
            if holds(env):
                self.rows_produced += 1
                yield env

    def describe(self) -> str:
        return f"Select({self.pred})"


class PMap(PhysicalOperator):
    """Pipelined computed-column extension."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        bindings: tuple[tuple[str, Term], ...],
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.bindings = bindings
        self._compiled_bindings = tuple(
            (name, self._expr(context, expr)) for name, expr in bindings
        )

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        bindings = self._compiled_bindings
        for env in self.child.rows():
            extended = dict(env)
            for name, fn in bindings:
                extended[name] = fn(extended)
            self.rows_produced += 1
            yield extended

    def describe(self) -> str:
        inner = ", ".join(f"{n}={e}" for n, e in self.bindings)
        return f"Map({inner})"


class PNestedLoopJoin(PhysicalOperator):
    """Block nested-loop (outer-)join: the fallback join algorithm.

    The inner (right) input is materialized once per execution — not once
    per ``rows()`` entry — so a re-entered stream does not re-run the
    build side.
    """

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        pred: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.pred = pred
        self.right_columns = right_columns
        self.outer = outer
        self._holds = self._pred(context, pred)
        self._right_rows: list[Env] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Env]:
        if self._right_rows is None:
            charge = self._context.charge_fn()
            if charge is None:
                self._right_rows = list(self.right.rows())
            else:
                materialized = []
                for nb, env in enumerate(self.right.rows()):
                    if not nb & _STRIDE_MASK:
                        # One row stands for its whole stride: rows in a
                        # buffer share a shape, and charging the stride up
                        # front keeps the estimator off the per-row path.
                        charge(estimate_bytes(env) * SAMPLE_STRIDE)
                    materialized.append(env)
                self._right_rows = materialized
        right_rows = self._right_rows
        holds = self._holds
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        padding = {col: NULL for col in self.right_columns}
        for left_env in self.left.rows():
            matched = False
            for right_env in right_rows:
                # Every pair considered is a work unit: a cross-join blowup
                # is charged here even when it emits almost nothing.
                units += 1
                if units >= batch:
                    governor.tick_many(units)
                    units = 0
                    batch = governor.batch()
                env = {**left_env, **right_env}
                if holds(env):
                    matched = True
                    self.rows_produced += 1
                    yield env
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}
        if governor is not None:
            governor.tick_many(units)

    def describe(self) -> str:
        kind = "OuterNLJoin" if self.outer else "NLJoin"
        return f"{kind}({self.pred})"


class PHashJoin(PhysicalOperator):
    """Hash (outer-)join on extracted equi-keys, with a residual predicate.

    The build-side hash table is constructed on the first ``rows()`` entry
    and reused by re-entries (e.g. when this join is the inner of a nested
    loop), so the build input's rows are produced exactly once per
    execution.
    """

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: tuple[Term, ...],
        right_keys: tuple[Term, ...],
        residual: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.right_columns = right_columns
        self.outer = outer
        self._left_key_fns = tuple(self._expr(context, k) for k in left_keys)
        self._right_key_fns = tuple(self._expr(context, k) for k in right_keys)
        self._holds = self._pred(context, residual)
        self._table: dict[tuple[Any, ...], list[Env]] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _build_table(self) -> dict[Any, list[Env]]:
        # Keys are wrapped with identity_key so that `=` on stored objects
        # matches hash-probe semantics to apply_binop's identity equality.
        # Single-key joins (the common case) use the bare key — no tuple
        # allocation per row; probes below agree on the representation.
        table: dict[Any, list[Env]] = {}
        key_fns = self._right_key_fns
        charge = self._context.charge_fn()
        if len(key_fns) == 1 and charge is None:
            (key_fn,) = key_fns
            for right_env in self.right.rows():
                key = identity_key(key_fn(right_env))
                table.setdefault(key, []).append(right_env)
            return table
        single = key_fns[0] if len(key_fns) == 1 else None
        for nb, right_env in enumerate(self.right.rows()):
            if single is not None:
                key = identity_key(single(right_env))
            else:
                key = tuple(identity_key(fn(right_env)) for fn in key_fns)
            if charge is not None and not nb & _STRIDE_MASK:
                # Sampled: one row charges for its whole stride.
                charge(estimate_bytes(right_env) * SAMPLE_STRIDE)
            table.setdefault(key, []).append(right_env)
        return table

    def rows(self) -> Iterator[Env]:
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        if self._table is None:
            self._table = self._build_table()
        table = self._table
        key_fns = self._left_key_fns
        holds = self._holds
        padding = {col: NULL for col in self.right_columns}
        single = len(key_fns) == 1
        if single:
            (key_fn,) = key_fns
        for left_env in self.left.rows():
            if single:
                value = key_fn(left_env)
                null_key = value is NULL
                key = identity_key(value)
            else:
                values = tuple(fn(left_env) for fn in key_fns)
                null_key = any(part is NULL for part in values)
                key = tuple(identity_key(v) for v in values)
            matched = False
            if not null_key:
                for right_env in table.get(key, ()):
                    units += 1
                    if units >= batch:
                        governor.tick_many(units)
                        units = 0
                        batch = governor.batch()
                    env = {**left_env, **right_env}
                    if holds(env):
                        matched = True
                        self.rows_produced += 1
                        yield env
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}
        if governor is not None:
            governor.tick_many(units)

    def describe(self) -> str:
        kind = "HashOuterJoin" if self.outer else "HashJoin"
        keys = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        if self.residual != Const(True):
            return f"{kind}({keys}; residual {self.residual})"
        return f"{kind}({keys})"


class PMergeJoin(PhysicalOperator):
    """Sort-merge (outer-)join on a single equi-key.

    Both inputs are materialized, NULL keys filtered symmetrically on both
    sides (a NULL never equi-joins; left-side NULL rows still pad on an
    outer join), and the survivors sorted by a total-order wrapper
    (``identity_sort_key``) that ranks mixed-type keys instead of raising
    TypeError.  Duplicate key runs produce the cross product of the runs;
    within a run the *raw* identity keys are re-checked, since the sort
    wrapper's order is coarser than key equality.  The planner only selects
    this algorithm when asked to (``PlannerOptions.merge_joins``).  The
    sorted right side is built once per execution and reused on re-entry.
    """

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key: Term,
        right_key: Term,
        residual: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.right_columns = right_columns
        self.outer = outer
        self._left_key_fn = self._expr(context, left_key)
        self._right_key_fn = self._expr(context, right_key)
        self._holds = self._pred(context, residual)
        self._right_rows: list[tuple] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _keyed(self, source: PhysicalOperator, key_fn) -> Iterator[tuple]:
        # (sort wrapper, identity key, env) per row; NULL keys are filtered
        # symmetrically — a NULL key never equi-joins on either side.
        for env in source.rows():
            value = key_fn(env)
            if is_null(value):
                yield None, None, env
            else:
                key = identity_key(value)
                yield identity_sort_key(key), key, env

    def rows(self) -> Iterator[Env]:
        charge = self._context.charge_fn()
        if self._right_rows is None:
            right_rows = [
                row
                for row in self._keyed(self.right, self._right_key_fn)
                if row[0] is not None
            ]
            right_rows.sort(key=lambda row: row[0])
            if charge is not None:
                charge(estimate_buffer_bytes(right_rows, get=lambda r: r[2]))
            self._right_rows = right_rows
        right_rows = self._right_rows
        left_rows = list(self._keyed(self.left, self._left_key_fn))
        if charge is not None:
            charge(estimate_buffer_bytes(left_rows, get=lambda r: r[2]))
        nullish = [env for wrapper, _, env in left_rows if wrapper is None]
        sortable = [row for row in left_rows if row[0] is not None]
        sortable.sort(key=lambda row: row[0])
        padding = {col: NULL for col in self.right_columns}
        holds = self._holds
        governor = self._context.governor
        units = 0
        batch = self._context.batch()

        index = 0
        for wrapper, key, left_env in sortable:
            while index < len(right_rows) and right_rows[index][0] < wrapper:
                index += 1
            matched = False
            probe = index
            while probe < len(right_rows) and right_rows[probe][0] == wrapper:
                units += 1
                if units >= batch:
                    governor.tick_many(units)
                    units = 0
                    batch = governor.batch()
                # Wrapper equality is coarser than key equality: confirm on
                # the raw identity keys before pairing.
                if right_rows[probe][1] == key:
                    env = {**left_env, **right_rows[probe][2]}
                    if holds(env):
                        matched = True
                        self.rows_produced += 1
                        yield env
                probe += 1
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}
        if governor is not None:
            governor.tick_many(units)
        if self.outer:
            for left_env in nullish:
                self.rows_produced += 1
                yield {**left_env, **padding}

    def describe(self) -> str:
        kind = "MergeOuterJoin" if self.outer else "MergeJoin"
        return f"{kind}({self.left_key} = {self.right_key})"


class PUnnest(PhysicalOperator):
    """Pipelined (outer-)unnest of a collection-valued path."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        path: Term,
        var: str,
        pred: Term,
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.path = path
        self.var = var
        self.pred = pred
        self.outer = outer
        self._path_fn = self._expr(context, path)
        self._holds = self._pred(context, pred)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        path_fn = self._path_fn
        holds = self._holds
        var = self.var
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        for env in self.child.rows():
            value = path_fn(env)
            matched = False
            if not is_null(value):
                if not isinstance(value, CollectionValue):
                    raise EvaluationError(
                        f"unnest path evaluated to {type(value).__name__}"
                    )
                for element in value.elements():
                    units += 1
                    if units >= batch:
                        governor.tick_many(units)
                        units = 0
                        batch = governor.batch()
                    extended = {**env, var: element}
                    if holds(extended):
                        matched = True
                        self.rows_produced += 1
                        yield extended
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**env, var: NULL}
        if governor is not None:
            governor.tick_many(units)

    def describe(self) -> str:
        kind = "OuterUnnest" if self.outer else "Unnest"
        return f"{kind}({self.var} <- {self.path})"


class PHashNest(PhysicalOperator):
    """Hash-based grouping implementation of the nest operator.

    Grouping is a blocking operation: the child stream is consumed and the
    groups accumulated on the first ``rows()`` entry, then replayed by any
    re-entry without re-running the child.
    """

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        monoid: Monoid,
        head: Term,
        group_by: tuple[str, ...],
        null_vars: tuple[str, ...],
        out_var: str,
        pred: Term,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.monoid = monoid
        self.head = head
        self.group_by = group_by
        self.null_vars = null_vars
        self.out_var = out_var
        self.pred = pred
        self._head_fn = self._expr(context, head)
        self._holds = self._pred(context, pred)
        self._group_rows: list[tuple[Env, Any]] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _build_groups(self) -> list[tuple[Env, Any]]:
        monoid = self.monoid
        merge = monoid.merge
        head_fn = self._head_fn
        holds = self._holds
        group_by = self.group_by
        null_vars = self.null_vars
        groups: dict[tuple[Any, ...], Any] = {}
        order: list[tuple[Any, ...]] = []
        group_envs: dict[tuple[Any, ...], Env] = {}
        collection = isinstance(monoid, CollectionMonoid)
        lift = monoid.lift
        charge = self._context.charge_fn()
        buffered = 0
        single = group_by[0] if len(group_by) == 1 else None
        for env in self.child.rows():
            # Identity-aware grouping: distinct stored objects with equal
            # state must form distinct groups (see algebra evaluator _nest).
            if single is not None:
                key = identity_key(env[single])
            else:
                key = tuple(identity_key(env[col]) for col in group_by)
            if key not in groups:
                # Collection groups accumulate into a plain list and build
                # the collection once at the end (per-row immutable merges
                # would copy the accumulator every row).
                groups[key] = [] if collection else monoid.zero
                order.append(key)
                group_envs[key] = {col: env[col] for col in group_by}
            if null_vars and any(env[col] is NULL for col in null_vars):
                continue
            if not holds(env):
                continue
            value = head_fn(env)
            if collection:
                if charge is not None:
                    if not buffered & _STRIDE_MASK:
                        # Sampled: one value charges for its whole stride.
                        charge(estimate_bytes(value) * SAMPLE_STRIDE)
                    buffered += 1
                groups[key].append(value)
            elif value is not NULL:
                groups[key] = merge(groups[key], lift(value))
        if collection:
            fold = monoid.fold_elements
            return [(group_envs[key], fold(groups[key])) for key in order]
        finalize = monoid.finalize
        return [(group_envs[key], finalize(groups[key])) for key in order]

    def rows(self) -> Iterator[Env]:
        if self._group_rows is None:
            self._group_rows = self._build_groups()
        out_var = self.out_var
        for group_env, result in self._group_rows:
            self.rows_produced += 1
            yield {**group_env, out_var: result}

    def describe(self) -> str:
        group = ",".join(self.group_by) or "()"
        return f"HashNest({self.monoid.name} -> {self.out_var} by {group})"


class PReduce(PhysicalOperator):
    """Streaming reduce; short-circuits the boolean quantifier monoids."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        monoid: Monoid,
        head: Term,
        pred: Term,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.monoid = monoid
        self.head = head
        self.pred = pred
        self._head_fn = self._expr(context, head)
        self._holds = self._pred(context, pred)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:  # pragma: no cover - roots use value()
        yield {"__result": self.value()}

    def value(self) -> Any:
        monoid = self.monoid
        merge = monoid.merge
        head_fn = self._head_fn
        holds = self._holds
        if isinstance(monoid, CollectionMonoid):
            # One-pass bulk construction instead of per-row immutable
            # merges (which copy the whole accumulator every row).
            result = monoid.fold_elements(
                head_fn(env) for env in self.child.rows() if holds(env)
            )
            return self._account(result)
        result = monoid.zero
        lift = monoid.lift
        is_all = monoid.name == "all"
        is_some = monoid.name == "some"
        for env in self.child.rows():
            if not holds(env):
                continue
            head = head_fn(env)
            if head is NULL:
                continue
            result = merge(result, lift(head))
            if is_all and result is False:
                return self._account(False)
            if is_some and result is True:
                return self._account(True)
        return self._account(monoid.finalize(result))

    def _account(self, result: Any) -> Any:
        # EXPLAIN ANALYZE accounting: the root "produces" the result — one
        # row per element of a collection result, one row for a scalar.
        self.rows_produced = (
            len(result) if isinstance(result, CollectionValue) else 1
        )
        return result

    def describe(self) -> str:
        return f"Reduce({self.monoid.name} / {self.head})"


class PEval(PhysicalOperator):
    """Root for non-comprehension queries: expression over one tuple."""

    def __init__(self, context: _Context, child: PhysicalOperator, expr: Term):
        super().__init__()
        self._context = context
        self.child = child
        self.expr = expr
        self._expr_fn = self._expr(context, expr)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:  # pragma: no cover - roots use value()
        yield {"__result": self.value()}

    def value(self) -> Any:
        envs = list(self.child.rows())
        if len(envs) != 1:
            raise EvaluationError(
                f"Eval root expected exactly one row, got {len(envs)}"
            )
        result = self._expr_fn(envs[0])
        self.rows_produced = (
            len(result) if isinstance(result, CollectionValue) else 1
        )
        return result

    def describe(self) -> str:
        return f"Eval({self.expr})"
