"""Physical (executable) operators — the iterator-model engine.

The paper's prototype translates algebraic forms into "physical plans that
are evaluated in memory" (Section 6).  This module provides those physical
algorithms:

* pipelined scan / select / map / unnest operators;
* **nested-loop** and **hash** implementations of join and left outer-join
  (the planner picks hash when it can extract equi-join keys — the very
  optimization the paper says unnesting enables for QUERY E);
* hash-based grouping for the nest operator (single pass);
* streaming reduce with quantifier short-circuiting.

Each operator exposes ``rows()`` (an iterator of environments) and counts
the tuples it produces, so executions can be compared by work performed as
well as by wall-clock time.

**Batch execution** (``PlannerOptions.batched_exec``, default on): operators
additionally expose ``batches()``, a stream of columnar
:class:`~repro.engine.batch.Chunk` blocks.  Scan, select, map, unnest, the
hash-join probe, hash-nest, and reduce have native batch paths driven by
tier-3 kernels (:meth:`~repro.engine.compile.ExprCompiler.compile_kernel`):
one native call evaluates a predicate/projection/join key over a whole
chunk.  Everything else adapts its ``rows()`` through
:func:`~repro.engine.batch.chunk_rows`, so the two protocols compose
freely.  A plan is driven through exactly one protocol per consumer edge —
``PReduce.value()`` pulls ``batches()`` when the context is batched, else
``rows()``.

The row-at-a-time path is kept byte-for-byte intact (not emulated over
batches): it is the oracle the differential fuzzer cross-checks batch
execution against on every iteration, via the ``pipeline-row-exec`` and
``pipeline-batched-exec`` paths in :mod:`repro.testing.oracle`.  Error
semantics match exactly because kernels *truncate* instead of raising —
a failure at row *t* surfaces only after the preceding rows have been
delivered, so a short-circuiting consumer (``exists`` satisfied early)
never observes an error the row path would not have reached.  Work-unit
accounting charges the same units (rows scanned, unnest elements, join
pairs considered) through the same ``tick_many`` machinery, settling once
per chunk; blocking operators keep their row-mode builds whenever a
memory budget is active so byte-charging stays stride-for-stride
identical.

Expression evaluation is pluggable: by default every select predicate, map
head, join key, unnest path, and reduce accumulator is **compiled** to a
native Python closure (:mod:`repro.engine.compile`) when the operator is
built, so the per-row cost is a cascade of direct calls instead of an AST
walk.  With ``compiled_exprs=False`` the operators evaluate the same terms
through the calculus interpreter — the historical behaviour, kept as the
differential baseline.  Blocking operators (hash join build side, sort-merge
right side, nested-loop inner, hash-nest grouping) memoize their build work
on the first ``rows()`` entry, so re-entering a restartable stream does not
redo it.
"""

from __future__ import annotations

import time
from itertools import compress
from typing import Any, Iterator, Mapping

from repro.calculus.evaluator import EvaluationError, Evaluator as TermEvaluator, ExtentProvider
from repro.calculus.monoids import CollectionMonoid, Monoid
from repro.calculus.terms import Const, Term, free_vars
from repro.data.values import (
    NULL,
    CollectionValue,
    identity_key,
    identity_sort_key,
    is_null,
)
from repro.engine.batch import DEFAULT_BATCH_SIZE, Chunk, chunk_rows
from repro.engine.compile import CompiledExpr, CompiledKernel, ExprCompiler
from repro.engine.governor import (
    SAMPLE_STRIDE,
    estimate_buffer_bytes,
    estimate_bytes,
)

Env = dict[str, Any]

#: Batch threshold for ungoverned loops: a local counter compared against
#: this never settles, so the hot path pays one increment and one compare.
_NO_BATCH = 2**63

#: ``n & _STRIDE_MASK == 0`` selects one row per SAMPLE_STRIDE (a power of
#: two) — a bitwise test, cheaper than modulo in the buffering loops.
_STRIDE_MASK = SAMPLE_STRIDE - 1
assert SAMPLE_STRIDE & _STRIDE_MASK == 0, "SAMPLE_STRIDE must be a power of two"


class PhysicalOperator:
    """Base class: a restartable stream of environments."""

    def __init__(self) -> None:
        self.rows_produced = 0
        #: Batch accounting: chunks this operator emitted and the rows they
        #: carried.  Adapter-driven operators count here too, so EXPLAIN
        #: ANALYZE shows how every operator's output was chunked.
        self.batches_produced = 0
        self.batch_rows = 0
        #: Wall time spent evaluating this operator's expressions, in ms.
        #: Only accumulated when the execution context profiles evaluation
        #: (EXPLAIN ANALYZE); stays 0.0 otherwise.
        self.eval_ms = 0.0
        self._exprs: list[CompiledExpr] = []

    def rows(self) -> Iterator[Env]:
        raise NotImplementedError

    def batches(self) -> Iterator[Chunk]:
        """Batch-at-a-time stream; default adapts ``rows()``.

        Operators without a native batch path (seeds, index scans, merge
        and nested-loop joins) stay row-driven internally and still compose
        with batch-native parents through this adapter.  ``rows()`` already
        counts ``rows_produced``, so only the batch counters move here.
        """
        context = getattr(self, "_context", None)
        size = context.batch_size if context is not None else DEFAULT_BATCH_SIZE
        for chunk in chunk_rows(self.rows(), size):
            self.batches_produced += 1
            self.batch_rows += chunk.length
            yield chunk

    def _emit_chunk(self, chunk: Chunk) -> Chunk:
        """Account a natively produced chunk (``rows()`` was bypassed)."""
        self.rows_produced += chunk.length
        self.batches_produced += 1
        self.batch_rows += chunk.length
        return chunk

    def _run_kernel(
        self, kernel: CompiledKernel, columns: Mapping[str, list], n: int
    ) -> tuple[list, int, Any]:
        """Invoke a tier-3 kernel, timing it when the context profiles."""
        if not self._context.profile:  # type: ignore[attr-defined]
            return kernel.fn(columns, n)
        start = time.perf_counter()
        try:
            return kernel.fn(columns, n)
        finally:
            self.eval_ms += (time.perf_counter() - start) * 1000.0

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def name(self) -> str:
        return type(self).__name__.removeprefix("P")

    def explain(self, indent: int = 0) -> str:
        """An EXPLAIN-style rendering of the physical plan."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.name()

    def total_rows(self) -> int:
        """Rows produced by this operator and everything below it."""
        return self.rows_produced + sum(c.total_rows() for c in self.children())

    # -- expression binding --------------------------------------------------

    def eval_mode(self) -> str:
        """How this operator's expressions execute.

        ``"compiled"`` — every AST node lowered to a native closure;
        ``"mixed"`` — some subtrees fell back to the interpreter;
        ``"interpreted"`` — everything runs through the interpreter
        (``compiled_exprs=False``); ``""`` — the operator evaluates no
        expressions (scans, seeds).
        """
        if not self._exprs:
            return ""
        compiled = sum(e.compiled_nodes for e in self._exprs)
        fallback = sum(e.fallback_nodes for e in self._exprs)
        if fallback == 0:
            return "compiled"
        if compiled == 0:
            return "interpreted"
        return "mixed"

    def _bind(self, context: "_Context", compiled: CompiledExpr):
        """Register a compiled expression; wrap it with a timer when the
        context profiles evaluation (EXPLAIN ANALYZE)."""
        self._exprs.append(compiled)
        fn = compiled.fn
        if not context.profile:
            return fn
        perf_counter = time.perf_counter

        def timed(env: Env) -> Any:
            start = perf_counter()
            try:
                return fn(env)
            finally:
                self.eval_ms += (perf_counter() - start) * 1000.0

        return timed

    def _expr(self, context: "_Context", term: Term):
        return self._bind(context, context.expr(term))

    def _pred(self, context: "_Context", term: Term):
        return self._bind(context, context.pred(term))


class _Context:
    """Shared per-execution state: the database, a term evaluator, the bound
    prepared-statement parameters (``:name`` placeholder values), the
    expression compiler (or None when running interpreted), and the optional
    per-execution :class:`~repro.engine.governor.Governor`."""

    def __init__(
        self,
        database: ExtentProvider,
        params: Mapping[str, Any] | None = None,
        compiled_exprs: bool = True,
        profile: bool = False,
        compiler: ExprCompiler | None = None,
        governor: Any | None = None,
        batched_exec: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.database = database
        self.params = dict(params) if params else {}
        self.profile = profile
        self.governor = governor
        self.batch_size = max(1, batch_size)
        self._terms = TermEvaluator(database, self.params, governor=governor)
        if compiled_exprs:
            self._compiler = compiler if compiler is not None else ExprCompiler()
            self._compiler.activate(self._terms, database)
        else:
            self._compiler = None
        #: Batch execution needs tier-3 kernels, which only exist when the
        #: expression compiler is on — interpreted runs stay pure row mode.
        self.batched = bool(batched_exec) and self._compiler is not None

    def batch(self) -> int:
        """The initial work-unit batch for a ``rows()`` loop.

        Governed loops count work units in a local integer and settle every
        *batch* units via ``governor.tick_many`` (see
        :meth:`repro.engine.governor.Governor.batch`); ungoverned loops get
        :data:`_NO_BATCH`, a threshold the counter never reaches, so both
        paths pay only a local increment and comparison per unit.
        """
        governor = self.governor
        return governor.batch() if governor is not None else _NO_BATCH

    def charge_fn(self):
        """The governor's byte-accounting hook for blocking operators, or
        None when ungoverned or no memory budget is set (the shallow size
        estimation is only worth paying when a budget can trip)."""
        governor = self.governor
        if governor is None or governor.max_bytes is None:
            return None
        return governor.charge

    def kernel(self, term: Term) -> CompiledKernel | None:
        """The tier-3 batch kernel for *term*, or None when this execution
        is not batched (operators then fall back to the rows() adapter)."""
        if not self.batched:
            return None
        return self._compiler.compile_kernel(term)

    def pred_kernel(self, term: Term) -> CompiledKernel | None:
        """The strict-boolean batch kernel for *term*, or None (as above)."""
        if not self.batched:
            return None
        return self._compiler.compile_predicate_kernel(term)

    def value(self, term: Term, env: Env) -> Any:
        return self._terms.evaluate(term, env)

    def holds(self, pred: Term, env: Env) -> bool:
        result = self.value(pred, env)
        if result is True:
            return True
        if result is False or is_null(result):
            return False
        raise EvaluationError("predicate did not evaluate to a boolean")

    def expr(self, term: Term) -> CompiledExpr:
        """A value-producing evaluator for *term* (compiled when enabled)."""
        if self._compiler is not None:
            return self._compiler.compile(term)
        evaluate = self._terms.evaluate

        def run(env: Env) -> Any:
            return evaluate(term, env)

        return CompiledExpr(run, term, 0, 1)

    def pred(self, term: Term) -> CompiledExpr:
        """A strict-boolean evaluator for *term*: NULL filters as False."""
        if self._compiler is not None:
            return self._compiler.compile_predicate(term)
        evaluate = self._terms.evaluate

        def run(env: Env) -> bool:
            result = evaluate(term, env)
            if result is True:
                return True
            if result is False or is_null(result):
                return False
            raise EvaluationError("predicate did not evaluate to a boolean")

        return CompiledExpr(run, term, 0, 1)


class PScan(PhysicalOperator):
    """Sequential scan of a class extent."""

    def __init__(self, context: _Context, extent: str, var: str):
        super().__init__()
        self._context = context
        self.extent = extent
        self.var = var

    def rows(self) -> Iterator[Env]:
        var = self.var
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        for obj in self._context.database.extent(self.extent):
            self.rows_produced += 1
            units += 1
            if units >= batch:
                governor.tick_many(units)
                units = 0
                batch = governor.batch()
            yield {var: obj}
        if governor is not None:
            governor.tick_many(units)

    def batches(self) -> Iterator[Chunk]:
        # Native path: slice the extent directly into column lists — no
        # per-row dict, no generator hop.  Unit accounting settles once per
        # chunk via tick_many, charging exactly one unit per row like the
        # row loop above.
        context = self._context
        var = self.var
        size = context.batch_size
        governor = context.governor
        items = list(context.database.extent(self.extent))
        for start in range(0, len(items), size):
            col = items[start : start + size]
            if governor is not None:
                governor.tick_many(len(col))
            yield self._emit_chunk(Chunk({var: col}, len(col)))

    def describe(self) -> str:
        return f"Scan({self.var} <- {self.extent})"


class PIndexScan(PhysicalOperator):
    """Index access path: fetch only the objects whose indexed attribute
    equals a constant key ("choosing access paths", paper Section 6).

    The key expression must be closed (no free range variables); it is
    evaluated once per execution.
    """

    def __init__(
        self, context: _Context, extent: str, var: str, attr: str, key: Term
    ):
        super().__init__()
        self._context = context
        self.extent = extent
        self.var = var
        self.attr = attr
        self.key = key
        self._key = self._expr(context, key)

    def rows(self) -> Iterator[Env]:
        value = self._key({})
        if is_null(value):
            # attr = NULL is NULL, which a filter treats as false — but the
            # index stores NULL-attributed objects under the NULL key, so a
            # raw lookup would wrongly return them.
            return
        database = self._context.database
        var = self.var
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        for obj in database.index_lookup(self.extent, self.attr, value):
            self.rows_produced += 1
            units += 1
            if units >= batch:
                governor.tick_many(units)
                units = 0
                batch = governor.batch()
            yield {var: obj}
        if governor is not None:
            governor.tick_many(units)

    def describe(self) -> str:
        return f"IndexScan({self.var} <- {self.extent} on {self.attr} = {self.key})"


class PSeed(PhysicalOperator):
    """The singleton empty-environment stream."""

    def rows(self) -> Iterator[Env]:
        self.rows_produced += 1
        yield {}


class PSelect(PhysicalOperator):
    """Pipelined selection."""

    def __init__(self, context: _Context, child: PhysicalOperator, pred: Term):
        super().__init__()
        self._context = context
        self.child = child
        self.pred = pred
        self._holds = self._pred(context, pred)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        holds = self._holds
        for env in self.child.rows():
            if holds(env):
                self.rows_produced += 1
                yield env

    def batches(self) -> Iterator[Chunk]:
        kernel = self._context.pred_kernel(self.pred)
        if kernel is None:
            yield from PhysicalOperator.batches(self)
            return
        if kernel.trivial_true:
            for chunk in self.child.batches():
                yield self._emit_chunk(chunk)
            return
        for chunk in self.child.batches():
            flags, t, err = self._run_kernel(kernel, chunk.columns, chunk.length)
            if err is None and all(flags):
                # Every row passed: pass the chunk through unchanged.
                yield self._emit_chunk(chunk)
            else:
                # flags covers rows [0, t); compress truncates each column
                # to it, dropping both failures and unevaluated rows.
                count = flags.count(True)
                if count:
                    columns = {
                        name: list(compress(col, flags))
                        for name, col in chunk.columns.items()
                    }
                    yield self._emit_chunk(Chunk(columns, count))
            if err is not None:
                raise err

    def describe(self) -> str:
        return f"Select({self.pred})"


class PMap(PhysicalOperator):
    """Pipelined computed-column extension."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        bindings: tuple[tuple[str, Term], ...],
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.bindings = bindings
        self._compiled_bindings = tuple(
            (name, self._expr(context, expr)) for name, expr in bindings
        )

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        bindings = self._compiled_bindings
        for env in self.child.rows():
            extended = dict(env)
            for name, fn in bindings:
                extended[name] = fn(extended)
            self.rows_produced += 1
            yield extended

    def batches(self) -> Iterator[Chunk]:
        context = self._context
        if not context.batched:
            yield from PhysicalOperator.batches(self)
            return
        kernels = tuple(
            (name, context.kernel(expr)) for name, expr in self.bindings
        )
        for chunk in self.child.batches():
            columns = dict(chunk.columns)
            n = chunk.length
            err = None
            for name, kernel in kernels:
                # Later bindings see earlier ones: each kernel runs over the
                # progressively extended column set, like the row loop's
                # ``extended`` dict.  An error truncates the chunk to the
                # rows that evaluated fully; the error replays after them.
                values, t, e = self._run_kernel(kernel, columns, n)
                if t < n:
                    n = t
                    err = e
                    columns = {k: col[:n] for k, col in columns.items()}
                columns[name] = values
            if n:
                yield self._emit_chunk(Chunk(columns, n))
            if err is not None:
                raise err

    def describe(self) -> str:
        inner = ", ".join(f"{n}={e}" for n, e in self.bindings)
        return f"Map({inner})"


class PNestedLoopJoin(PhysicalOperator):
    """Block nested-loop (outer-)join: the fallback join algorithm.

    The inner (right) input is materialized once per execution — not once
    per ``rows()`` entry — so a re-entered stream does not re-run the
    build side.
    """

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        pred: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.pred = pred
        self.right_columns = right_columns
        self.outer = outer
        self._holds = self._pred(context, pred)
        self._right_rows: list[Env] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _materialize_right(self) -> list[Env]:
        if self._right_rows is None:
            charge = self._context.charge_fn()
            if charge is None:
                self._right_rows = list(self.right.rows())
            else:
                materialized = []
                for nb, env in enumerate(self.right.rows()):
                    if not nb & _STRIDE_MASK:
                        # One row stands for its whole stride: rows in a
                        # buffer share a shape, and charging the stride up
                        # front keeps the estimator off the per-row path.
                        charge(estimate_bytes(env) * SAMPLE_STRIDE)
                    materialized.append(env)
                self._right_rows = materialized
        return self._right_rows

    def rows(self) -> Iterator[Env]:
        right_rows = self._materialize_right()
        holds = self._holds
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        padding = {col: NULL for col in self.right_columns}
        for left_env in self.left.rows():
            matched = False
            for right_env in right_rows:
                # Every pair considered is a work unit: a cross-join blowup
                # is charged here even when it emits almost nothing.
                units += 1
                if units >= batch:
                    governor.tick_many(units)
                    units = 0
                    batch = governor.batch()
                env = {**left_env, **right_env}
                if holds(env):
                    matched = True
                    self.rows_produced += 1
                    yield env
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}
        if governor is not None:
            governor.tick_many(units)

    def batches(self) -> Iterator[Chunk]:
        """Vectorized probe: the materialized right side is columnized once
        and each left row is broadcast across it, so the predicate runs as
        one kernel call over all ``m`` right rows instead of ``m`` per-pair
        closure calls over ``m`` freshly merged env dicts.  Only the left
        columns the predicate actually reads are broadcast.  Work units,
        outer padding, and fault truncation mirror ``rows()``: one unit per
        pair reached (the faulting pair included), matches preceding a
        fault are emitted, and the faulting left row gets no outer pad."""
        context = self._context
        pred_kernel = context.pred_kernel(self.pred)
        governor = context.governor
        if pred_kernel is None or (
            governor is not None and governor.max_rows is not None
        ):
            # Row budgets trip at exactly one unit over (the governor's
            # contract, pinned by its tests); chunked inputs settle whole
            # chunks at a time and would overshoot.  Under a row budget the
            # join stays row-driven, like the hash operators' row-mode
            # builds under a memory budget.
            yield from PhysicalOperator.batches(self)
            return
        right_rows = self._materialize_right()
        m = len(right_rows)
        right_cols = {
            col: [env[col] for env in right_rows]
            for col in self.right_columns
        }
        right_items = list(right_cols.items())
        needed = free_vars(self.pred)
        outer = self.outer
        size = context.batch_size
        trivial = pred_kernel.trivial_true
        out: dict[str, list] | None = None
        left_only: list[str] = []
        needed_left: list[str] = []
        produced = 0
        for chunk in self.left.batches():
            lcols = chunk.columns
            if out is None:
                left_only = [n for n in lcols if n not in right_cols]
                needed_left = [n for n in left_only if n in needed]
                out = {n: [] for n in left_only}
                for col in right_cols:
                    out[col] = []
            for i in range(chunk.length):
                if m:
                    probe = dict(right_cols)
                    for name in needed_left:
                        probe[name] = [lcols[name][i]] * m
                    if trivial:
                        flags, t, err = None, m, None
                    else:
                        flags, t, err = self._run_kernel(pred_kernel, probe, m)
                    if governor is not None:
                        # Row parity: the unit precedes the predicate call,
                        # so a faulting pair was still charged.
                        governor.tick_many(t + 1 if err is not None else m)
                    count = m if flags is None else flags.count(True)
                    if count:
                        if count == m:
                            for col, rc in right_items:
                                out[col].extend(rc)
                        else:
                            for col, rc in right_items:
                                out[col].extend(compress(rc, flags))
                        for name in left_only:
                            out[name].extend([lcols[name][i]] * count)
                        produced += count
                    if err is not None:
                        if produced:
                            yield self._emit_chunk(Chunk(out, produced))
                        raise err
                    if count or not outer:
                        if produced >= size:
                            yield self._emit_chunk(Chunk(out, produced))
                            out = {n: [] for n in out}
                            produced = 0
                        continue
                # No pairs matched (or the right side is empty): outer pad.
                if outer:
                    for name in left_only:
                        out[name].append(lcols[name][i])
                    for col in right_cols:
                        out[col].append(NULL)
                    produced += 1
                if produced >= size:
                    yield self._emit_chunk(Chunk(out, produced))
                    out = {n: [] for n in out}
                    produced = 0
        if produced:
            yield self._emit_chunk(Chunk(out, produced))

    def describe(self) -> str:
        kind = "OuterNLJoin" if self.outer else "NLJoin"
        return f"{kind}({self.pred})"


class PHashJoin(PhysicalOperator):
    """Hash (outer-)join on extracted equi-keys, with a residual predicate.

    The build-side hash table is constructed on the first ``rows()`` entry
    and reused by re-entries (e.g. when this join is the inner of a nested
    loop), so the build input's rows are produced exactly once per
    execution.
    """

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: tuple[Term, ...],
        right_keys: tuple[Term, ...],
        residual: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.right_columns = right_columns
        self.outer = outer
        self._left_key_fns = tuple(self._expr(context, k) for k in left_keys)
        self._right_key_fns = tuple(self._expr(context, k) for k in right_keys)
        self._holds = self._pred(context, residual)
        self._table: dict[tuple[Any, ...], list[Env]] | None = None
        #: Batch-mode build table: buckets of right-row tuples aligned to
        #: ``right_columns`` (no per-row dicts).  Built on first batches()
        #: entry, memoized like ``_table``.
        self._tuple_table: dict[Any, list[tuple]] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _build_table(self) -> dict[Any, list[Env]]:
        # Keys are wrapped with identity_key so that `=` on stored objects
        # matches hash-probe semantics to apply_binop's identity equality.
        # Single-key joins (the common case) use the bare key — no tuple
        # allocation per row; probes below agree on the representation.
        table: dict[Any, list[Env]] = {}
        key_fns = self._right_key_fns
        charge = self._context.charge_fn()
        if len(key_fns) == 1 and charge is None:
            (key_fn,) = key_fns
            for right_env in self.right.rows():
                key = identity_key(key_fn(right_env))
                table.setdefault(key, []).append(right_env)
            return table
        single = key_fns[0] if len(key_fns) == 1 else None
        for nb, right_env in enumerate(self.right.rows()):
            if single is not None:
                key = identity_key(single(right_env))
            else:
                key = tuple(identity_key(fn(right_env)) for fn in key_fns)
            if charge is not None and not nb & _STRIDE_MASK:
                # Sampled: one row charges for its whole stride.
                charge(estimate_bytes(right_env) * SAMPLE_STRIDE)
            table.setdefault(key, []).append(right_env)
        return table

    def _build_tuple_table(self) -> dict[Any, list[tuple]]:
        context = self._context
        right_columns = self.right_columns
        if context.charge_fn() is not None:
            # Memory-budgeted builds go through the row-mode build so the
            # stride-sampled byte charging is identical to the row path,
            # then convert the buckets to column-aligned tuples.
            if self._table is None:
                self._table = self._build_table()
            return {
                key: [tuple(env[col] for col in right_columns) for env in envs]
                for key, envs in self._table.items()
            }
        key_kernels = tuple(context.kernel(k) for k in self.right_keys)
        table: dict[Any, list[tuple]] = {}
        for chunk in self.right.batches():
            cols = chunk.columns
            n = chunk.length
            err = None
            key_parts: list[list] = []
            for kernel in key_kernels:
                values, t, e = self._run_kernel(kernel, cols, n)
                if t < n:
                    n = t
                    err = e
                    key_parts = [part[:n] for part in key_parts]
                key_parts.append(values)
            col_lists = [cols[col][:n] for col in right_columns]
            row_tuples = list(zip(*col_lists)) if col_lists else [()] * n
            setdefault = table.setdefault
            if len(key_parts) == 1:
                (keys,) = key_parts
                for key_value, row in zip(keys, row_tuples):
                    setdefault(identity_key(key_value), []).append(row)
            else:
                for i, row in enumerate(row_tuples):
                    key = tuple(identity_key(part[i]) for part in key_parts)
                    setdefault(key, []).append(row)
            if err is not None:
                # A key-expression fault fails the build exactly as the
                # row-mode build would at that right row.
                raise err
        return table

    def batches(self) -> Iterator[Chunk]:
        context = self._context
        if not context.batched:
            yield from PhysicalOperator.batches(self)
            return
        left_kernels = tuple(context.kernel(k) for k in self.left_keys)
        residual_kernel = context.pred_kernel(self.residual)
        if self._tuple_table is None:
            self._tuple_table = self._build_tuple_table()
        table = self._tuple_table
        right_columns = self.right_columns
        outer = self.outer
        governor = context.governor
        trivial = residual_kernel.trivial_true
        for chunk in self.left.batches():
            cols = chunk.columns
            n = chunk.length
            kerr = None
            key_parts: list[list] = []
            for kernel in left_kernels:
                values, t, e = self._run_kernel(kernel, cols, n)
                if t < n:
                    n = t
                    kerr = e
                    key_parts = [part[:n] for part in key_parts]
                key_parts.append(values)
            single = key_parts[0] if len(key_parts) == 1 else None
            if trivial and kerr is None:
                # Fast path (no residual, no key fault): build the output
                # row index in one probe pass, then emit every column with
                # one comprehension instead of per-row appends.
                parent_idx: list[int] = []
                out_rows: list[tuple] = []
                pairs = 0
                pad = (NULL,) * len(right_columns) if outer else None
                for i in range(n):
                    if single is not None:
                        value = single[i]
                        if value is NULL:
                            bucket = None
                        else:
                            bucket = table.get(identity_key(value))
                    else:
                        values = tuple(part[i] for part in key_parts)
                        if any(part is NULL for part in values):
                            bucket = None
                        else:
                            bucket = table.get(
                                tuple(identity_key(v) for v in values)
                            )
                    if bucket:
                        pairs += len(bucket)
                        out_rows.extend(bucket)
                        parent_idx.extend([i] * len(bucket))
                    elif pad is not None:
                        out_rows.append(pad)
                        parent_idx.append(i)
                if governor is not None:
                    governor.tick_many(pairs)
                if parent_idx:
                    out_cols = {
                        name: [col[i] for i in parent_idx]
                        for name, col in cols.items()
                    }
                    for j, col_name in enumerate(right_columns):
                        out_cols[col_name] = [row[j] for row in out_rows]
                    yield self._emit_chunk(Chunk(out_cols, len(parent_idx)))
                continue
            # Probe: expand each left row into its matching right tuples
            # (NULL keys never equi-join — zero candidates, outer pads).
            counts: list[int] = []
            parent_of: list[int] = []
            match_rows: list[tuple] = []
            for i in range(n):
                if single is not None:
                    value = single[i]
                    if value is NULL:
                        counts.append(0)
                        continue
                    key = identity_key(value)
                else:
                    values = tuple(part[i] for part in key_parts)
                    if any(part is NULL for part in values):
                        counts.append(0)
                        continue
                    key = tuple(identity_key(v) for v in values)
                bucket = table.get(key)
                if not bucket:
                    counts.append(0)
                    continue
                counts.append(len(bucket))
                match_rows.extend(bucket)
                parent_of.extend([i] * len(bucket))
            total = len(match_rows)
            if total and not trivial:
                ccols = {
                    name: [col[i] for i in parent_of]
                    for name, col in cols.items()
                }
                for j, col_name in enumerate(right_columns):
                    ccols[col_name] = [row[j] for row in match_rows]
                flags, passed, perr = self._run_kernel(
                    residual_kernel, ccols, total
                )
            else:
                flags, passed, perr = None, total, None
            if governor is not None:
                # Row parity: one unit per pair considered; on a residual
                # fault the row path ticked the failing pair too.
                governor.tick_many(passed + 1 if perr is not None else total)
            bad_parent = parent_of[passed] if perr is not None else None
            pending = perr if perr is not None else kerr
            out_cols: dict[str, list] = {name: [] for name in cols}
            right_out: list[list] = [[] for _ in right_columns]
            left_appends = [(out_cols[name].append, cols[name]) for name in cols]
            right_appends = [col.append for col in right_out]
            emitted = 0
            cursor = 0
            for i in range(n):
                if i == bad_parent:
                    for c in range(cursor, passed):
                        if flags[c]:
                            row = match_rows[c]
                            for append, col in left_appends:
                                append(col[i])
                            for append, v in zip(right_appends, row):
                                append(v)
                            emitted += 1
                    break
                count = counts[i]
                matched = False
                for c in range(cursor, cursor + count):
                    if flags is None or flags[c]:
                        matched = True
                        row = match_rows[c]
                        for append, col in left_appends:
                            append(col[i])
                        for append, v in zip(right_appends, row):
                            append(v)
                        emitted += 1
                cursor += count
                if outer and not matched:
                    for append, col in left_appends:
                        append(col[i])
                    for append in right_appends:
                        append(NULL)
                    emitted += 1
            if emitted:
                for col_name, values in zip(right_columns, right_out):
                    out_cols[col_name] = values
                yield self._emit_chunk(Chunk(out_cols, emitted))
            if pending is not None:
                raise pending

    def rows(self) -> Iterator[Env]:
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        if self._table is None:
            self._table = self._build_table()
        table = self._table
        key_fns = self._left_key_fns
        holds = self._holds
        padding = {col: NULL for col in self.right_columns}
        single = len(key_fns) == 1
        if single:
            (key_fn,) = key_fns
        for left_env in self.left.rows():
            if single:
                value = key_fn(left_env)
                null_key = value is NULL
                key = identity_key(value)
            else:
                values = tuple(fn(left_env) for fn in key_fns)
                null_key = any(part is NULL for part in values)
                key = tuple(identity_key(v) for v in values)
            matched = False
            if not null_key:
                for right_env in table.get(key, ()):
                    units += 1
                    if units >= batch:
                        governor.tick_many(units)
                        units = 0
                        batch = governor.batch()
                    env = {**left_env, **right_env}
                    if holds(env):
                        matched = True
                        self.rows_produced += 1
                        yield env
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}
        if governor is not None:
            governor.tick_many(units)

    def describe(self) -> str:
        kind = "HashOuterJoin" if self.outer else "HashJoin"
        keys = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        if self.residual != Const(True):
            return f"{kind}({keys}; residual {self.residual})"
        return f"{kind}({keys})"


class PMergeJoin(PhysicalOperator):
    """Sort-merge (outer-)join on a single equi-key.

    Both inputs are materialized, NULL keys filtered symmetrically on both
    sides (a NULL never equi-joins; left-side NULL rows still pad on an
    outer join), and the survivors sorted by a total-order wrapper
    (``identity_sort_key``) that ranks mixed-type keys instead of raising
    TypeError.  Duplicate key runs produce the cross product of the runs;
    within a run the *raw* identity keys are re-checked, since the sort
    wrapper's order is coarser than key equality.  The planner only selects
    this algorithm when asked to (``PlannerOptions.merge_joins``).  The
    sorted right side is built once per execution and reused on re-entry.
    """

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key: Term,
        right_key: Term,
        residual: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.right_columns = right_columns
        self.outer = outer
        self._left_key_fn = self._expr(context, left_key)
        self._right_key_fn = self._expr(context, right_key)
        self._holds = self._pred(context, residual)
        self._right_rows: list[tuple] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _keyed(self, source: PhysicalOperator, key_fn) -> Iterator[tuple]:
        # (sort wrapper, identity key, env) per row; NULL keys are filtered
        # symmetrically — a NULL key never equi-joins on either side.
        for env in source.rows():
            value = key_fn(env)
            if is_null(value):
                yield None, None, env
            else:
                key = identity_key(value)
                yield identity_sort_key(key), key, env

    def rows(self) -> Iterator[Env]:
        charge = self._context.charge_fn()
        if self._right_rows is None:
            right_rows = [
                row
                for row in self._keyed(self.right, self._right_key_fn)
                if row[0] is not None
            ]
            right_rows.sort(key=lambda row: row[0])
            if charge is not None:
                charge(estimate_buffer_bytes(right_rows, get=lambda r: r[2]))
            self._right_rows = right_rows
        right_rows = self._right_rows
        left_rows = list(self._keyed(self.left, self._left_key_fn))
        if charge is not None:
            charge(estimate_buffer_bytes(left_rows, get=lambda r: r[2]))
        nullish = [env for wrapper, _, env in left_rows if wrapper is None]
        sortable = [row for row in left_rows if row[0] is not None]
        sortable.sort(key=lambda row: row[0])
        padding = {col: NULL for col in self.right_columns}
        holds = self._holds
        governor = self._context.governor
        units = 0
        batch = self._context.batch()

        index = 0
        for wrapper, key, left_env in sortable:
            while index < len(right_rows) and right_rows[index][0] < wrapper:
                index += 1
            matched = False
            probe = index
            while probe < len(right_rows) and right_rows[probe][0] == wrapper:
                units += 1
                if units >= batch:
                    governor.tick_many(units)
                    units = 0
                    batch = governor.batch()
                # Wrapper equality is coarser than key equality: confirm on
                # the raw identity keys before pairing.
                if right_rows[probe][1] == key:
                    env = {**left_env, **right_rows[probe][2]}
                    if holds(env):
                        matched = True
                        self.rows_produced += 1
                        yield env
                probe += 1
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}
        if governor is not None:
            governor.tick_many(units)
        if self.outer:
            for left_env in nullish:
                self.rows_produced += 1
                yield {**left_env, **padding}

    def describe(self) -> str:
        kind = "MergeOuterJoin" if self.outer else "MergeJoin"
        return f"{kind}({self.left_key} = {self.right_key})"


class PUnnest(PhysicalOperator):
    """Pipelined (outer-)unnest of a collection-valued path."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        path: Term,
        var: str,
        pred: Term,
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.path = path
        self.var = var
        self.pred = pred
        self.outer = outer
        self._path_fn = self._expr(context, path)
        self._holds = self._pred(context, pred)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        path_fn = self._path_fn
        holds = self._holds
        var = self.var
        governor = self._context.governor
        units = 0
        batch = self._context.batch()
        for env in self.child.rows():
            value = path_fn(env)
            matched = False
            if not is_null(value):
                if not isinstance(value, CollectionValue):
                    raise EvaluationError(
                        f"unnest path evaluated to {type(value).__name__}"
                    )
                for element in value.elements():
                    units += 1
                    if units >= batch:
                        governor.tick_many(units)
                        units = 0
                        batch = governor.batch()
                    extended = {**env, var: element}
                    if holds(extended):
                        matched = True
                        self.rows_produced += 1
                        yield extended
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**env, var: NULL}
        if governor is not None:
            governor.tick_many(units)

    def batches(self) -> Iterator[Chunk]:
        context = self._context
        path_kernel = context.kernel(self.path)
        if path_kernel is None:
            yield from PhysicalOperator.batches(self)
            return
        pred_kernel = context.pred_kernel(self.pred)
        var = self.var
        outer = self.outer
        governor = context.governor
        trivial = pred_kernel.trivial_true
        for chunk in self.child.batches():
            cols = chunk.columns
            paths, limit, err = self._run_kernel(path_kernel, cols, chunk.length)
            if trivial:
                # Fast path (no predicate): build the output row index and
                # element column in one expansion pass, then emit every
                # column with one comprehension instead of per-row appends.
                parent_idx: list[int] = []
                out_elements: list[Any] = []
                total = 0
                for i in range(limit):
                    value = paths[i]
                    if is_null(value):
                        if outer:
                            parent_idx.append(i)
                            out_elements.append(NULL)
                        continue
                    if not isinstance(value, CollectionValue):
                        err = EvaluationError(
                            f"unnest path evaluated to {type(value).__name__}"
                        )
                        break
                    elems = list(value.elements())
                    if elems:
                        total += len(elems)
                        out_elements.extend(elems)
                        parent_idx.extend([i] * len(elems))
                    elif outer:
                        parent_idx.append(i)
                        out_elements.append(NULL)
                if governor is not None:
                    governor.tick_many(total)
                if parent_idx:
                    out_cols = {
                        name: [col[i] for i in parent_idx]
                        for name, col in cols.items()
                    }
                    out_cols[var] = out_elements
                    yield self._emit_chunk(Chunk(out_cols, len(parent_idx)))
                if err is not None:
                    raise err
                continue
            # Expand parents into (parent index, element) candidate pairs.
            parent_of: list[int] = []
            elements: list[Any] = []
            counts: list[int] = []
            for i in range(limit):
                value = paths[i]
                if is_null(value):
                    counts.append(0)
                    continue
                if not isinstance(value, CollectionValue):
                    err = EvaluationError(
                        f"unnest path evaluated to {type(value).__name__}"
                    )
                    limit = i
                    break
                elems = list(value.elements())
                counts.append(len(elems))
                elements.extend(elems)
                parent_of.extend([i] * len(elems))
            total = len(elements)
            if total and not pred_kernel.trivial_true:
                ccols = {
                    name: [col[i] for i in parent_of]
                    for name, col in cols.items()
                }
                ccols[var] = elements
                flags, passed, perr = self._run_kernel(pred_kernel, ccols, total)
            else:
                flags, passed, perr = None, total, None
            if governor is not None:
                # Row parity: one unit per element *reached*.  On a
                # predicate fault the row path ticked the failing element
                # too (the unit precedes the holds() call).
                governor.tick_many(passed + 1 if perr is not None else total)
            bad_parent = parent_of[passed] if perr is not None else None
            pending = perr if perr is not None else err
            out_cols: dict[str, list] = {name: [] for name in cols}
            out_var: list = []
            appends = [(out_cols[name].append, cols[name]) for name in cols]
            var_append = out_var.append
            cursor = 0
            for i in range(limit):
                if i == bad_parent:
                    # The predicate faulted mid-parent: emit the candidates
                    # the row path reached, no outer padding (matched is
                    # undecided there), and stop.
                    for c in range(cursor, passed):
                        if flags[c]:
                            for append, col in appends:
                                append(col[i])
                            var_append(elements[c])
                    break
                count = counts[i]
                matched = False
                for c in range(cursor, cursor + count):
                    if flags is None or flags[c]:
                        matched = True
                        for append, col in appends:
                            append(col[i])
                        var_append(elements[c])
                cursor += count
                if outer and not matched:
                    for append, col in appends:
                        append(col[i])
                    var_append(NULL)
            emitted = len(out_var)
            if emitted:
                out_cols[var] = out_var
                yield self._emit_chunk(Chunk(out_cols, emitted))
            if pending is not None:
                raise pending

    def describe(self) -> str:
        kind = "OuterUnnest" if self.outer else "Unnest"
        return f"{kind}({self.var} <- {self.path})"


class PHashNest(PhysicalOperator):
    """Hash-based grouping implementation of the nest operator.

    Grouping is a blocking operation: the child stream is consumed and the
    groups accumulated on the first ``rows()`` entry, then replayed by any
    re-entry without re-running the child.
    """

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        monoid: Monoid,
        head: Term,
        group_by: tuple[str, ...],
        null_vars: tuple[str, ...],
        out_var: str,
        pred: Term,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.monoid = monoid
        self.head = head
        self.group_by = group_by
        self.null_vars = null_vars
        self.out_var = out_var
        self.pred = pred
        self._head_fn = self._expr(context, head)
        self._holds = self._pred(context, pred)
        self._group_rows: list[tuple[Env, Any]] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _accumulate_rows(self, raw: bool = False):
        monoid = self.monoid
        merge = monoid.merge
        head_fn = self._head_fn
        holds = self._holds
        group_by = self.group_by
        null_vars = self.null_vars
        groups: dict[tuple[Any, ...], Any] = {}
        order: list[tuple[Any, ...]] = []
        group_envs: dict[tuple[Any, ...], Env] = {}
        collection = isinstance(monoid, CollectionMonoid)
        # Raw mode (exchange workers) buffers primitive-monoid heads as
        # element lists too, so the coordinator can replay the serial fold
        # over the cross-partition merge instead of reassociating carriers.
        use_list = collection or raw
        lift = monoid.lift
        charge = self._context.charge_fn()
        buffered = 0
        single = group_by[0] if len(group_by) == 1 else None
        for env in self.child.rows():
            # Identity-aware grouping: distinct stored objects with equal
            # state must form distinct groups (see algebra evaluator _nest).
            if single is not None:
                key = identity_key(env[single])
            else:
                key = tuple(identity_key(env[col]) for col in group_by)
            if key not in groups:
                # Collection groups accumulate into a plain list and build
                # the collection once at the end (per-row immutable merges
                # would copy the accumulator every row).
                groups[key] = [] if use_list else monoid.zero
                order.append(key)
                group_envs[key] = {col: env[col] for col in group_by}
            if null_vars and any(env[col] is NULL for col in null_vars):
                continue
            if not holds(env):
                continue
            value = head_fn(env)
            if use_list:
                if collection and charge is not None:
                    if not buffered & _STRIDE_MASK:
                        # Sampled: one value charges for its whole stride.
                        charge(estimate_bytes(value) * SAMPLE_STRIDE)
                    buffered += 1
                groups[key].append(value)
            elif value is not NULL:
                groups[key] = merge(groups[key], lift(value))
        return order, groups, group_envs

    def _accumulate_batched(self, pred_kernel, head_kernel, raw: bool = False):
        """The batch-mode grouping build: kernels over child chunks.

        Mirrors :meth:`_accumulate_rows` decision for decision — group
        creation for *every* row (before null-var/predicate filtering),
        NULL heads skipped only for primitive monoids, stream-order
        merging — with the head kernel run once per chunk over the
        filter-surviving rows.  Only used when no memory budget is active
        (the row build's stride-sampled byte charging is the parity
        contract there).
        """
        monoid = self.monoid
        merge = monoid.merge
        lift = monoid.lift
        group_by = self.group_by
        null_vars = self.null_vars
        groups: dict[Any, Any] = {}
        order: list[Any] = []
        group_envs: dict[Any, Env] = {}
        collection = isinstance(monoid, CollectionMonoid)
        use_list = collection or raw
        single = group_by[0] if len(group_by) == 1 else None
        trivial = pred_kernel.trivial_true
        for chunk in self.child.batches():
            cols = chunk.columns
            n = chunk.length
            if trivial:
                flags, limit, err = None, n, None
            else:
                flags, limit, err = self._run_kernel(pred_kernel, cols, n)
            # Key extraction is column-at-a-time: map identity_key down
            # each grouping column and zip the results into row keys, so
            # the per-row cost is the identity_key call alone (no genexpr
            # resumption, no per-row tuple building in Python).
            if single is not None:
                key_src = cols[single]
                keys = list(
                    map(identity_key, key_src if limit == n else key_src[:limit])
                )
            elif group_by:
                keys = list(
                    zip(
                        *(
                            map(
                                identity_key,
                                cols[col] if limit == n else cols[col][:limit],
                            )
                            for col in group_by
                        )
                    )
                )
            else:
                keys = [()] * limit
            for i, key in enumerate(keys):
                if key not in groups:
                    groups[key] = [] if use_list else monoid.zero
                    order.append(key)
                    group_envs[key] = {col: cols[col][i] for col in group_by}
            # Rows surviving the null-var and predicate filters, in order.
            null_cols = [cols[col] for col in null_vars] if null_vars else None
            if null_cols is None and flags is None:
                picked: Any = range(limit)
            elif null_cols is None:
                picked = [i for i in range(limit) if flags[i]]
            elif len(null_cols) == 1:
                null_col = null_cols[0]
                picked = [
                    i
                    for i in range(limit)
                    if null_col[i] is not NULL and (flags is None or flags[i])
                ]
            else:
                picked = [
                    i
                    for i in range(limit)
                    if not any(col[i] is NULL for col in null_cols)
                    and (flags is None or flags[i])
                ]
            m = len(picked)
            if m:
                if m == n:
                    scols = cols
                else:
                    scols = {
                        name: [col[i] for i in picked]
                        for name, col in cols.items()
                    }
                values, t, herr = self._run_kernel(head_kernel, scols, m)
                if herr is not None:
                    # A head fault at picked[t] precedes (row-order-wise)
                    # any predicate fault at ``limit``, so it wins.
                    err = herr
                    picked = picked[:t]
                for value, i in zip(values, picked):
                    key = keys[i]
                    if use_list:
                        groups[key].append(value)
                    elif value is not NULL:
                        groups[key] = merge(groups[key], lift(value))
            if err is not None:
                raise err
        return order, groups, group_envs

    def accumulate(self, raw: bool = False):
        """Partition-local grouping state, for the exchange layer.

        Returns ``(order, groups, group_envs)``: the first-seen key order,
        the per-key accumulators, and the per-key group environments.
        Collection-monoid accumulators are plain element lists (stream
        order, unfolded); primitive ones are pre-finalize carriers, or —
        with ``raw=True`` — element lists as well, so a coordinator can
        merge lists across partitions and replay the serial NULL-skipping
        fold instead of reassociating carriers (which would perturb float
        results).  The caller merges states in partition order and
        finalizes once via :meth:`finalize_groups` or its own fold.  Mode
        selection matches :meth:`_groups`.
        """
        context = self._context
        head_kernel = context.kernel(self.head)
        if head_kernel is None or context.charge_fn() is not None:
            return self._accumulate_rows(raw)
        return self._accumulate_batched(
            context.pred_kernel(self.pred), head_kernel, raw
        )

    def finalize_groups(self, order, groups, group_envs) -> list:
        """Fold/finalize accumulators into ``(group_env, value)`` rows."""
        monoid = self.monoid
        if isinstance(monoid, CollectionMonoid):
            fold = monoid.fold_elements
            return [(group_envs[key], fold(groups[key])) for key in order]
        finalize = monoid.finalize
        return [(group_envs[key], finalize(groups[key])) for key in order]

    def _groups(self) -> list:
        """The memoized grouped rows, built by whichever mode applies."""
        if self._group_rows is None:
            self._group_rows = self.finalize_groups(*self.accumulate())
        return self._group_rows

    def rows(self) -> Iterator[Env]:
        group_rows = self._groups()
        out_var = self.out_var
        for group_env, result in group_rows:
            self.rows_produced += 1
            yield {**group_env, out_var: result}

    def batches(self) -> Iterator[Chunk]:
        if not self._context.batched:
            yield from PhysicalOperator.batches(self)
            return
        group_rows = self._groups()
        out_var = self.out_var
        group_by = self.group_by
        size = self._context.batch_size
        for start in range(0, len(group_rows), size):
            block = group_rows[start : start + size]
            columns: dict[str, list] = {
                col: [env[col] for env, _ in block] for col in group_by
            }
            columns[out_var] = [result for _, result in block]
            yield self._emit_chunk(Chunk(columns, len(block)))

    def describe(self) -> str:
        group = ",".join(self.group_by) or "()"
        return f"HashNest({self.monoid.name} -> {self.out_var} by {group})"


class PReduce(PhysicalOperator):
    """Streaming reduce; short-circuits the boolean quantifier monoids."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        monoid: Monoid,
        head: Term,
        pred: Term,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.monoid = monoid
        self.head = head
        self.pred = pred
        self._head_fn = self._expr(context, head)
        self._holds = self._pred(context, pred)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:  # pragma: no cover - roots use value()
        yield {"__result": self.value()}

    def value(self) -> Any:
        if self._context.batched:
            head_kernel = self._context.kernel(self.head)
            if head_kernel is not None:
                return self._value_batched(
                    head_kernel, self._context.pred_kernel(self.pred)
                )
        monoid = self.monoid
        merge = monoid.merge
        head_fn = self._head_fn
        holds = self._holds
        if isinstance(monoid, CollectionMonoid):
            # One-pass bulk construction instead of per-row immutable
            # merges (which copy the whole accumulator every row).
            result = monoid.fold_elements(
                head_fn(env) for env in self.child.rows() if holds(env)
            )
            return self._account(result)
        result = monoid.zero
        lift = monoid.lift
        is_all = monoid.name == "all"
        is_some = monoid.name == "some"
        for env in self.child.rows():
            if not holds(env):
                continue
            head = head_fn(env)
            if head is NULL:
                continue
            result = merge(result, lift(head))
            if is_all and result is False:
                return self._account(False)
            if is_some and result is True:
                return self._account(True)
        return self._account(monoid.finalize(result))

    def _chunk_heads(self, chunk, head_kernel, pred_kernel) -> tuple[list, Any]:
        """Heads of the chunk's predicate-surviving rows, plus any fault.

        The returned values cover exactly the rows that precede the first
        fault in row order; a head fault wins over a later predicate fault
        because the row path evaluates pred-then-head row by row.
        """
        cols = chunk.columns
        n = chunk.length
        if pred_kernel.trivial_true:
            scols = cols
            count = n
            err = None
        else:
            flags, limit, err = self._run_kernel(pred_kernel, cols, n)
            count = flags.count(True)
            if not count:
                return [], err
            if count == n:
                scols = cols
            else:
                # flags covers rows [0, limit); compress truncates each
                # column to it, dropping failures and unevaluated rows.
                scols = {
                    name: list(compress(col, flags))
                    for name, col in cols.items()
                }
        values, t, herr = self._run_kernel(head_kernel, scols, count)
        if herr is not None:
            err = herr
        return values, err

    def _value_batched(self, head_kernel, pred_kernel) -> Any:
        monoid = self.monoid
        if isinstance(monoid, CollectionMonoid):
            elements: list = []
            for chunk in self.child.batches():
                values, err = self._chunk_heads(chunk, head_kernel, pred_kernel)
                elements.extend(values)
                if err is not None:
                    raise err
            return self._account(monoid.fold_elements(elements))
        merge = monoid.merge
        lift = monoid.lift
        result = monoid.zero
        is_all = monoid.name == "all"
        is_some = monoid.name == "some"
        for chunk in self.child.batches():
            values, err = self._chunk_heads(chunk, head_kernel, pred_kernel)
            for head in values:
                if head is NULL:
                    continue
                result = merge(result, lift(head))
                # Short-circuit *before* raising: the row path would have
                # stopped pulling at this row and never seen the fault.
                if is_all and result is False:
                    return self._account(False)
                if is_some and result is True:
                    return self._account(True)
            if err is not None:
                raise err
        return self._account(monoid.finalize(result))

    def partial_value(self) -> list:
        """The partition-local element list, for the exchange workers.

        Returns this partition's head values over the predicate-surviving
        rows, in stream order, NULLs included (the serial primitive fold
        skips them at merge time; the coordinator replays that exact fold
        over the partition-order concatenation, so float arithmetic and
        collection order match serial execution bit for bit under range
        partitioning).  Quantifier roots (some/all) never reach here —
        the planner keeps short-circuiting queries serial.  No result
        accounting happens here; the gather root owns it.
        """
        if self._context.batched:
            head_kernel = self._context.kernel(self.head)
            if head_kernel is not None:
                return self._partial_batched(
                    head_kernel, self._context.pred_kernel(self.pred)
                )
        head_fn = self._head_fn
        holds = self._holds
        return [head_fn(env) for env in self.child.rows() if holds(env)]

    def _partial_batched(self, head_kernel, pred_kernel) -> list:
        elements: list = []
        for chunk in self.child.batches():
            values, err = self._chunk_heads(chunk, head_kernel, pred_kernel)
            elements.extend(values)
            if err is not None:
                raise err
        return elements

    def _account(self, result: Any) -> Any:
        # EXPLAIN ANALYZE accounting: the root "produces" the result — one
        # row per element of a collection result, one row for a scalar.
        self.rows_produced = (
            len(result) if isinstance(result, CollectionValue) else 1
        )
        return result

    def describe(self) -> str:
        return f"Reduce({self.monoid.name} / {self.head})"


class PEval(PhysicalOperator):
    """Root for non-comprehension queries: expression over one tuple."""

    def __init__(self, context: _Context, child: PhysicalOperator, expr: Term):
        super().__init__()
        self._context = context
        self.child = child
        self.expr = expr
        self._expr_fn = self._expr(context, expr)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:  # pragma: no cover - roots use value()
        yield {"__result": self.value()}

    def value(self) -> Any:
        envs = list(self.child.rows())
        if len(envs) != 1:
            raise EvaluationError(
                f"Eval root expected exactly one row, got {len(envs)}"
            )
        result = self._expr_fn(envs[0])
        self.rows_produced = (
            len(result) if isinstance(result, CollectionValue) else 1
        )
        return result

    def describe(self) -> str:
        return f"Eval({self.expr})"
