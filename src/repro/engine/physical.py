"""Physical (executable) operators — the iterator-model engine.

The paper's prototype translates algebraic forms into "physical plans that
are evaluated in memory" (Section 6).  This module provides those physical
algorithms:

* pipelined scan / select / map / unnest operators;
* **nested-loop** and **hash** implementations of join and left outer-join
  (the planner picks hash when it can extract equi-join keys — the very
  optimization the paper says unnesting enables for QUERY E);
* hash-based grouping for the nest operator (single pass);
* streaming reduce with quantifier short-circuiting.

Each operator exposes ``rows()`` (an iterator of environments) and counts
the tuples it produces, so executions can be compared by work performed as
well as by wall-clock time.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.calculus.evaluator import EvaluationError, Evaluator as TermEvaluator, ExtentProvider
from repro.calculus.monoids import CollectionMonoid, Monoid
from repro.calculus.terms import Const, Term
from repro.data.values import (
    NULL,
    CollectionValue,
    identity_key,
    identity_sort_key,
    is_null,
)

Env = dict[str, Any]


class PhysicalOperator:
    """Base class: a restartable stream of environments."""

    def __init__(self) -> None:
        self.rows_produced = 0

    def rows(self) -> Iterator[Env]:
        raise NotImplementedError

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def name(self) -> str:
        return type(self).__name__.removeprefix("P")

    def explain(self, indent: int = 0) -> str:
        """An EXPLAIN-style rendering of the physical plan."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.name()

    def total_rows(self) -> int:
        """Rows produced by this operator and everything below it."""
        return self.rows_produced + sum(c.total_rows() for c in self.children())


class _Context:
    """Shared per-execution state: the database, a term evaluator, and the
    bound prepared-statement parameters (``:name`` placeholder values)."""

    def __init__(
        self,
        database: ExtentProvider,
        params: Mapping[str, Any] | None = None,
    ):
        self.database = database
        self.params = dict(params) if params else {}
        self._terms = TermEvaluator(database, self.params)

    def value(self, term: Term, env: Env) -> Any:
        return self._terms.evaluate(term, env)

    def holds(self, pred: Term, env: Env) -> bool:
        result = self.value(pred, env)
        if result is True:
            return True
        if result is False or is_null(result):
            return False
        raise EvaluationError("predicate did not evaluate to a boolean")


class PScan(PhysicalOperator):
    """Sequential scan of a class extent."""

    def __init__(self, context: _Context, extent: str, var: str):
        super().__init__()
        self._context = context
        self.extent = extent
        self.var = var

    def rows(self) -> Iterator[Env]:
        for obj in self._context.database.extent(self.extent):
            self.rows_produced += 1
            yield {self.var: obj}

    def describe(self) -> str:
        return f"Scan({self.var} <- {self.extent})"


class PIndexScan(PhysicalOperator):
    """Index access path: fetch only the objects whose indexed attribute
    equals a constant key ("choosing access paths", paper Section 6).

    The key expression must be closed (no free range variables); it is
    evaluated once per execution.
    """

    def __init__(
        self, context: _Context, extent: str, var: str, attr: str, key: Term
    ):
        super().__init__()
        self._context = context
        self.extent = extent
        self.var = var
        self.attr = attr
        self.key = key

    def rows(self) -> Iterator[Env]:
        value = self._context.value(self.key, {})
        if is_null(value):
            # attr = NULL is NULL, which a filter treats as false — but the
            # index stores NULL-attributed objects under the NULL key, so a
            # raw lookup would wrongly return them.
            return
        database = self._context.database
        for obj in database.index_lookup(self.extent, self.attr, value):
            self.rows_produced += 1
            yield {self.var: obj}

    def describe(self) -> str:
        return f"IndexScan({self.var} <- {self.extent} on {self.attr} = {self.key})"


class PSeed(PhysicalOperator):
    """The singleton empty-environment stream."""

    def rows(self) -> Iterator[Env]:
        self.rows_produced += 1
        yield {}


class PSelect(PhysicalOperator):
    """Pipelined selection."""

    def __init__(self, context: _Context, child: PhysicalOperator, pred: Term):
        super().__init__()
        self._context = context
        self.child = child
        self.pred = pred

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        for env in self.child.rows():
            if self._context.holds(self.pred, env):
                self.rows_produced += 1
                yield env

    def describe(self) -> str:
        return f"Select({self.pred})"


class PMap(PhysicalOperator):
    """Pipelined computed-column extension."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        bindings: tuple[tuple[str, Term], ...],
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.bindings = bindings

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        for env in self.child.rows():
            extended = dict(env)
            for name, expr in self.bindings:
                extended[name] = self._context.value(expr, extended)
            self.rows_produced += 1
            yield extended

    def describe(self) -> str:
        inner = ", ".join(f"{n}={e}" for n, e in self.bindings)
        return f"Map({inner})"


class PNestedLoopJoin(PhysicalOperator):
    """Block nested-loop (outer-)join: the fallback join algorithm."""

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        pred: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.pred = pred
        self.right_columns = right_columns
        self.outer = outer

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Env]:
        right_rows = list(self.right.rows())
        padding = {col: NULL for col in self.right_columns}
        for left_env in self.left.rows():
            matched = False
            for right_env in right_rows:
                env = {**left_env, **right_env}
                if self._context.holds(self.pred, env):
                    matched = True
                    self.rows_produced += 1
                    yield env
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}

    def describe(self) -> str:
        kind = "OuterNLJoin" if self.outer else "NLJoin"
        return f"{kind}({self.pred})"


class PHashJoin(PhysicalOperator):
    """Hash (outer-)join on extracted equi-keys, with a residual predicate."""

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: tuple[Term, ...],
        right_keys: tuple[Term, ...],
        residual: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.right_columns = right_columns
        self.outer = outer

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Env]:
        # Keys are wrapped with identity_key so that `=` on stored objects
        # matches hash-probe semantics to apply_binop's identity equality.
        table: dict[tuple[Any, ...], list[Env]] = {}
        for right_env in self.right.rows():
            key = tuple(
                identity_key(self._context.value(k, right_env))
                for k in self.right_keys
            )
            table.setdefault(key, []).append(right_env)
        padding = {col: NULL for col in self.right_columns}
        for left_env in self.left.rows():
            values = tuple(
                self._context.value(k, left_env) for k in self.left_keys
            )
            key = tuple(identity_key(v) for v in values)
            matched = False
            if not any(is_null(part) for part in values):
                for right_env in table.get(key, ()):
                    env = {**left_env, **right_env}
                    if self._context.holds(self.residual, env):
                        matched = True
                        self.rows_produced += 1
                        yield env
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}

    def describe(self) -> str:
        kind = "HashOuterJoin" if self.outer else "HashJoin"
        keys = ", ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        if self.residual != Const(True):
            return f"{kind}({keys}; residual {self.residual})"
        return f"{kind}({keys})"


class PMergeJoin(PhysicalOperator):
    """Sort-merge (outer-)join on a single equi-key.

    Both inputs are materialized, NULL keys filtered symmetrically on both
    sides (a NULL never equi-joins; left-side NULL rows still pad on an
    outer join), and the survivors sorted by a total-order wrapper
    (``identity_sort_key``) that ranks mixed-type keys instead of raising
    TypeError.  Duplicate key runs produce the cross product of the runs;
    within a run the *raw* identity keys are re-checked, since the sort
    wrapper's order is coarser than key equality.  The planner only selects
    this algorithm when asked to (``PlannerOptions.merge_joins``).
    """

    def __init__(
        self,
        context: _Context,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key: Term,
        right_key: Term,
        residual: Term,
        right_columns: tuple[str, ...],
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.right_columns = right_columns
        self.outer = outer

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def rows(self) -> Iterator[Env]:
        # (sort wrapper, identity key, env) per row; NULL keys are filtered
        # symmetrically — a NULL key never equi-joins on either side.
        def keyed(source: PhysicalOperator, key_term: Term) -> Iterator[tuple]:
            for env in source.rows():
                value = self._context.value(key_term, env)
                if is_null(value):
                    yield None, None, env
                else:
                    key = identity_key(value)
                    yield identity_sort_key(key), key, env

        left_rows = list(keyed(self.left, self.left_key))
        right_rows = [
            row for row in keyed(self.right, self.right_key) if row[0] is not None
        ]
        right_rows.sort(key=lambda row: row[0])
        nullish = [env for wrapper, _, env in left_rows if wrapper is None]
        sortable = [row for row in left_rows if row[0] is not None]
        sortable.sort(key=lambda row: row[0])
        padding = {col: NULL for col in self.right_columns}

        index = 0
        for wrapper, key, left_env in sortable:
            while index < len(right_rows) and right_rows[index][0] < wrapper:
                index += 1
            matched = False
            probe = index
            while probe < len(right_rows) and right_rows[probe][0] == wrapper:
                # Wrapper equality is coarser than key equality: confirm on
                # the raw identity keys before pairing.
                if right_rows[probe][1] == key:
                    env = {**left_env, **right_rows[probe][2]}
                    if self._context.holds(self.residual, env):
                        matched = True
                        self.rows_produced += 1
                        yield env
                probe += 1
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**left_env, **padding}
        if self.outer:
            for left_env in nullish:
                self.rows_produced += 1
                yield {**left_env, **padding}

    def describe(self) -> str:
        kind = "MergeOuterJoin" if self.outer else "MergeJoin"
        return f"{kind}({self.left_key} = {self.right_key})"


class PUnnest(PhysicalOperator):
    """Pipelined (outer-)unnest of a collection-valued path."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        path: Term,
        var: str,
        pred: Term,
        outer: bool,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.path = path
        self.var = var
        self.pred = pred
        self.outer = outer

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        for env in self.child.rows():
            value = self._context.value(self.path, env)
            matched = False
            if not is_null(value):
                if not isinstance(value, CollectionValue):
                    raise EvaluationError(
                        f"unnest path evaluated to {type(value).__name__}"
                    )
                for element in value.elements():
                    extended = {**env, self.var: element}
                    if self._context.holds(self.pred, extended):
                        matched = True
                        self.rows_produced += 1
                        yield extended
            if self.outer and not matched:
                self.rows_produced += 1
                yield {**env, self.var: NULL}

    def describe(self) -> str:
        kind = "OuterUnnest" if self.outer else "Unnest"
        return f"{kind}({self.var} <- {self.path})"


class PHashNest(PhysicalOperator):
    """Hash-based grouping implementation of the nest operator."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        monoid: Monoid,
        head: Term,
        group_by: tuple[str, ...],
        null_vars: tuple[str, ...],
        out_var: str,
        pred: Term,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.monoid = monoid
        self.head = head
        self.group_by = group_by
        self.null_vars = null_vars
        self.out_var = out_var
        self.pred = pred

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:
        monoid = self.monoid
        groups: dict[tuple[Any, ...], Any] = {}
        order: list[tuple[Any, ...]] = []
        group_envs: dict[tuple[Any, ...], Env] = {}
        for env in self.child.rows():
            # Identity-aware grouping: distinct stored objects with equal
            # state must form distinct groups (see algebra evaluator _nest).
            key = tuple(identity_key(env[col]) for col in self.group_by)
            if key not in groups:
                groups[key] = monoid.zero
                order.append(key)
                group_envs[key] = {col: env[col] for col in self.group_by}
            if any(is_null(env[col]) for col in self.null_vars):
                continue
            if not self._context.holds(self.pred, env):
                continue
            value = self._context.value(self.head, env)
            if isinstance(monoid, CollectionMonoid):
                groups[key] = monoid.merge(groups[key], monoid.unit(value))
            elif not is_null(value):
                groups[key] = monoid.merge(groups[key], monoid.lift(value))
        collection = isinstance(monoid, CollectionMonoid)
        for key in order:
            result = groups[key] if collection else monoid.finalize(groups[key])
            self.rows_produced += 1
            yield {**group_envs[key], self.out_var: result}

    def describe(self) -> str:
        group = ",".join(self.group_by) or "()"
        return f"HashNest({self.monoid.name} -> {self.out_var} by {group})"


class PReduce(PhysicalOperator):
    """Streaming reduce; short-circuits the boolean quantifier monoids."""

    def __init__(
        self,
        context: _Context,
        child: PhysicalOperator,
        monoid: Monoid,
        head: Term,
        pred: Term,
    ):
        super().__init__()
        self._context = context
        self.child = child
        self.monoid = monoid
        self.head = head
        self.pred = pred

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:  # pragma: no cover - roots use value()
        yield {"__result": self.value()}

    def value(self) -> Any:
        monoid = self.monoid
        result = monoid.zero
        collection = isinstance(monoid, CollectionMonoid)
        for env in self.child.rows():
            if not self._context.holds(self.pred, env):
                continue
            head = self._context.value(self.head, env)
            if collection:
                result = monoid.merge(result, monoid.unit(head))
                continue
            if is_null(head):
                continue
            result = monoid.merge(result, monoid.lift(head))
            if monoid.name == "all" and result is False:
                return self._account(False)
            if monoid.name == "some" and result is True:
                return self._account(True)
        return self._account(result if collection else monoid.finalize(result))

    def _account(self, result: Any) -> Any:
        # EXPLAIN ANALYZE accounting: the root "produces" the result — one
        # row per element of a collection result, one row for a scalar.
        self.rows_produced = (
            len(result) if isinstance(result, CollectionValue) else 1
        )
        return result

    def describe(self) -> str:
        return f"Reduce({self.monoid.name} / {self.head})"


class PEval(PhysicalOperator):
    """Root for non-comprehension queries: expression over one tuple."""

    def __init__(self, context: _Context, child: PhysicalOperator, expr: Term):
        super().__init__()
        self._context = context
        self.child = child
        self.expr = expr

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Env]:  # pragma: no cover - roots use value()
        yield {"__result": self.value()}

    def value(self) -> Any:
        envs = list(self.child.rows())
        if len(envs) != 1:
            raise EvaluationError(
                f"Eval root expected exactly one row, got {len(envs)}"
            )
        result = self._context.value(self.expr, envs[0])
        self.rows_produced = (
            len(result) if isinstance(result, CollectionValue) else 1
        )
        return result

    def describe(self) -> str:
        return f"Eval({self.expr})"
