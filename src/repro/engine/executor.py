"""Execution driver with per-operator statistics (EXPLAIN ANALYZE style).

Wraps the physical planner: runs a logical plan and reports, per physical
operator, the rows it produced and the plan-wide totals, plus wall time.
The benchmarks use the row counts as a machine-independent work metric (the
same role the paper's stream lengths play in its operator discussion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.algebra.operators import Operator
from repro.calculus.evaluator import ExtentProvider
from repro.engine.compile import ExprCompiler
from repro.engine.planner import PlannerOptions, plan_physical
from repro.engine.exchange import PGather
from repro.engine.physical import PEval, PReduce, PhysicalOperator


@dataclass
class OperatorStats:
    """Row production of one physical operator.

    ``eval_mode`` records how the operator's expressions executed
    ("compiled", "mixed", "interpreted", or "" for expression-free
    operators); ``eval_ms`` is the wall time spent inside those expression
    evaluators when profiling was enabled.  ``batches_produced`` /
    ``batch_rows`` record the operator's chunked output when it executed
    on the batch path (both stay 0 for row-mode executions).
    """

    operator: str
    rows_produced: int
    depth: int
    eval_mode: str = ""
    eval_ms: float = 0.0
    batches_produced: int = 0
    batch_rows: int = 0


@dataclass
class ExecutionStats:
    """The outcome of one measured execution.

    ``cache_hits``/``cache_misses`` are the plan-cache counters at the time
    the statistics were collected; ``from_cache`` records whether this
    particular execution reused a cached plan (both are filled in by
    :class:`repro.core.pipeline.QueryPipeline` — direct ``run_with_stats``
    calls leave them at their defaults).
    """

    result: Any
    elapsed_ms: float
    operators: list[OperatorStats] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    from_cache: bool = False
    #: Governor accounting: work units ticked (rows emitted + join pairs
    #: considered) and the peak estimated bytes buffered by blocking
    #: operators.  Both stay 0 when the execution ran ungoverned.
    governor_ticks: int = 0
    governor_peak_bytes: int = 0
    #: Which backend ran the query ("memory" or "sqlite").
    backend: str = "memory"
    #: On the SQLite backend: one (sql, rows, sql ms, decode ms) entry per
    #: flat query the shredding translation executed — SQL execution time
    #: split from Python decode/stitch time, so a pushdown win is visible
    #: per query.
    flat_queries: list = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        # Backends without per-operator tracing (sqlite) report the
        # result's own cardinality instead of summed operator output.
        if not self.operators:
            try:
                return len(self.result)
            except TypeError:
                return 1
        return sum(op.rows_produced for op in self.operators)

    def report(self) -> str:
        """An EXPLAIN ANALYZE style rendering."""
        lines = [f"execution: {self.elapsed_ms:.3f} ms, {self.total_rows} rows"]
        if self.backend != "memory":
            lines[0] += f" (backend={self.backend})"
        for sql, rows, sql_ms, decode_ms in self.flat_queries:
            lines.append(
                f"flat query: {rows} rows, {sql_ms:.3f} ms sql + "
                f"{decode_ms:.3f} ms decode :: {sql}"
            )
        if self.cache_hits or self.cache_misses:
            source = "cached plan" if self.from_cache else "fresh compile"
            lines[0] += (
                f" ({source}; plan cache {self.cache_hits} hits /"
                f" {self.cache_misses} misses)"
            )
        if self.governor_ticks:
            line = f"governor: {self.governor_ticks} work units"
            if self.governor_peak_bytes:
                line += f", peak ~{self.governor_peak_bytes} bytes buffered"
            lines.append(line)
        for op in self.operators:
            line = f"{'  ' * op.depth}{op.operator}  [rows={op.rows_produced}"
            if op.batches_produced:
                line += (
                    f", batches={op.batches_produced}"
                    f", batch_rows={op.batch_rows}"
                )
            if op.eval_mode:
                line += f", exprs={op.eval_mode}, eval={op.eval_ms:.3f} ms"
            lines.append(line + "]")
        return "\n".join(lines)


def run_with_stats(
    plan: Operator,
    database: ExtentProvider,
    options: PlannerOptions | None = None,
    params: Mapping[str, Any] | None = None,
    profile: bool = True,
    compiler: "ExprCompiler | None" = None,
    governor: Any | None = None,
) -> ExecutionStats:
    """Plan, execute, and collect per-operator statistics.

    *profile* (default on — this is the EXPLAIN ANALYZE entry point) makes
    every operator time its expression evaluation, at the cost of a timer
    call per evaluated expression.  *compiler* reuses a caller-owned
    expression compiler (see :func:`repro.engine.planner.plan_physical`).
    *governor* attaches per-query limits; its accounting lands in
    ``governor_ticks``/``governor_peak_bytes``.
    """
    physical = plan_physical(
        plan,
        database,
        options,
        params,
        profile=profile,
        compiler=compiler,
        governor=governor,
    )
    if not isinstance(physical, (PReduce, PEval, PGather)):
        raise TypeError("a complete plan must be rooted at Reduce or Eval")
    start = time.perf_counter()
    result = physical.value()
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    stats = ExecutionStats(result=result, elapsed_ms=elapsed_ms)
    if governor is not None:
        stats.governor_ticks = governor.ticks
        stats.governor_peak_bytes = governor.peak_bytes
    _collect(physical, 0, stats)
    return stats


def _collect(op: PhysicalOperator, depth: int, stats: ExecutionStats) -> None:
    stats.operators.append(
        OperatorStats(
            op.describe(),
            op.rows_produced,
            depth,
            op.eval_mode(),
            op.eval_ms,
            op.batches_produced,
            op.batch_rows,
        )
    )
    for child in op.children():
        _collect(child, depth + 1, stats)
