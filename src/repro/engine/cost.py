"""A simple cardinality/cost model for logical plans.

Used by the optimizer's join-permutation phase (Section 6: "48 lines for
various algebraic optimizations (including permutation of joins)").  The
model is deliberately textbook-simple: extent cardinalities from the
database when available, fixed selectivities per predicate shape, and a
work metric that charges nested-loop joins the product of their input sizes
and hash joins the sum.
"""

from __future__ import annotations

from repro.algebra.operators import (
    Eval,
    Join,
    Map,
    Nest,
    Operator,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
)
from repro.calculus.terms import BinOp, Comprehension, Term, conjuncts, subterms

#: Default selectivity per predicate shape.
_EQUALITY_SELECTIVITY = 0.1
_COMPARISON_SELECTIVITY = 0.4
_DEFAULT_SELECTIVITY = 0.5

#: Assumed average number of elements of an unnested collection.
_DEFAULT_FANOUT = 4.0

#: Assumed extent size when no database statistics are available.
_DEFAULT_EXTENT_SIZE = 1000.0


class CostModel:
    """Estimates cardinalities and work for logical plans."""

    def __init__(self, database=None):
        self._database = database

    # -- statistics ------------------------------------------------------------

    def extent_cardinality(self, name: str) -> float:
        if self._database is not None and self._database.has_extent(name):
            return float(max(self._database.cardinality(name), 1))
        return _DEFAULT_EXTENT_SIZE

    def selectivity(self, pred: Term) -> float:
        """The estimated fraction of tuples satisfying *pred*."""
        result = 1.0
        for part in conjuncts(pred):
            if isinstance(part, BinOp) and part.op == "==":
                result *= _EQUALITY_SELECTIVITY
            elif isinstance(part, BinOp) and part.op in ("<", "<=", ">", ">="):
                result *= _COMPARISON_SELECTIVITY
            else:
                result *= _DEFAULT_SELECTIVITY
        return max(result, 1e-6)

    def _selection_selectivity(self, plan: "Select") -> float:
        """Selectivity of a selection, using ANALYZE statistics when the
        child is a scan and the conjunct is an equality on an analyzed
        attribute (selectivity 1/ndv, the textbook estimate)."""
        from repro.calculus.terms import Proj, Var

        child = plan.child
        scan_var = child.var if isinstance(child, Scan) else None
        result = 1.0
        for part in conjuncts(plan.pred):
            estimated = None
            if (
                scan_var is not None
                and self._database is not None
                and isinstance(part, BinOp)
                and part.op == "=="
            ):
                for side in (part.left, part.right):
                    if isinstance(side, Proj) and side.expr == Var(scan_var):
                        ndv = getattr(self._database, "distinct_count", lambda *a: None)(
                            child.extent, side.attr
                        )
                        # ndv can be 0 for an analyzed-but-empty extent, or
                        # None when unanalyzed; both must fall back to the
                        # textbook default instead of dividing by zero.
                        if ndv is not None and ndv > 0:
                            estimated = 1.0 / ndv
                            break
            result *= estimated if estimated is not None else self.selectivity(part)
        return max(result, 1e-6)

    # -- cardinality -------------------------------------------------------------

    def cardinality(self, plan: Operator) -> float:
        """Estimated number of environments *plan* produces."""
        if isinstance(plan, Seed):
            return 1.0
        if isinstance(plan, Scan):
            return self.extent_cardinality(plan.extent)
        if isinstance(plan, Select):
            return self.cardinality(plan.child) * self._selection_selectivity(plan)
        if isinstance(plan, Map):
            return self.cardinality(plan.child)
        if isinstance(plan, Join):
            return (
                self.cardinality(plan.left)
                * self.cardinality(plan.right)
                * self.selectivity(plan.pred)
            )
        if isinstance(plan, OuterJoin):
            inner = (
                self.cardinality(plan.left)
                * self.cardinality(plan.right)
                * self.selectivity(plan.pred)
            )
            # Every left tuple survives an outer-join.
            return max(inner, self.cardinality(plan.left))
        if isinstance(plan, (Unnest, OuterUnnest)):
            fanout = _DEFAULT_FANOUT * self.selectivity(plan.pred)
            estimate = self.cardinality(plan.child) * fanout
            if isinstance(plan, OuterUnnest):
                return max(estimate, self.cardinality(plan.child))
            return estimate
        if isinstance(plan, Nest):
            # Roughly one group per distinct group-by combination; assume
            # moderate collapse.
            return max(self.cardinality(plan.child) * 0.25, 1.0)
        if isinstance(plan, (Reduce, Eval)):
            return 1.0
        raise TypeError(f"cannot estimate {type(plan).__name__}")

    # -- work --------------------------------------------------------------------

    def cost(self, plan: Operator) -> float:
        """Estimated total work (tuples touched) to evaluate *plan*.

        Nested comprehension terms appearing in operator parameters are
        charged per driving tuple, which is what makes naive nested plans
        expensive under this model — mirroring their actual behaviour.
        """
        if isinstance(plan, Seed):
            return 1.0
        if isinstance(plan, Scan):
            return self.extent_cardinality(plan.extent)
        if isinstance(plan, Select):
            per_tuple = 1.0 + self._embedded_cost(plan.pred)
            return self.cost(plan.child) + self.cardinality(plan.child) * per_tuple
        if isinstance(plan, Map):
            per_tuple = 1.0 + sum(self._embedded_cost(e) for _, e in plan.bindings)
            return self.cost(plan.child) + self.cardinality(plan.child) * per_tuple
        if isinstance(plan, (Join, OuterJoin)):
            left_card = self.cardinality(plan.left)
            right_card = self.cardinality(plan.right)
            from repro.engine.planner import split_equi_conjuncts

            keys, _ = split_equi_conjuncts(
                plan.pred, plan.left.columns(), plan.right.columns()
            )
            if keys:
                probe = left_card + right_card
            else:
                probe = left_card * right_card
            return self.cost(plan.left) + self.cost(plan.right) + probe
        if isinstance(plan, (Unnest, OuterUnnest)):
            return self.cost(plan.child) + self.cardinality(plan)
        if isinstance(plan, Nest):
            per_tuple = 1.0 + self._embedded_cost(plan.head)
            return self.cost(plan.child) + self.cardinality(plan.child) * per_tuple
        if isinstance(plan, (Reduce, Eval)):
            child = plan.children()[0]
            expr = plan.head if isinstance(plan, Reduce) else plan.expr
            per_tuple = 1.0 + self._embedded_cost(expr)
            if isinstance(plan, Reduce):
                per_tuple += self._embedded_cost(plan.pred)
            return self.cost(child) + self.cardinality(child) * per_tuple
        raise TypeError(f"cannot cost {type(plan).__name__}")

    def _embedded_cost(self, term: Term) -> float:
        """Cost of nested comprehensions evaluated per driving tuple."""
        total = 0.0
        for sub in subterms(term):
            if isinstance(sub, Comprehension):
                total += self._comprehension_cost(sub)
                break  # inner comprehensions are counted by the recursion
        return total

    def _comprehension_cost(self, comp: Comprehension) -> float:
        from repro.calculus.terms import Extent, Generator

        size = 1.0
        for qualifier in comp.qualifiers:
            if isinstance(qualifier, Generator):
                if isinstance(qualifier.domain, Extent):
                    size *= self.extent_cardinality(qualifier.domain.name)
                else:
                    size *= _DEFAULT_FANOUT
        return size + self._embedded_cost(comp.head) * size
