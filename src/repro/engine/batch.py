"""Columnar chunks: the unit of batch-at-a-time execution.

The batched physical engine (:mod:`repro.engine.physical`) passes
:class:`Chunk` objects between operators instead of one environment dict
per row.  A chunk is a plain column store — ``{column name: list of
values}`` plus a row count — over the same environments the row engine
streams: ``chunk.env_at(i)`` reconstructs row *i* exactly as ``rows()``
would have yielded it.

Two invariants keep the batch path byte-compatible with the row path:

* **Chunks are never empty.**  Producers only yield chunks with at least
  one row, so a tier-3 kernel is never invoked over zero rows — its
  column-hoisting prologue would otherwise raise an unbound-variable
  error on a stream the row path drains silently.
* **Errors are delivered lazily.**  :func:`chunk_rows` (and every native
  batch producer) yields the rows that preceded a mid-stream failure as a
  final partial chunk *before* re-raising, so a consumer that
  short-circuits — an ``exists`` satisfied by an early row — never
  observes an error the row-at-a-time path would not have reached.
"""

from __future__ import annotations

from typing import Any, Iterator

Env = dict[str, Any]

#: Default rows per chunk.  Large enough to amortize the per-batch Python
#: overhead (one kernel call, a few list allocations) over ~1k rows, small
#: enough that short-circuiting consumers do not overshoot by much.
DEFAULT_BATCH_SIZE = 1024


class Chunk:
    """A columnar block of rows: ``columns[name][i]`` is row *i*'s binding."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: dict[str, list], length: int):
        self.columns = columns
        self.length = length

    def env_at(self, i: int) -> Env:
        """Row *i* as the environment dict the row engine would yield."""
        return {name: col[i] for name, col in self.columns.items()}

    def envs(self) -> Iterator[Env]:
        """Every row, in order, as environment dicts."""
        columns = self.columns
        for i in range(self.length):
            yield {name: col[i] for name, col in columns.items()}

    @classmethod
    def from_envs(cls, envs: list[Env]) -> "Chunk":
        """Build a chunk from a non-empty list of same-keyed environments."""
        if not envs:
            raise ValueError(
                "Chunk.from_envs requires at least one row: chunks are "
                "never empty (producers must skip the yield instead)"
            )
        names = list(envs[0])
        columns = {name: [env[name] for env in envs] for name in names}
        return cls(columns, len(envs))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"Chunk({sorted(self.columns)}, rows={self.length})"


def chunk_rows(rows: Iterator[Env], size: int) -> Iterator[Chunk]:
    """Adapt a row stream into chunks of up to *size* rows.

    Only non-empty chunks are yielded.  A mid-stream exception is held
    until the rows already buffered have been yielded as a partial chunk,
    then re-raised — matching the row path, where a consumer sees every
    row that preceded the failure (and may stop pulling before it).

    Every row must bind exactly the columns of the first row.  A key-set
    mismatch raises ``ValueError`` immediately (no partial-chunk flush):
    it is an operator bug, not a data error — silently dropping extra
    keys or raising an opaque ``KeyError`` both hide the real problem.
    """
    names: list[str] = []
    columns: dict[str, list] | None = None
    count = 0
    pending: BaseException | None = None
    iterator = iter(rows)
    while True:
        try:
            env = next(iterator)
        except StopIteration:
            break
        except Exception as exc:  # noqa: BLE001 - replayed after the flush
            pending = exc
            break
        if columns is None:
            names = list(env)
            columns = {name: [] for name in names}
        if len(env) != len(names):
            raise ValueError(
                f"chunk_rows: row binds columns {sorted(env)} but the "
                f"stream started with {sorted(names)}"
            )
        try:
            for name in names:
                columns[name].append(env[name])
        except KeyError:
            raise ValueError(
                f"chunk_rows: row binds columns {sorted(env)} but the "
                f"stream started with {sorted(names)}"
            ) from None
        count += 1
        if count >= size:
            yield Chunk(columns, count)
            columns = {name: [] for name in names}
            count = 0
    if count:
        assert columns is not None
        yield Chunk(columns, count)
    if pending is not None:
        raise pending
