"""A small thread-safe blocking client for the NDJSON protocol.

Used by the end-to-end tests and the load-generator benchmark; it is not
a supported public driver (any language with sockets and JSON can speak
the protocol directly — that is the point of NDJSON).

Responses may arrive out of request order (the server dispatches every
request as its own task), so the client matches them by ``id``: reads go
through :meth:`wait`, which buffers responses for other ids until their
own waiter asks.  Sends and receives are independently locked, so one
thread can wait on a slow query while another sends ``cancel``.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any

from repro.server.protocol import decode_result

__all__ = ["ServeClient", "ServerReply"]


class ServerReply(dict):
    """A response object; ``ok``/``error`` as attributes for convenience."""

    @property
    def ok(self) -> bool:
        return bool(self.get("ok"))

    @property
    def error_code(self) -> str | None:
        error = self.get("error")
        return error.get("code") if isinstance(error, dict) else None

    def value(self) -> Any:
        """The decoded engine value of a successful query response."""
        if not self.ok:
            raise RuntimeError(f"response is an error: {self.get('error')}")
        return decode_result(self["result"])


class ServeClient:
    """One NDJSON protocol connection (see the module docstring)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._buffered: dict[Any, ServerReply] = {}
        self._buffered_cond = threading.Condition()
        self._next_id = 1
        self._id_lock = threading.Lock()

    # -- low-level -----------------------------------------------------------

    def send(self, op: str, **fields: Any) -> int:
        """Send one request; returns the assigned id (match with wait)."""
        with self._id_lock:
            request_id = self._next_id
            self._next_id += 1
        message = {"id": request_id, "op": op, **fields}
        data = (json.dumps(message, separators=(",", ":")) + "\n").encode()
        with self._send_lock:
            self._sock.sendall(data)
        return request_id

    def send_raw(self, data: bytes) -> None:
        """Send raw bytes (malformed-request tests)."""
        with self._send_lock:
            self._sock.sendall(data)

    def wait(self, request_id: Any) -> ServerReply:
        """Block until the response for *request_id* arrives."""
        while True:
            with self._buffered_cond:
                reply = self._buffered.pop(request_id, None)
                if reply is not None:
                    return reply
            got_read_lock = self._recv_lock.acquire(blocking=False)
            if not got_read_lock:
                # Another thread is reading; wait for it to buffer ours.
                with self._buffered_cond:
                    self._buffered_cond.wait(timeout=0.05)
                continue
            try:
                with self._buffered_cond:
                    reply = self._buffered.pop(request_id, None)
                    if reply is not None:
                        return reply
                line = self._file.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                reply = ServerReply(json.loads(line))
            finally:
                self._recv_lock.release()
            if reply.get("id") == request_id:
                return reply
            with self._buffered_cond:
                self._buffered[reply.get("id")] = reply
                self._buffered_cond.notify_all()

    def call(self, op: str, **fields: Any) -> ServerReply:
        """Send one request and wait for its response."""
        return self.wait(self.send(op, **fields))

    # -- the protocol ops ----------------------------------------------------

    def hello(self, tenant: str = "default") -> ServerReply:
        return self.call("hello", tenant=tenant)

    def query(self, q: str, params: dict[str, Any] | None = None) -> ServerReply:
        return self.call("query", q=q, **({"params": params} if params else {}))

    def prepare(self, name: str, q: str) -> ServerReply:
        return self.call("prepare", name=name, q=q)

    def execute(
        self, name: str, params: dict[str, Any] | None = None
    ) -> ServerReply:
        return self.call(
            "execute", name=name, **({"params": params} if params else {})
        )

    def cancel(self, target: int) -> ServerReply:
        return self.call("cancel", target=target)

    def set_options(self, **options: Any) -> ServerReply:
        return self.call("set", options=options)

    def stats(self) -> ServerReply:
        return self.call("stats")

    def close(self, polite: bool = True) -> None:
        """Close the connection; *polite* says goodbye first."""
        try:
            if polite:
                self.call("close")
        except (OSError, ConnectionError, ValueError):
            pass
        # Close the makefile wrapper too — it holds its own reference to
        # the socket, and the FIN only goes out once both are closed.
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close(polite=False)
