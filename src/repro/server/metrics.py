"""Per-endpoint serving metrics: qps, latency percentiles, cache hit rate.

One :class:`ServerMetrics` per server aggregates every finished request
into per-endpoint buckets (``query``, ``execute``, ``prepare``, ``http``,
...), each keeping totals plus a bounded latency reservoir for the
p50/p95/p99 tail.  Governor trips are counted by error code, so a
``stats`` snapshot shows at a glance whether the server is shedding load
(admission rejections), tripping budgets, or serving from the plan cache.

Recording happens from event-loop callbacks *and* is read from arbitrary
threads (the ``stats`` op runs on the loop; tests and the benchmark read
snapshots from other threads), so the whole structure is guarded by one
lock — the per-request cost is a few counter bumps, far below the cost of
the query that preceded them.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = ["EndpointMetrics", "LatencyReservoir", "ServerMetrics"]

#: Governor/serving error codes counted individually in snapshots.
_TRIP_CODES = (
    "QUERY_TIMEOUT",
    "BUDGET_EXCEEDED",
    "QUERY_CANCELLED",
    "ADMISSION_REJECTED",
    "TENANT_BUDGET_EXHAUSTED",
)


class LatencyReservoir:
    """A bounded sliding window of latencies with exact percentiles.

    Keeps the most recent ``capacity`` samples in a ring buffer;
    percentiles are computed over the window by sorting on demand (a
    snapshot is rare next to a request).  The window makes percentiles
    reflect *recent* behavior rather than the whole process lifetime.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._ring: list[float] = []
        self._next = 0

    def add(self, latency_ms: float) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(latency_ms)
        else:
            self._ring[self._next] = latency_ms
            self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._ring)

    def percentiles(self, *points: float) -> list[float]:
        """Exact percentiles (nearest-rank) over the current window."""
        if not self._ring:
            return [0.0 for _ in points]
        ordered = sorted(self._ring)
        last = len(ordered) - 1
        return [
            ordered[min(last, int(round(p / 100.0 * last)))] for p in points
        ]


class EndpointMetrics:
    """Counters for one endpoint (a protocol op, or ``http``)."""

    def __init__(self, name: str, reservoir_capacity: int = 4096):
        self.name = name
        self.requests = 0
        self.errors = 0
        self.rows = 0
        self.bytes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.total_ms = 0.0
        self.trips: dict[str, int] = {}
        self.latency = LatencyReservoir(reservoir_capacity)

    def snapshot(self, elapsed_s: float) -> dict[str, Any]:
        p50, p95, p99 = self.latency.percentiles(50, 95, 99)
        executions = self.cache_hits + self.cache_misses
        return {
            "requests": self.requests,
            "errors": self.errors,
            "rows": self.rows,
            "bytes": self.bytes,
            "qps": round(self.requests / elapsed_s, 3) if elapsed_s > 0 else 0.0,
            "mean_ms": (
                round(self.total_ms / self.requests, 3) if self.requests else 0.0
            ),
            "p50_ms": round(p50, 3),
            "p95_ms": round(p95, 3),
            "p99_ms": round(p99, 3),
            "cache_hit_rate": (
                round(self.cache_hits / executions, 4) if executions else 0.0
            ),
            "governor_trips": dict(sorted(self.trips.items())),
        }


class ServerMetrics:
    """Thread-safe aggregation of every finished request, per endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointMetrics] = {}
        self._started = time.monotonic()

    def record(
        self,
        endpoint: str,
        elapsed_ms: float,
        *,
        ok: bool = True,
        error_code: str | None = None,
        rows: int = 0,
        nbytes: int = 0,
        from_cache: bool | None = None,
    ) -> None:
        """Fold one finished request into the endpoint's counters.

        *from_cache* is three-valued: ``True``/``False`` for requests that
        executed a query (feeding the cache hit rate), ``None`` for ops
        that never touch the plan cache (``stats``, ``cancel``, ...).
        """
        with self._lock:
            endpoint_metrics = self._endpoints.get(endpoint)
            if endpoint_metrics is None:
                endpoint_metrics = EndpointMetrics(endpoint)
                self._endpoints[endpoint] = endpoint_metrics
            endpoint_metrics.requests += 1
            endpoint_metrics.total_ms += elapsed_ms
            endpoint_metrics.latency.add(elapsed_ms)
            endpoint_metrics.rows += rows
            endpoint_metrics.bytes += nbytes
            if not ok:
                endpoint_metrics.errors += 1
            if error_code in _TRIP_CODES:
                endpoint_metrics.trips[error_code] = (
                    endpoint_metrics.trips.get(error_code, 0) + 1
                )
            if from_cache is True:
                endpoint_metrics.cache_hits += 1
            elif from_cache is False:
                endpoint_metrics.cache_misses += 1

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able view: uptime, per-endpoint stats, and totals."""
        with self._lock:
            elapsed_s = max(time.monotonic() - self._started, 1e-9)
            endpoints = {
                name: endpoint.snapshot(elapsed_s)
                for name, endpoint in sorted(self._endpoints.items())
            }
        totals = {
            "requests": sum(e["requests"] for e in endpoints.values()),
            "errors": sum(e["errors"] for e in endpoints.values()),
            "rows": sum(e["rows"] for e in endpoints.values()),
            "governor_trips": {},
        }
        trip_totals: dict[str, int] = {}
        for endpoint in endpoints.values():
            for code, count in endpoint["governor_trips"].items():
                trip_totals[code] = trip_totals.get(code, 0) + count
        totals["governor_trips"] = dict(sorted(trip_totals.items()))
        return {
            "uptime_s": round(elapsed_s, 3),
            "endpoints": endpoints,
            "totals": totals,
        }

    def summary_line(self) -> str:
        """A one-line operator-facing rendering (``repro serve --metrics``)."""
        snap = self.snapshot()
        totals = snap["totals"]
        query = snap["endpoints"].get("query")
        parts = [
            f"uptime={snap['uptime_s']:.0f}s",
            f"requests={totals['requests']}",
            f"errors={totals['errors']}",
        ]
        if query is not None:
            parts.append(f"qps={query['qps']}")
            parts.append(
                f"latency p50/p95/p99="
                f"{query['p50_ms']}/{query['p95_ms']}/{query['p99_ms']}ms"
            )
            parts.append(f"cache_hit_rate={query['cache_hit_rate']}")
        trips = totals["governor_trips"]
        if trips:
            parts.append(
                "trips=" + ",".join(f"{k}:{v}" for k, v in trips.items())
            )
        return "metrics: " + " ".join(parts)
