"""The serving layer: repro as a multi-user database server.

Everything needed for multi-user operation already exists in-process —
reentrant compiled plans, a locked plan cache, cooperative cancellation
tokens, governor budgets.  This package exposes it over the network:

* :mod:`repro.server.protocol` — the newline-delimited JSON wire protocol
  (one request/response object per line) and the typed error codes every
  failure maps to;
* :mod:`repro.server.session` — per-connection state: a database handle,
  session-scoped options, named prepared statements, and the in-flight
  query registry that cancellation and disconnect cleanup act on;
* :mod:`repro.server.admission` — admission control (max in-flight
  queries, bounded wait queue with typed rejection) and per-tenant
  budgets layered on the governor;
* :mod:`repro.server.metrics` — per-endpoint metrics aggregated from
  :class:`~repro.engine.executor.ExecutionStats`: qps, p50/p95/p99
  latency, plan-cache hit rate, governor trips;
* :mod:`repro.server.server` — the asyncio front-end: NDJSON over TCP
  plus a thin HTTP/1.1 POST endpoint on the same port, queries running
  in a worker pool so the event loop never blocks;
* :mod:`repro.server.client` — a small thread-safe blocking client used
  by the tests and the load-generator benchmark.

Start a server with ``repro serve`` (see ``repro serve --help``) or
programmatically::

    from repro.server import ReproServer, ServerConfig
    server = ReproServer(ServerConfig(database=db))
    await server.start()
"""

from repro.server.admission import (
    AdmissionController,
    AdmissionRejected,
    ServerError,
    TenantBudget,
    TenantBudgetExhausted,
)
from repro.server.client import ServeClient
from repro.server.metrics import ServerMetrics
from repro.server.protocol import ProtocolError, error_payload
from repro.server.server import ReproServer, ServerConfig, ServerThread
from repro.server.session import Session

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServerConfig",
    "ServerError",
    "ServerMetrics",
    "ServerThread",
    "Session",
    "TenantBudget",
    "TenantBudgetExhausted",
    "error_payload",
]
